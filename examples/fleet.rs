//! Fleet orchestration: four concurrent LU jobs on 16 compute nodes share
//! a two-deep spare pool while three scheduled node failures roll through
//! the cluster. The `fleetsched` policy engine decides, per alert, whether
//! to migrate the sick job to a spare, queue it behind a dry pool, or
//! degrade to an immediate coordinated checkpoint.
//!
//! Run with: `cargo run --example fleet [policy]`
//!
//! `policy` is one of `periodic_cr`, `reactive`, `proactive`, `utility`
//! (default: all four, printed as a comparison table). The scenario is
//! deterministic — same seed, same failure schedule, same table, every run.
//!
//! The full-scale version of this scenario (8 jobs, 64 compute nodes,
//! 12 failures over 2 simulated hours) runs as
//! `cargo bench -p jobmig-bench --bench fleet` or `jobmig fleet`, and
//! writes the machine-readable `BENCH_fleet.json` artifact.

use rdma_jobmig::prelude::*;
use std::time::Duration;

/// A scaled-down fleet that finishes in seconds in a debug build:
/// 4 jobs x LU.A.4, 16 compute nodes, 2 spares, 3 failures in 15 minutes.
fn demo_config() -> FleetConfig {
    let mut cfg = FleetConfig::soak(42);
    cfg.slots = 4;
    cfg.nodes_per_slot = 4;
    cfg.spares = 2;
    cfg.workload = npbsim::Workload::new(npbsim::NpbApp::Lu, npbsim::NpbClass::A, 4);
    // Shrink the job so several complete inside the 15-minute horizon
    // (`iters` is granularity; `base_runtime` is the actual length).
    cfg.workload.base_runtime = Duration::from_secs(240);
    cfg.workload.iters = 48;
    cfg.horizon = Duration::from_secs(900);
    cfg.doom_count = 3;
    cfg.ckpt_period = Duration::from_secs(60);
    cfg
}

fn main() {
    let arg: Option<String> = std::env::args().nth(1);
    let kinds: Vec<PolicyKind> = match arg.as_deref() {
        None => PolicyKind::ALL.to_vec(),
        Some(name) => match PolicyKind::ALL.iter().find(|k| k.name() == name) {
            Some(k) => vec![*k],
            None => {
                eprintln!("usage: fleet [periodic_cr|reactive|proactive|utility]");
                std::process::exit(2);
            }
        },
    };

    let cfg = demo_config();
    println!(
        "fleet demo: {} jobs x {}, {} compute nodes, {} spares, {} failures / {:.0} min\n",
        cfg.slots,
        cfg.workload.name(),
        cfg.slots * cfg.nodes_per_slot as usize,
        cfg.spares,
        cfg.doom_count,
        cfg.horizon.as_secs_f64() / 60.0
    );

    let report = fleetsched::run_soak(&cfg, &kinds);
    print!("{}", report.render_table());

    if kinds.len() > 1 {
        let cr = report.policy("periodic_cr").expect("baseline row");
        let best = report
            .policies
            .iter()
            .min_by_key(|p| p.work_lost)
            .expect("at least one policy");
        println!(
            "\ncheckpoint-only loses {:.0}s of work; `{}` loses {:.0}s by moving \
             sick jobs to spares before their nodes die",
            cr.work_lost.as_secs_f64(),
            best.policy,
            best.work_lost.as_secs_f64()
        );
    }
}
