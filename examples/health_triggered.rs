//! Proactive fault tolerance end to end: an IPMI-style health monitor on
//! one compute node watches a deteriorating temperature sensor, the trend
//! predictor publishes `HEALTH_PREDICT` on the FTB backplane, and the Job
//! Manager migrates the node's eight MPI processes to the hot spare —
//! before the node ever reaches its critical threshold.
//!
//! Run with: `cargo run --release --example health_triggered`

use rdma_jobmig::ftb::FtbClient;
use rdma_jobmig::healthmon::{self, MonitorConfig, SensorKind, SensorProfile};
use rdma_jobmig::prelude::*;
use std::time::Duration;

fn main() {
    let mut sim = Simulation::new(99);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
    let workload = Workload::new(NpbApp::Bt, NpbClass::C, 64);
    let mut spec = JobSpec::npb(workload.clone(), 8);
    spec.auto_migrate_on_health = true;
    let rt = JobRuntime::launch(&cluster, spec);

    // Deploy health monitors on every compute node. Node 3's CPU fan is
    // failing: its temperature starts climbing 40 s into the run.
    let sick = cluster.compute_nodes()[2];
    for node in cluster.compute_nodes() {
        let client = FtbClient::connect(cluster.ftb(), *node, "ipmi-monitor");
        let profiles = if *node == sick {
            vec![
                SensorProfile::deteriorating(
                    SensorKind::TemperatureC,
                    60.0,
                    0.5,
                    Duration::from_secs(40),
                    0.4, // +0.4 °C/s → critical (90 °C) at t ≈ 115 s
                ),
                SensorProfile::deteriorating(
                    SensorKind::FanRpm,
                    8000.0,
                    120.0,
                    Duration::from_secs(40),
                    -35.0,
                ),
            ]
        } else {
            vec![
                SensorProfile::healthy(SensorKind::TemperatureC, 55.0, 1.5),
                SensorProfile::healthy(SensorKind::FanRpm, 8000.0, 120.0),
            ]
        };
        healthmon::spawn_monitor(
            &sim.handle(),
            *node,
            profiles,
            client,
            MonitorConfig::default(),
        );
    }

    println!(
        "running {} with a failing fan on {sick}; prediction horizon {}s",
        workload.name(),
        MonitorConfig::default().horizon.as_secs()
    );
    sim.run_until_set(rt.completion(), SimTime::MAX)
        .expect("simulation");

    println!("application completed at t = {}", sim.now());
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1, "the predictor should fire exactly once");
    for r in &reports {
        println!("{r}");
    }
    println!(
        "node {sick} is now {}, spare count {}",
        rt.nla_state(sick).unwrap(),
        rt.spares_left()
    );
}
