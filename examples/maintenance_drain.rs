//! Operator-driven migration: the paper's design "also enables direct
//! user intervention to trigger a migration, such as for load-balancing
//! or system maintenance purposes". Here an administrator drains two
//! compute nodes one after the other (e.g. for a firmware update) while a
//! 64-rank SP.C job keeps running.
//!
//! Run with: `cargo run --release --example maintenance_drain`

use rdma_jobmig::prelude::*;

fn main() {
    let mut sim = Simulation::new(7);
    // Two spares so both nodes can be drained.
    let mut cspec = ClusterSpec::paper_testbed();
    cspec.spare_nodes = 2;
    let cluster = Cluster::build(&sim.handle(), cspec);
    let workload = Workload::new(NpbApp::Sp, NpbClass::C, 64);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(workload.clone(), 8));

    let first = cluster.compute_nodes()[4];
    let second = cluster.compute_nodes()[5];
    println!(
        "running {}; maintenance drain of {first} at t=25s and {second} at t=80s",
        workload.name()
    );

    let rt2 = rt.clone();
    sim.handle().spawn_daemon("operator", move |ctx| {
        ctx.sleep(dur::secs(25));
        println!("[t={}] operator: draining {first}", ctx.now());
        rt2.control()
            .migrate(MigrationRequest::new().from_node(first));
        ctx.sleep(dur::secs(55));
        println!("[t={}] operator: draining {second}", ctx.now());
        rt2.control()
            .migrate(MigrationRequest::new().from_node(second));
    });

    sim.run_until_set(rt.completion(), SimTime::MAX)
        .expect("simulation");

    println!("application completed at t = {}", sim.now());
    for r in rt.migration_reports() {
        println!("{r}");
    }
    for node in [first, second] {
        println!("{node}: {}", rt.nla_state(node).unwrap());
    }
    assert_eq!(rt.migration_reports().len(), 2);
    assert_eq!(rt.spares_left(), 0);
}
