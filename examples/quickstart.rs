//! Quickstart: launch the paper's testbed, run NPB LU.C with 64 ranks on
//! 8 compute nodes, trigger one migration mid-run, and print the
//! phase-decomposed report (the Figure 4 measurement for one application).
//!
//! Run with: `cargo run --release --example quickstart`

use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::{dur, SimTime, Simulation};

fn main() {
    let mut sim = Simulation::new(2010);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
    let workload = Workload::new(NpbApp::Lu, NpbClass::C, 64);
    println!(
        "launching {} on {} compute nodes (+{} spare), image {:.1} MB/process",
        workload.name(),
        cluster.compute_nodes().len(),
        cluster.spare_nodes().len(),
        workload.per_proc_image() as f64 / 1e6
    );
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(workload, 8));

    // A user-initiated migration trigger 30 s into the run, as in §IV
    // ("we simulate the migration trigger by firing a user signal to the
    // Job Manager").
    rt.trigger_migration_after(dur::secs(30));

    sim.run_until_set(rt.completion(), SimTime::MAX)
        .expect("simulation");

    println!("application completed at t = {}", sim.now());
    for report in rt.migration_reports() {
        println!("{report}");
        println!(
            "  phase breakdown: stall {:.0} ms | migrate {:.0} ms | restart {:.0} ms | resume {:.0} ms",
            report.stall.as_secs_f64() * 1e3,
            report.migrate.as_secs_f64() * 1e3,
            report.restart.as_secs_f64() * 1e3,
            report.resume.as_secs_f64() * 1e3,
        );
    }
}
