//! Quickstart: launch the paper's testbed, run NPB LU.C with 64 ranks on
//! 8 compute nodes, trigger one migration mid-run, and print the
//! phase-decomposed report (the Figure 4 measurement for one application).
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Pass `--trace out.json` to record the run's structured telemetry and
//! export it as a chrome://tracing JSON file — open it in Perfetto
//! (<https://ui.perfetto.dev>) to see the four migration phases, per-chunk
//! RDMA Reads, and checkpoint stream progress on a zoomable timeline.
//!
//! Pass `--pipelined` to run the migration on the pipelined data path
//! (striped RDMA lanes + per-rank restart overlap via
//! [`MigrationTuning::pipelined`]) instead of the default barrier mode —
//! compare the phase breakdowns between the two runs.
//!
//! Pass `--live` to run an iterative pre-copy *live* migration
//! ([`MigrationTuning::live`]): the full image — and then dirty-segment
//! deltas — stream while the ranks keep computing, and the job only
//! stops for the short residual round. See `examples/live_migration.rs`
//! for the full walkthrough.
//!
//! Pass `--faults <preset>` to drive the run through a deterministic
//! fault plan and watch the protocol heal itself:
//!   spare-crash  the spare dies at the Phase 3 (Restart) boundary; the
//!                Job Manager aborts the cycle and retries on the next
//!                spare (or degrades to a coordinated checkpoint)
//!   rdma         an RDMA Read completes in error and another returns a
//!                corrupted payload; both chunks are re-issued in place
//!   flaky-net    the GigE control network flaps right as the migration
//!                window opens; phase deadlines drive the retry

use rdma_jobmig::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: quickstart [--trace OUT.json] [--pipelined] [--live] \
         [--faults spare-crash|rdma|flaky-net]"
    );
    std::process::exit(2);
}

fn fault_preset(name: &str) -> FaultPlan {
    match name {
        "spare-crash" => FaultPlan::new(2010).with(FaultSpec::SpareCrash {
            phase: MigPhase::Restart,
            attempt: 1,
        }),
        "rdma" => FaultPlan::new(2010)
            .with(FaultSpec::RdmaCqError { nth: 2 })
            .with(FaultSpec::RdmaCorrupt { nth: 5 }),
        "flaky-net" => FaultPlan::new(2010).with(FaultSpec::LinkFlap {
            net: NetSel::Gige,
            at: dur::secs(30),
            lasts: dur::ms(800),
        }),
        other => {
            eprintln!("unknown fault preset '{other}'");
            usage();
        }
    }
}

fn main() {
    let mut trace_path = None;
    let mut fault_plan = None;
    let mut tuning = MigrationTuning::barrier();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--pipelined" => tuning = MigrationTuning::pipelined(),
            "--live" => tuning = MigrationTuning::live(),
            "--faults" => fault_plan = Some(fault_preset(&args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }

    let mut sim = Simulation::new(2010);
    if trace_path.is_some() {
        sim.handle().tracer().set_enabled(true);
    }
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
    let plane = fault_plan.as_ref().map(|plan| {
        println!("fault plan installed: {plan}");
        cluster.install_fault_plane(plan)
    });
    let workload = Workload::new(NpbApp::Lu, NpbClass::C, 64);
    println!(
        "launching {} on {} compute nodes (+{} spare), image {:.1} MB/process",
        workload.name(),
        cluster.compute_nodes().len(),
        cluster.spare_nodes().len(),
        workload.per_proc_image() as f64 / 1e6
    );
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(workload, 8));

    // A user-initiated migration trigger 30 s into the run, as in §IV
    // ("we simulate the migration trigger by firing a user signal to the
    // Job Manager").
    if tuning.pool.overlap {
        println!(
            "pipelined data path: {} RDMA lanes, restart admission {}",
            tuning.pool.lanes, tuning.pool.restart_admission
        );
    }
    if let Some(cfg) = &tuning.pool.live {
        println!(
            "live pre-copy: up to {} rounds, {} KiB pages, {} ms downtime budget",
            cfg.max_rounds,
            cfg.page >> 10,
            cfg.downtime_budget_ms,
        );
    }
    rt.control().migrate_after(
        dur::secs(30),
        MigrationRequest::new().label("quickstart").tuning(tuning),
    );

    sim.run_until_set(rt.completion(), SimTime::MAX)
        .expect("simulation");

    println!("application completed at t = {}", sim.now());
    for report in rt.migration_reports() {
        println!("{report}");
        println!(
            "  phase breakdown: stall {:.0} ms | migrate {:.0} ms | restart {:.0} ms | resume {:.0} ms",
            report.stall.as_secs_f64() * 1e3,
            report.migrate.as_secs_f64() * 1e3,
            report.restart.as_secs_f64() * 1e3,
            report.resume.as_secs_f64() * 1e3,
        );
    }
    if let Some(plane) = plane {
        let outcomes = rt.migration_outcomes();
        println!(
            "faults injected: {} | outcomes: {} migrated, {} after retry, {} fell back to CR",
            plane.injected(),
            outcomes.migrated,
            outcomes.migrated_after_retry,
            outcomes.fell_back_to_cr,
        );
        assert_eq!(outcomes.lost, 0, "no trigger may be lost");
    }

    if let Some(path) = trace_path {
        let handle = sim.handle();
        let events = handle.tracer().drain_events();
        let names = handle.tracer().proc_names();
        telemetry::write_chrome_trace(&path, &events, &names).expect("write trace");
        println!(
            "\nwrote {} trace events to {path} (open in https://ui.perfetto.dev)",
            events.len()
        );
        let tl = Timeline::from_events(&events);
        print!("{}", tl.render());
    }
}
