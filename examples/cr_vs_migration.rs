//! The paper's headline comparison on one failure scenario: handling a
//! failing node with (a) proactive job migration vs (b) the traditional
//! coordinated Checkpoint/Restart cycle (dump to local ext3 or PVFS, then
//! restart everything). Prints the §IV-C style summary including the
//! speedup factors.
//!
//! Run with: `cargo run --release --example cr_vs_migration`

use rdma_jobmig::prelude::*;
use std::time::Duration;

fn migration_cost() -> Duration {
    let mut sim = Simulation::new(1);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
    let rt = JobRuntime::launch(
        &cluster,
        JobSpec::npb(Workload::new(NpbApp::Lu, NpbClass::C, 64), 8),
    );
    rt.control()
        .migrate_after(dur::secs(30), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    let r = &rt.migration_reports()[0];
    println!("  {r}");
    r.total()
}

fn cr_cost(store: CrStoreKind) -> Duration {
    let mut sim = Simulation::new(1);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
    let rt = JobRuntime::launch(
        &cluster,
        JobSpec::npb(Workload::new(NpbApp::Lu, NpbClass::C, 64), 8),
    );
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("script", move |ctx| {
        ctx.sleep(dur::secs(30));
        rt2.control().checkpoint(CheckpointRequest::to(store));
        ctx.sleep(dur::secs(60));
        rt2.control().restart_from_checkpoint(1);
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    let r = &rt.cr_reports()[0];
    println!("  {r}");
    r.total_with_restart().unwrap()
}

fn main() {
    println!("LU.C.64 on 8 nodes — time to handle one node failure:\n");
    println!("proactive job migration:");
    let mig = migration_cost();
    println!("\ncheckpoint/restart via local ext3:");
    let ext3 = cr_cost(CrStoreKind::LocalExt3);
    println!("\ncheckpoint/restart via PVFS:");
    let pvfs = cr_cost(CrStoreKind::Pvfs);

    println!("\nsummary:");
    println!("  migration      {:>8.1} s", mig.as_secs_f64());
    println!(
        "  CR (ext3)      {:>8.1} s   (migration speedup {:.2}x)",
        ext3.as_secs_f64(),
        ext3.as_secs_f64() / mig.as_secs_f64()
    );
    println!(
        "  CR (PVFS)      {:>8.1} s   (migration speedup {:.2}x)",
        pvfs.as_secs_f64(),
        pvfs.as_secs_f64() / mig.as_secs_f64()
    );
    println!("\npaper (Fig. 7a): 6.3 s vs 12.9 s (2.03x) vs 28.3 s (4.49x)");
}
