//! Live migration walkthrough: iterative pre-copy vs stop-and-copy.
//!
//! Run with: `cargo run --release --example live_migration`
//!
//! The demo runs the Figure 4 reference migration (LU.C.64, 8 compute
//! nodes, one spare, trigger at t = 30 s) twice on the same seed:
//!
//! 1. **pipelined stop-and-copy** — the PR 5 data path: the job suspends,
//!    then the whole image streams over striped RDMA lanes with per-rank
//!    restart overlap;
//! 2. **live pre-copy** — round 0 streams the full image while the ranks
//!    keep computing, later rounds stream only the segments dirtied since
//!    the previous round, and the convergence controller (downtime-budget
//!    policy by default) suspends the job only for the short residual
//!    stop-and-copy round.
//!
//! Both runs are traced, so the comparison is shown twice: from the
//! in-band `MigrationReport` and independently from the trace via
//! `telemetry::Timeline`, whose `downtime()`/`precopy()` split separates
//! barrier-held from overlapped wall time. A convergence log (one
//! `round_verdict` line per pre-copy round) shows the controller's
//! decisions: bytes moved, dirty bytes pending, continue/cut-over.
//!
//! Pass `--rounds N` to cap the pre-copy rounds, `--budget MS` to change
//! the downtime budget the controller aims for.

use rdma_jobmig::prelude::*;
use rdma_jobmig::simkit::{ArgValue, TraceEvent};

fn usage() -> ! {
    eprintln!("usage: live_migration [--rounds N] [--budget MS]");
    std::process::exit(2);
}

/// One traced reference migration; returns the report and the trace.
fn run(tuning: MigrationTuning) -> (MigrationReport, Vec<TraceEvent>) {
    let mut sim = Simulation::new(2010);
    sim.handle().tracer().set_enabled(true);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
    let wl = Workload::new(NpbApp::Lu, NpbClass::C, 64);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 8));
    rt.control().migrate_after(
        dur::secs(30),
        MigrationRequest::new().label("live-demo").tuning(tuning),
    );
    sim.run_until_set(rt.completion(), SimTime::MAX)
        .expect("simulation");
    assert_eq!(rt.migration_outcomes().lost, 0);
    (
        rt.migration_reports()[0].clone(),
        sim.handle().tracer().drain_events(),
    )
}

fn arg_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.args.iter().find_map(|(k, v)| match v {
        ArgValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn arg_str<'e>(ev: &'e TraceEvent, key: &str) -> Option<&'e str> {
    ev.args.iter().find_map(|(k, v)| match v {
        ArgValue::Str(s) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

fn main() {
    let mut cfg = LiveConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u32 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("invalid {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--rounds" => cfg.max_rounds = num("round cap"),
            "--budget" => cfg.downtime_budget_ms = num("budget (ms)"),
            _ => usage(),
        }
    }

    println!("reference migration: LU.C.64, 8 nodes + 1 spare, trigger at t=30s\n");

    let (base, _) = run(MigrationTuning::pipelined());
    println!("pipelined stop-and-copy:\n  {base}");

    let (live, events) = run(MigrationTuning::live().live_config(Some(cfg)));
    println!("\nlive pre-copy:\n  {live}");

    println!("\nconvergence log:");
    for ev in events.iter().filter(|e| e.name == "round_verdict") {
        println!(
            "  round {}: {:>6.1} MB moved, {:>6.1} MB still dirty -> {}",
            arg_u64(ev, "round").unwrap_or(0),
            arg_u64(ev, "bytes").unwrap_or(0) as f64 / 1e6,
            arg_u64(ev, "pending").unwrap_or(0) as f64 / 1e6,
            arg_str(ev, "verdict").unwrap_or("?"),
        );
    }

    // The same split, recovered from the trace alone.
    let tl = Timeline::from_events(&events);
    if let Some(stack) = tl.cycles().next().map(|(_, s)| s) {
        println!(
            "\ntrace-derived split: downtime {:.2} s, pre-copy {:.2} s (overlapped), wall {:.2} s",
            stack.downtime().as_secs_f64(),
            stack.precopy().as_secs_f64(),
            stack.wall().as_secs_f64(),
        );
    }

    let speedup = base.total().as_secs_f64() / live.downtime().as_secs_f64();
    println!(
        "\nbarrier-held downtime: {:.2} s -> {:.2} s ({speedup:.2}x lower); \
         wire bytes {:.1} MB -> {:.1} MB",
        base.total().as_secs_f64(),
        live.downtime().as_secs_f64(),
        base.bytes_moved as f64 / 1e6,
        live.bytes_moved as f64 / 1e6,
    );
    println!(
        "the job computes through the {} pre-copy round(s); only the residual \
         dirty segments move with the ranks suspended",
        live.precopy_rounds
    );
}
