//! Property: incremental FlowNet retiming is observably identical to the
//! full `recompute_and_retime` oracle.
//!
//! The incremental path skips rescheduling a flow's completion wake when
//! its rate and wake instant are provably unchanged (see the skip-guard
//! conditions in `flownet.rs`). This property drives random flow
//! add/remove schedules — staggered starts, shared links, mid-flight
//! kills — through both modes and asserts the runs are *bit*-identical:
//! same completion nanoseconds per flow, same per-link completed bytes,
//! and the same FNV digest over the full trace stream.

use parking_lot::Mutex;
use proptest::prelude::*;
use simkit::{FlowNet, Sharing, Simulation, TraceDigest};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct FlowSpec {
    /// Start delay in nanoseconds.
    start_ns: u64,
    /// Transfer size in bytes.
    bytes: u64,
    /// Bitmask selecting which links the flow crosses (masked to the
    /// link count; an empty selection falls back to link 0).
    link_mask: u32,
    /// Kill the owning process this many ns after its start, if set.
    kill_after_ns: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
struct Observed {
    /// (flow index, completion time in ns) for flows that finished.
    completions: Vec<(usize, u64)>,
    /// Completed bytes per link.
    link_bytes: Vec<u64>,
    digest: TraceDigest,
}

fn run_schedule(full_retime: bool, caps: &[f64], flows: &[FlowSpec]) -> Observed {
    let mut sim = Simulation::new(7);
    let handle = sim.handle();
    handle.tracer().set_digest_enabled(true);
    let net = FlowNet::new(&handle);
    net.set_full_retime(full_retime);
    let links: Vec<_> = caps
        .iter()
        .enumerate()
        .map(|(i, c)| net.add_link(&format!("l{i}"), *c, Sharing::Fair))
        .collect();
    let completions: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    for (i, f) in flows.iter().enumerate() {
        let mut path: Vec<_> = links
            .iter()
            .enumerate()
            .filter(|(j, _)| f.link_mask & (1 << j) != 0)
            .map(|(_, l)| *l)
            .collect();
        if path.is_empty() {
            path.push(links[0]);
        }
        let net = net.clone();
        let done = Arc::clone(&completions);
        let start = Duration::from_nanos(f.start_ns);
        let bytes = f.bytes;
        let ph = sim.spawn(&format!("flow{i}"), move |ctx| {
            ctx.sleep(start);
            net.transfer(ctx, &path, bytes);
            done.lock().push((i, ctx.now().as_nanos()));
        });
        if let Some(after) = f.kill_after_ns {
            let at = Duration::from_nanos(f.start_ns.saturating_add(after));
            sim.spawn(&format!("kill{i}"), move |ctx| {
                ctx.sleep(at);
                ph.kill();
            });
        }
    }
    sim.run().unwrap();
    let mut completions = Arc::try_unwrap(completions).unwrap().into_inner();
    completions.sort();
    Observed {
        completions,
        link_bytes: links.iter().map(|l| net.bytes_completed_on(*l)).collect(),
        digest: handle.tracer().digest(),
    }
}

fn flow_strategy() -> impl Strategy<Value = FlowSpec> {
    (
        0u64..2_000_000_000,
        1u64..50_000_000,
        any::<u32>(),
        any::<bool>(),
        0u64..1_000_000_000,
    )
        .prop_map(|(start_ns, bytes, link_mask, kill, kill_ns)| FlowSpec {
            start_ns,
            bytes,
            link_mask,
            kill_after_ns: kill.then_some(kill_ns),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_retiming_matches_full_oracle(
        caps_mbps in proptest::collection::vec(1u64..1000, 1..5),
        flows in proptest::collection::vec(flow_strategy(), 1..10),
    ) {
        let caps: Vec<f64> = caps_mbps.iter().map(|m| *m as f64 * 1e6).collect();
        let incremental = run_schedule(false, &caps, &flows);
        let oracle = run_schedule(true, &caps, &flows);
        // Completion instants bit-identical (u64 nanos — any rate drift
        // would shift these), per-link byte totals identical, and the
        // whole trace stream byte-identical.
        prop_assert_eq!(&incremental.completions, &oracle.completions);
        prop_assert_eq!(&incremental.link_bytes, &oracle.link_bytes);
        prop_assert_eq!(incremental.digest, oracle.digest);
    }
}
