//! Property tests of kernel invariants: work conservation of processor
//! sharing, semaphore accounting, countdown latches, determinism under
//! random schedules.

use proptest::prelude::*;
use simkit::dur::*;
use simkit::{Countdown, Link, Semaphore, Sharing, SimTime, Simulation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Processor sharing is work-conserving: when all flows arrive at
    /// t=0 on a Fair link, the last completion is exactly
    /// total_bytes / capacity.
    #[test]
    fn fair_link_is_work_conserving(
        sizes in proptest::collection::vec(1_000u64..10_000_000, 1..10),
        cap_mb in 1u64..2000,
    ) {
        let cap = cap_mb as f64 * 1e6;
        let mut sim = Simulation::new(0);
        let link = Link::new(&sim.handle(), "l", cap, Sharing::Fair);
        let last = Arc::new(AtomicU64::new(0));
        for (i, bytes) in sizes.iter().copied().enumerate() {
            let l = link.clone();
            let last = last.clone();
            sim.spawn(&format!("f{i}"), move |ctx| {
                l.transfer(ctx, bytes);
                last.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        let total: u64 = sizes.iter().sum();
        let expect = total as f64 / cap;
        let got = last.load(Ordering::SeqCst) as f64 / 1e9;
        prop_assert!((got - expect).abs() < expect * 1e-6 + 1e-6,
            "last completion {got} vs work-conservation bound {expect}");
    }

    /// With staggered arrivals, every flow finishes no earlier than its
    /// solo time and no earlier than the work-conservation bound of the
    /// flows that arrived before or with it.
    #[test]
    fn fair_link_respects_solo_lower_bound(
        flows in proptest::collection::vec((0u64..1000u64, 1_000u64..5_000_000), 1..8),
    ) {
        let cap = 100e6;
        let mut sim = Simulation::new(0);
        let link = Link::new(&sim.handle(), "l", cap, Sharing::Fair);
        let viol = Arc::new(AtomicU64::new(0));
        for (i, (start_ms, bytes)) in flows.iter().copied().enumerate() {
            let l = link.clone();
            let viol = viol.clone();
            sim.spawn(&format!("f{i}"), move |ctx| {
                ctx.sleep(ms(start_ms));
                let t0 = ctx.now();
                l.transfer(ctx, bytes);
                let took = (ctx.now() - t0).as_secs_f64();
                let solo = bytes as f64 / cap;
                if took + 1e-9 < solo {
                    viol.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(viol.load(Ordering::SeqCst), 0, "flow beat its solo time");
    }

    /// Semaphore: after any acquire/release workload completes, the
    /// permit count is restored and no waiter is stranded.
    #[test]
    fn semaphore_conserves_permits(
        ops in proptest::collection::vec((1u64..4, 0u64..300), 1..20),
        permits in 1u64..6,
    ) {
        let mut sim = Simulation::new(0);
        let sem = Semaphore::new(&sim.handle(), permits);
        for (i, (n, hold_us)) in ops.iter().copied().enumerate() {
            let n = n.min(permits); // never request more than exist
            let s = sem.clone();
            sim.spawn(&format!("u{i}"), move |ctx| {
                s.acquire(ctx, n);
                ctx.sleep(us(hold_us));
                s.release(n);
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(sem.available(), permits);
        prop_assert_eq!(sem.waiting(), 0);
    }

    /// Countdown latches release everyone exactly when the last arrival
    /// happens, regardless of arrival order.
    #[test]
    fn countdown_releases_at_last_arrival(
        delays in proptest::collection::vec(0u64..1000, 2..10),
    ) {
        let mut sim = Simulation::new(0);
        let n = delays.len() as u64;
        let cd = Countdown::new(&sim.handle(), "cd", n);
        let max_delay = *delays.iter().max().unwrap();
        let released_at = Arc::new(AtomicU64::new(u64::MAX));
        for (i, d) in delays.iter().copied().enumerate() {
            let cd = cd.clone();
            let rel = released_at.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.sleep(us(d));
                cd.arrive_and_wait(ctx);
                rel.fetch_min(ctx.now().as_micros(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        prop_assert!(cd.is_done());
        prop_assert_eq!(released_at.load(Ordering::SeqCst), max_delay);
    }

    /// Full determinism under arbitrary random workloads: two runs with
    /// the same seed produce the same final clock.
    #[test]
    fn random_workload_is_deterministic(seed in any::<u64>()) {
        fn run(seed: u64) -> SimTime {
            let mut sim = Simulation::new(seed);
            let link = Link::new(&sim.handle(), "l", 50e6, Sharing::Degraded { alpha: 0.2 });
            for i in 0..6 {
                let l = link.clone();
                sim.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..4 {
                        let (d, b) = ctx.with_rng(|r| {
                            (rand::Rng::gen_range(r, 0..5000u64),
                             rand::Rng::gen_range(r, 1000..2_000_000u64))
                        });
                        ctx.sleep(us(d));
                        l.transfer(ctx, b);
                    }
                });
            }
            sim.run().unwrap();
            sim.now()
        }
        prop_assert_eq!(run(seed), run(seed));
    }
}
