//! FlowNet: multi-link fluid flows with min-share rates.

use simkit::dur::*;
use simkit::{FlowNet, Sharing, Simulation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn single_link_flow_matches_link_semantics() {
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let l = net.add_link("a", 100e6, Sharing::Fair);
    let n2 = net.clone();
    sim.spawn("tx", move |ctx| {
        n2.transfer(ctx, &[l], 50_000_000);
        assert!((ctx.now().as_secs_f64() - 0.5).abs() < 1e-6);
    });
    sim.run().unwrap();
    assert_eq!(net.bytes_completed_on(l), 50_000_000);
    assert_eq!(net.active_on(l), 0);
}

#[test]
fn rate_is_min_across_links() {
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let fast = net.add_link("fast", 1000e6, Sharing::Fair);
    let slow = net.add_link("slow", 100e6, Sharing::Fair);
    let n2 = net.clone();
    sim.spawn("tx", move |ctx| {
        n2.transfer(ctx, &[fast, slow], 100_000_000);
        // bottlenecked by the 100 MB/s link
        assert!((ctx.now().as_secs_f64() - 1.0).abs() < 1e-6);
    });
    sim.run().unwrap();
}

#[test]
fn many_to_one_contends_at_receiver() {
    // 4 senders, each with a private 1 GB/s tx link, all into one 100 MB/s
    // rx link: each flow gets 25 MB/s.
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let rx = net.add_link("rx", 100e6, Sharing::Fair);
    let finish = Arc::new(AtomicU64::new(0));
    for i in 0..4 {
        let tx = net.add_link(&format!("tx{i}"), 1000e6, Sharing::Fair);
        let n = net.clone();
        let f = finish.clone();
        sim.spawn(&format!("s{i}"), move |ctx| {
            n.transfer(ctx, &[tx, rx], 25_000_000);
            f.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
    }
    sim.run().unwrap();
    let t = finish.load(Ordering::SeqCst) as f64 / 1e9;
    assert!((t - 1.0).abs() < 1e-3, "finished at {t}");
}

#[test]
fn disjoint_paths_do_not_interfere() {
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let a = net.add_link("a", 100e6, Sharing::Fair);
    let b = net.add_link("b", 100e6, Sharing::Fair);
    for (i, l) in [a, b].into_iter().enumerate() {
        let n = net.clone();
        sim.spawn(&format!("s{i}"), move |ctx| {
            n.transfer(ctx, &[l], 100_000_000);
            assert!((ctx.now().as_secs_f64() - 1.0).abs() < 1e-6);
        });
    }
    sim.run().unwrap();
}

#[test]
fn departure_releases_capacity_on_shared_link() {
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let shared = net.add_link("shared", 100e6, Sharing::Fair);
    let n1 = net.clone();
    sim.spawn("short", move |ctx| {
        n1.transfer(ctx, &[shared], 25_000_000); // 50 MB/s → 0.5 s
        assert!((ctx.now().as_secs_f64() - 0.5).abs() < 1e-6);
    });
    let n2 = net.clone();
    sim.spawn("long", move |ctx| {
        n2.transfer(ctx, &[shared], 75_000_000);
        // 25 MB in first 0.5 s, then full rate: 0.5 + 0.5 = 1.0 s
        assert!((ctx.now().as_secs_f64() - 1.0).abs() < 1e-6);
    });
    sim.run().unwrap();
}

#[test]
fn killed_flow_releases_all_links() {
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let a = net.add_link("a", 100e6, Sharing::Fair);
    let b = net.add_link("b", 100e6, Sharing::Fair);
    let n1 = net.clone();
    let doomed = sim.spawn("doomed", move |ctx| {
        n1.transfer(ctx, &[a, b], u64::MAX / 4);
        unreachable!();
    });
    let d2 = doomed.clone();
    sim.spawn("killer", move |ctx| {
        ctx.sleep(ms(10));
        d2.kill();
        ctx.sleep(ms(1));
    });
    sim.run().unwrap();
    assert_eq!(net.active_on(a), 0);
    assert_eq!(net.active_on(b), 0);
    assert_eq!(net.bytes_completed_on(a), 0, "aborted flow does not count");
}

#[test]
fn degraded_link_in_path() {
    // A disk-like degraded link shared by two flows that also cross private
    // fast links: aggregate = 100/(1+0.5) ≈ 66.7 MB/s → 33.3 MB/s each.
    let mut sim = Simulation::new(0);
    let net = FlowNet::new(&sim.handle());
    let disk = net.add_link("disk", 100e6, Sharing::Degraded { alpha: 0.5 });
    for i in 0..2 {
        let private = net.add_link(&format!("p{i}"), 1000e6, Sharing::Fair);
        let n = net.clone();
        sim.spawn(&format!("s{i}"), move |ctx| {
            n.transfer(ctx, &[private, disk], 33_333_333);
            let t = ctx.now().as_secs_f64();
            assert!((t - 1.0).abs() < 1e-3, "finished at {t}");
        });
    }
    sim.run().unwrap();
}
