//! Scheduler semantics: ordering, determinism, kill, join, deadlock,
//! bounded runs.

use simkit::dur::*;
use simkit::{Event, Queue, SimError, SimTime, Simulation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn clock_starts_at_zero_and_advances_with_sleep() {
    let mut sim = Simulation::new(0);
    assert_eq!(sim.now(), SimTime::ZERO);
    let log = Arc::new(AtomicU64::new(0));
    let l2 = log.clone();
    sim.spawn("sleeper", move |ctx| {
        ctx.sleep(ms(3));
        l2.store(ctx.now().as_nanos(), Ordering::SeqCst);
    });
    sim.run().unwrap();
    assert_eq!(log.load(Ordering::SeqCst), 3_000_000);
    assert_eq!(sim.now().as_millis(), 3);
}

#[test]
fn same_time_events_run_in_spawn_order() {
    let mut sim = Simulation::new(0);
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..5 {
        let order = order.clone();
        sim.spawn(&format!("p{i}"), move |ctx| {
            ctx.sleep(ms(10)); // all wake at exactly t=10ms
            order.lock().push(i);
        });
    }
    sim.run().unwrap();
    assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn nested_spawn_runs_at_current_instant() {
    let mut sim = Simulation::new(0);
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    sim.spawn("parent", move |ctx| {
        ctx.sleep(ms(5));
        let s3 = s2.clone();
        let child = ctx.spawn("child", move |cctx| {
            s3.store(cctx.now().as_millis(), Ordering::SeqCst);
        });
        ctx.join(&child);
        assert!(child.is_dead());
    });
    sim.run().unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 5);
}

#[test]
fn determinism_same_seed_same_trace() {
    fn run_once(seed: u64) -> Vec<(u64, u32)> {
        let mut sim = Simulation::new(seed);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..8u32 {
            let log = log.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..5 {
                    let jitter = ctx.with_rng(|r| rand::Rng::gen_range(r, 1..1000u64));
                    ctx.sleep(us(jitter));
                    log.lock().push((ctx.now().as_nanos(), i));
                }
            });
        }
        sim.run().unwrap();
        let v = log.lock().clone();
        v
    }
    let a = run_once(42);
    let b = run_once(42);
    let c = run_once(43);
    assert_eq!(a, b, "same seed must give identical schedules");
    assert_ne!(a, c, "different seed should perturb the schedule");
}

#[test]
fn kill_unwinds_at_next_block_and_join_sees_death() {
    let mut sim = Simulation::new(0);
    let progressed = Arc::new(AtomicU64::new(0));
    let p2 = progressed.clone();
    let victim = sim.spawn("victim", move |ctx| {
        ctx.sleep(ms(1));
        p2.fetch_add(1, Ordering::SeqCst);
        ctx.sleep(secs(100)); // killed during this sleep
        p2.fetch_add(100, Ordering::SeqCst); // never reached
    });
    let v2 = victim.clone();
    sim.spawn("killer", move |ctx| {
        ctx.sleep(ms(2));
        v2.kill();
        ctx.join(&v2);
        assert_eq!(ctx.now().as_millis(), 2, "kill takes effect immediately");
    });
    sim.run().unwrap();
    assert_eq!(progressed.load(Ordering::SeqCst), 1);
    assert!(victim.is_dead());
}

#[test]
fn exit_terminates_cleanly() {
    let mut sim = Simulation::new(0);
    let after = Arc::new(AtomicU64::new(0));
    let a2 = after.clone();
    sim.spawn("quitter", move |ctx| {
        ctx.sleep(ms(1));
        if ctx.now().as_millis() == 1 {
            ctx.exit();
        }
        a2.store(1, Ordering::SeqCst);
    });
    sim.run().unwrap();
    assert_eq!(after.load(Ordering::SeqCst), 0);
}

#[test]
fn proc_panic_surfaces_as_error() {
    let mut sim = Simulation::new(0);
    sim.spawn("bad", |ctx| {
        ctx.sleep(ms(1));
        panic!("intentional test panic");
    });
    match sim.run() {
        Err(SimError::ProcPanic { name, message, .. }) => {
            assert_eq!(name, "bad");
            assert!(message.contains("intentional test panic"));
        }
        other => panic!("expected ProcPanic, got {other:?}"),
    }
}

#[test]
fn deadlock_is_detected_and_named() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let never = Event::new(&h, "never");
    let n2 = never.clone();
    sim.spawn("stuck-a", move |ctx| n2.wait(ctx));
    let n3 = never.clone();
    sim.spawn("stuck-b", move |ctx| n3.wait(ctx));
    match sim.run() {
        Err(SimError::Deadlock { blocked, .. }) => {
            let names: Vec<_> = blocked.iter().map(|(_, n)| n.as_str()).collect();
            assert_eq!(names, vec!["stuck-a", "stuck-b"]);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn daemons_do_not_count_as_deadlock() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let q: Queue<u32> = Queue::new(&h);
    let q2 = q.clone();
    sim.spawn_daemon("service", move |ctx| loop {
        let _ = q2.pop(ctx);
    });
    sim.spawn("client", move |ctx| {
        ctx.sleep(ms(1));
        q.push(1);
        ctx.sleep(ms(1));
    });
    sim.run().unwrap();
    assert_eq!(sim.now().as_millis(), 2);
}

#[test]
fn run_until_stops_at_limit_and_resumes() {
    let mut sim = Simulation::new(0);
    let hits = Arc::new(AtomicU64::new(0));
    let h2 = hits.clone();
    sim.spawn("ticker", move |ctx| {
        for _ in 0..10 {
            ctx.sleep(ms(10));
            h2.fetch_add(1, Ordering::SeqCst);
        }
    });
    sim.run_until(SimTime::from_nanos(35_000_000)).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 3);
    assert_eq!(sim.now().as_millis(), 35, "clock parks exactly at limit");
    sim.run().unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 10);
    assert_eq!(sim.now().as_millis(), 100);
}

#[test]
fn run_for_advances_relative() {
    let mut sim = Simulation::new(0);
    sim.spawn("s", |ctx| ctx.sleep(secs(10)));
    sim.run_for(secs(1)).unwrap();
    assert_eq!(sim.now().as_millis(), 1000);
    sim.run_for(secs(1)).unwrap();
    assert_eq!(sim.now().as_millis(), 2000);
}

#[test]
fn join_on_already_dead_returns_immediately() {
    let mut sim = Simulation::new(0);
    let quick = sim.spawn("quick", |_| {});
    sim.spawn("joiner", move |ctx| {
        ctx.sleep(ms(5));
        ctx.join(&quick);
        assert_eq!(ctx.now().as_millis(), 5);
    });
    sim.run().unwrap();
}

#[test]
fn many_processes_scale() {
    let mut sim = Simulation::new(0);
    let count = Arc::new(AtomicU64::new(0));
    for i in 0..300 {
        let c = count.clone();
        sim.spawn(&format!("p{i}"), move |ctx| {
            ctx.sleep(us(i));
            c.fetch_add(1, Ordering::SeqCst);
        });
    }
    sim.run().unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 300);
}

#[test]
fn kill_before_first_run_never_executes_body() {
    let mut sim = Simulation::new(0);
    let ran = Arc::new(AtomicU64::new(0));
    let r2 = ran.clone();
    let p = sim.spawn("unborn", move |_| {
        r2.store(1, Ordering::SeqCst);
    });
    p.kill();
    sim.run().unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 0);
    assert!(p.is_dead());
}

#[test]
fn tracer_records_lifecycle() {
    let mut sim = Simulation::new(0);
    sim.handle().tracer().set_enabled(true);
    sim.spawn("a", |ctx| ctx.sleep(ms(1)));
    sim.run().unwrap();
    let recs = sim.handle().tracer().drain();
    assert!(recs.iter().any(|r| r.msg.contains("spawned 'a'")));
    assert!(recs.iter().any(|r| r.msg == "finished"));
}
