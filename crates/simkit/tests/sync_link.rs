//! Primitive semantics: Event, Gate, Queue, Semaphore, Link fluid model.

use simkit::dur::*;
use simkit::{Event, Gate, Link, Queue, Semaphore, Sharing, Simulation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn event_releases_all_waiters_at_set_instant() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let ev = Event::new(&h, "go");
    let woke = Arc::new(AtomicU64::new(0));
    for i in 0..4 {
        let ev = ev.clone();
        let woke = woke.clone();
        sim.spawn(&format!("w{i}"), move |ctx| {
            ev.wait(ctx);
            assert_eq!(ctx.now().as_millis(), 7);
            woke.fetch_add(1, Ordering::SeqCst);
        });
    }
    let ev2 = ev.clone();
    sim.spawn("setter", move |ctx| {
        ctx.sleep(ms(7));
        ev2.set();
    });
    sim.run().unwrap();
    assert_eq!(woke.load(Ordering::SeqCst), 4);
    assert!(ev.is_set());
}

#[test]
fn event_wait_after_set_is_instant() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let ev = Event::new(&h, "pre");
    ev.set();
    sim.spawn("late", move |ctx| {
        ev.wait(ctx);
        assert_eq!(ctx.now().as_nanos(), 0);
    });
    sim.run().unwrap();
}

#[test]
fn gate_close_blocks_and_reopen_releases() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let gate = Gate::new(&h, true);
    let passed = Arc::new(AtomicU64::new(0));

    let g2 = gate.clone();
    let p2 = passed.clone();
    sim.spawn("worker", move |ctx| {
        g2.wait(ctx); // open: passes at t=0
        p2.fetch_add(1, Ordering::SeqCst);
        ctx.sleep(ms(10));
        g2.wait(ctx); // closed at t=5, reopened at t=20
        assert_eq!(ctx.now().as_millis(), 20);
        p2.fetch_add(1, Ordering::SeqCst);
    });
    sim.spawn("controller", move |ctx| {
        ctx.sleep(ms(5));
        gate.close();
        ctx.sleep(ms(15));
        gate.open();
    });
    sim.run().unwrap();
    assert_eq!(passed.load(Ordering::SeqCst), 2);
}

#[test]
fn queue_is_fifo_across_waiters() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let q: Queue<u32> = Queue::new(&h);
    let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..3 {
        let q = q.clone();
        let got = got.clone();
        sim.spawn(&format!("consumer{i}"), move |ctx| {
            ctx.sleep(us(i)); // deterministic queueing order of consumers
            let v = q.pop(ctx);
            got.lock().push((i, v));
        });
    }
    sim.spawn("producer", move |ctx| {
        ctx.sleep(ms(1));
        for v in 10..13 {
            q.push(v);
        }
    });
    sim.run().unwrap();
    let got = got.lock();
    // consumers were queued in order 0,1,2 and items arrive 10,11,12
    assert_eq!(*got, vec![(0, 10), (1, 11), (2, 12)]);
}

#[test]
fn queue_push_before_pop_needs_no_waiter() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let q: Queue<&'static str> = Queue::new(&h);
    q.push("early");
    sim.spawn("c", move |ctx| {
        assert_eq!(q.pop(ctx), "early");
        assert_eq!(ctx.now().as_nanos(), 0);
    });
    sim.run().unwrap();
}

#[test]
fn queue_killed_waiter_does_not_swallow_item() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let q: Queue<u32> = Queue::new(&h);
    let q1 = q.clone();
    let doomed = sim.spawn("doomed", move |ctx| {
        let _ = q1.pop(ctx); // parked, then killed
        unreachable!();
    });
    let q2 = q.clone();
    let got = Arc::new(AtomicU64::new(0));
    let g2 = got.clone();
    sim.spawn("survivor", move |ctx| {
        ctx.sleep(us(1));
        let v = q2.pop(ctx);
        g2.store(v as u64, Ordering::SeqCst);
    });
    sim.spawn("driver", move |ctx| {
        ctx.sleep(ms(1));
        doomed.kill();
        ctx.sleep(ms(1));
        q.push(99); // must reach the live waiter, not the corpse
    });
    sim.run().unwrap();
    assert_eq!(got.load(Ordering::SeqCst), 99);
}

#[test]
fn semaphore_fifo_no_barging() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let sem = Semaphore::new(&h, 4);
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));

    // holder takes all 4 permits until t=10ms
    let s1 = sem.clone();
    sim.spawn("holder", move |ctx| {
        s1.acquire(ctx, 4);
        ctx.sleep(ms(10));
        s1.release(4);
    });
    // big requester queues first (t=1ms), small second (t=2ms)
    let s2 = sem.clone();
    let o2 = order.clone();
    sim.spawn("big", move |ctx| {
        ctx.sleep(ms(1));
        s2.acquire(ctx, 3);
        o2.lock().push("big");
        s2.release(3);
    });
    let s3 = sem.clone();
    let o3 = order.clone();
    sim.spawn("small", move |ctx| {
        ctx.sleep(ms(2));
        s3.acquire(ctx, 1);
        o3.lock().push("small");
        s3.release(1);
    });
    sim.run().unwrap();
    // FIFO: small must NOT barge past big even though 1 permit would be
    // free sooner under a non-FIFO policy.
    assert_eq!(*order.lock(), vec!["big", "small"]);
}

#[test]
fn semaphore_killed_head_does_not_wedge_queue() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let sem = Semaphore::new(&h, 0);
    let s1 = sem.clone();
    let doomed = sim.spawn("doomed", move |ctx| {
        s1.acquire(ctx, 5);
        unreachable!();
    });
    let s2 = sem.clone();
    let got = Arc::new(AtomicU64::new(0));
    let g = got.clone();
    sim.spawn("live", move |ctx| {
        ctx.sleep(us(1));
        s2.acquire(ctx, 1);
        g.store(ctx.now().as_millis(), Ordering::SeqCst);
    });
    sim.spawn("driver", move |ctx| {
        ctx.sleep(ms(1));
        doomed.kill();
        ctx.sleep(ms(1));
        sem.release(1);
    });
    sim.run().unwrap();
    assert_eq!(got.load(Ordering::SeqCst), 2);
}

// ---------------------------------------------------------------------------
// Link fluid model
// ---------------------------------------------------------------------------

#[test]
fn link_solo_transfer_takes_bytes_over_capacity() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    // 100 MB/s; 50 MB should take exactly 0.5 s.
    let link = Link::new(&h, "l", 100e6, Sharing::Fair);
    let l2 = link.clone();
    sim.spawn("tx", move |ctx| {
        l2.transfer(ctx, 50_000_000);
        let t = ctx.now().as_secs_f64();
        assert!((t - 0.5).abs() < 1e-6, "took {t}");
    });
    sim.run().unwrap();
    let st = link.stats();
    assert_eq!(st.bytes_completed, 50_000_000);
    assert_eq!(st.flows_completed, 1);
    assert_eq!(st.peak_flows, 1);
}

#[test]
fn link_two_equal_flows_share_fairly() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "l", 100e6, Sharing::Fair);
    let done = Arc::new(parking_lot::Mutex::new(Vec::new()));
    for i in 0..2 {
        let l = link.clone();
        let d = done.clone();
        sim.spawn(&format!("tx{i}"), move |ctx| {
            l.transfer(ctx, 50_000_000);
            d.lock().push(ctx.now().as_secs_f64());
        });
    }
    sim.run().unwrap();
    // Two concurrent 50 MB flows on 100 MB/s: both finish at t = 1.0 s.
    for t in done.lock().iter() {
        assert!((t - 1.0).abs() < 1e-6, "finished at {t}");
    }
    assert_eq!(link.stats().peak_flows, 2);
}

#[test]
fn link_late_arrival_slows_first_flow() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "l", 100e6, Sharing::Fair);
    let l1 = link.clone();
    sim.spawn("first", move |ctx| {
        l1.transfer(ctx, 100_000_000);
        // Alone 0–0.5s moves 50 MB; then shares 50 MB/s for remaining 50 MB
        // → finishes at 0.5 + 1.0 = 1.5 s.
        let t = ctx.now().as_secs_f64();
        assert!((t - 1.5).abs() < 1e-6, "first finished at {t}");
    });
    let l2 = link.clone();
    sim.spawn("second", move |ctx| {
        ctx.sleep(ms(500));
        l2.transfer(ctx, 100_000_000);
        // 0.5–1.5s at 50 MB/s moves 50 MB; then alone 50 MB at 100 MB/s
        // → finishes at 1.5 + 0.5 = 2.0 s.
        let t = ctx.now().as_secs_f64();
        assert!((t - 2.0).abs() < 1e-6, "second finished at {t}");
    });
    sim.run().unwrap();
}

#[test]
fn link_departure_speeds_up_survivor() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "l", 100e6, Sharing::Fair);
    let l1 = link.clone();
    sim.spawn("short", move |ctx| {
        l1.transfer(ctx, 25_000_000); // shares 50 MB/s → done at 0.5 s
        assert!((ctx.now().as_secs_f64() - 0.5).abs() < 1e-6);
    });
    let l2 = link.clone();
    sim.spawn("long", move |ctx| {
        l2.transfer(ctx, 75_000_000);
        // 0–0.5 s at 50 MB/s → 25 MB done; remaining 50 MB alone at
        // 100 MB/s → done at 1.0 s.
        let t = ctx.now().as_secs_f64();
        assert!((t - 1.0).abs() < 1e-6, "long finished at {t}");
    });
    sim.run().unwrap();
}

#[test]
fn degraded_link_loses_aggregate_with_streams() {
    // alpha=0.25, 8 streams: aggregate = cap / (1 + 0.25*7) = cap/2.75.
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "disk", 110e6, Sharing::Degraded { alpha: 0.25 });
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..8 {
        let l = link.clone();
        let d = done.clone();
        sim.spawn(&format!("s{i}"), move |ctx| {
            l.transfer(ctx, 10_000_000);
            d.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
    }
    sim.run().unwrap();
    // 80 MB total at 110/2.75 = 40 MB/s → 2.0 s.
    let t = done.load(Ordering::SeqCst) as f64 / 1e9;
    assert!((t - 2.0).abs() < 1e-3, "finished at {t}");
}

#[test]
fn killed_transfer_releases_bandwidth() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "l", 100e6, Sharing::Fair);
    let l1 = link.clone();
    let doomed = sim.spawn("doomed", move |ctx| {
        l1.transfer(ctx, 1_000_000_000); // would take 10 s alone
        unreachable!();
    });
    let l2 = link.clone();
    sim.spawn("winner", move |ctx| {
        l2.transfer(ctx, 100_000_000);
        // shares until doomed dies at t=0.1s, then alone:
        // 0–0.1 s: 5 MB at 50 MB/s; remaining 95 MB at 100 MB/s → 1.05 s.
        let t = ctx.now().as_secs_f64();
        assert!((t - 1.05).abs() < 1e-6, "winner finished at {t}");
    });
    sim.spawn("killer", move |ctx| {
        ctx.sleep(ms(100));
        doomed.kill();
    });
    sim.run().unwrap();
    assert_eq!(link.active_flows(), 0);
    assert_eq!(link.stats().flows_completed, 1);
}

#[test]
fn link_zero_bytes_is_instant() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "l", 1.0, Sharing::Fair);
    sim.spawn("z", move |ctx| {
        link.transfer(ctx, 0);
        assert_eq!(ctx.now().as_nanos(), 0);
    });
    sim.run().unwrap();
}

#[test]
fn link_busy_time_accounting() {
    let mut sim = Simulation::new(0);
    let h = sim.handle();
    let link = Link::new(&h, "l", 100e6, Sharing::Fair);
    let l2 = link.clone();
    sim.spawn("tx", move |ctx| {
        l2.transfer(ctx, 10_000_000); // 0.1 s busy
        ctx.sleep(secs(1)); // idle
        l2.transfer(ctx, 10_000_000); // 0.1 s busy
    });
    sim.run().unwrap();
    let busy = link.stats().busy.as_secs_f64();
    assert!((busy - 0.2).abs() < 1e-6, "busy was {busy}");
}

#[test]
fn link_solo_duration_estimate() {
    let sim = Simulation::new(0);
    let link = Link::new(&sim.handle(), "l", 200e6, Sharing::Fair);
    assert!((link.solo_duration(100_000_000).as_secs_f64() - 0.5).abs() < 1e-9);
    assert_eq!(link.capacity_bps(), 200e6);
}
