//! Blocking coordination primitives: one-shot events, resettable gates,
//! FIFO queues, counting semaphores.
//!
//! All primitives share the kernel's canonical-wake discipline: a waiter
//! registers itself in the primitive's waiter list and parks; a waker pushes
//! a fresh timer at the current instant. Waiter lists may contain processes
//! that have since been killed — wakers skip dead/killed entries so an item
//! or permit is never handed to a corpse.

use crate::kernel::{Kernel, ProcId, SimHandle};
use crate::process::Ctx;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Remove `pid` from a waiter list if still registered. Timed waits must
/// call this after waking: a pid left behind would be woken by a later
/// `set`/`push` while blocked in an unrelated sleep, corrupting its timing.
fn unregister(waiters: &mut VecDeque<u32>, pid: u32) {
    if let Some(pos) = waiters.iter().position(|&w| w == pid) {
        waiters.remove(pos);
    }
}

fn wake_one_live(kernel: &Kernel, waiters: &mut VecDeque<u32>) {
    while let Some(w) = waiters.pop_front() {
        let pid = ProcId(w);
        if !kernel.is_killed(pid) && kernel.wake_now(pid) {
            return;
        }
    }
}

fn wake_all_live(kernel: &Kernel, waiters: &mut VecDeque<u32>) {
    for w in waiters.drain(..) {
        let pid = ProcId(w);
        if !kernel.is_killed(pid) {
            kernel.wake_now(pid);
        }
    }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

struct EventInner {
    name: String,
    st: Mutex<(bool, VecDeque<u32>)>,
    /// Lock-free mirror of the set bit, handed to the kernel as the
    /// `run_until_set` stop flag: the direct-handoff dispatch path polls
    /// it before every event without touching the waiter lock.
    flag: Arc<AtomicBool>,
}

/// A one-shot broadcast event: once [`Event::set`], every current and future
/// [`Event::wait`] returns immediately. Cloning shares the event.
#[derive(Clone)]
pub struct Event {
    kernel: Arc<Kernel>,
    inner: Arc<EventInner>,
}

impl Event {
    /// Create an unset event.
    pub fn new(handle: &SimHandle, name: &str) -> Self {
        Event {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(EventInner {
                name: name.to_string(),
                st: Mutex::new((false, VecDeque::new())),
                flag: Arc::new(AtomicBool::new(false)),
            }),
        }
    }

    /// Whether the event has fired.
    pub fn is_set(&self) -> bool {
        self.inner.st.lock().0
    }

    /// Fire the event, waking all waiters. Idempotent.
    pub fn set(&self) {
        let mut st = self.inner.st.lock();
        if st.0 {
            return;
        }
        st.0 = true;
        self.inner.flag.store(true, Ordering::Release);
        wake_all_live(&self.kernel, &mut st.1);
    }

    /// The lock-free set-mirror consulted by the kernel's direct-handoff
    /// dispatcher while this event is a `run_until_set` target.
    pub(crate) fn set_mirror(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.flag)
    }

    /// Block until the event fires (immediately if already set).
    pub fn wait(&self, ctx: &Ctx) {
        ctx.check_killed();
        loop {
            {
                let mut st = self.inner.st.lock();
                if st.0 {
                    return;
                }
                st.1.push_back(ctx.pid().0);
            }
            ctx.block();
        }
    }

    /// Block until the event fires or `d` of virtual time elapses.
    /// Returns `true` if the event fired, `false` on timeout.
    pub fn wait_timeout(&self, ctx: &Ctx, d: Duration) -> bool {
        ctx.check_killed();
        let deadline = ctx.now() + d;
        loop {
            {
                let mut st = self.inner.st.lock();
                if st.0 {
                    return true;
                }
                if ctx.now() >= deadline {
                    return false;
                }
                st.1.push_back(ctx.pid().0);
            }
            self.kernel.schedule_wake(ctx.pid(), deadline);
            ctx.block();
            unregister(&mut self.inner.st.lock().1, ctx.pid().0);
        }
    }

    /// The event's diagnostic name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Event({}, set={})", self.inner.name, self.is_set())
    }
}

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

struct GateInner {
    st: Mutex<(bool, VecDeque<u32>)>,
}

/// A resettable gate: [`Gate::wait`] passes while open and parks while
/// closed. Used for suspend/resume points (e.g. the MPI library's
/// checkpoint gate, which closes during a migration and reopens after).
#[derive(Clone)]
pub struct Gate {
    kernel: Arc<Kernel>,
    inner: Arc<GateInner>,
}

impl Gate {
    /// Create a gate in the given initial state.
    pub fn new(handle: &SimHandle, open: bool) -> Self {
        Gate {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(GateInner {
                st: Mutex::new((open, VecDeque::new())),
            }),
        }
    }

    /// Whether the gate is currently open.
    pub fn is_open(&self) -> bool {
        self.inner.st.lock().0
    }

    /// Open the gate, releasing all parked waiters.
    pub fn open(&self) {
        let mut st = self.inner.st.lock();
        st.0 = true;
        wake_all_live(&self.kernel, &mut st.1);
    }

    /// Close the gate: subsequent waiters park until reopened.
    pub fn close(&self) {
        self.inner.st.lock().0 = false;
    }

    /// Pass if open, park until opened otherwise.
    pub fn wait(&self, ctx: &Ctx) {
        ctx.check_killed();
        loop {
            {
                let mut st = self.inner.st.lock();
                if st.0 {
                    return;
                }
                st.1.push_back(ctx.pid().0);
            }
            ctx.block();
        }
    }
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

struct QueueInner<T> {
    st: Mutex<(VecDeque<T>, VecDeque<u32>)>,
}

/// An unbounded FIFO channel between simulated processes. `push` never
/// blocks; `pop` parks until an item arrives. Cloning shares the queue.
pub struct Queue<T> {
    kernel: Arc<Kernel>,
    inner: Arc<QueueInner<T>>,
}

impl<T> Clone for Queue<T> {
    fn clone(&self) -> Self {
        Queue {
            kernel: Arc::clone(&self.kernel),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Queue<T> {
    /// Create an empty queue.
    pub fn new(handle: &SimHandle) -> Self {
        Queue {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(QueueInner {
                st: Mutex::new((VecDeque::new(), VecDeque::new())),
            }),
        }
    }

    /// Append an item and wake one waiter (if any). Callable from any
    /// context, including outside process threads.
    pub fn push(&self, item: T) {
        let mut st = self.inner.st.lock();
        st.0.push_back(item);
        let (_, waiters) = &mut *st;
        wake_one_live(&self.kernel, waiters);
    }

    /// Take the oldest item, parking until one is available.
    pub fn pop(&self, ctx: &Ctx) -> T {
        ctx.check_killed();
        loop {
            {
                let mut st = self.inner.st.lock();
                if let Some(item) = st.0.pop_front() {
                    // If items remain, keep the wave going for other waiters.
                    if !st.0.is_empty() {
                        let (_, waiters) = &mut *st;
                        wake_one_live(&self.kernel, waiters);
                    }
                    return item;
                }
                st.1.push_back(ctx.pid().0);
            }
            ctx.block();
        }
    }

    /// Take the oldest item, parking at most `d` of virtual time.
    /// Returns `None` on timeout.
    pub fn pop_timeout(&self, ctx: &Ctx, d: Duration) -> Option<T> {
        ctx.check_killed();
        let deadline = ctx.now() + d;
        loop {
            {
                let mut st = self.inner.st.lock();
                if let Some(item) = st.0.pop_front() {
                    if !st.0.is_empty() {
                        let (_, waiters) = &mut *st;
                        wake_one_live(&self.kernel, waiters);
                    }
                    return Some(item);
                }
                if ctx.now() >= deadline {
                    return None;
                }
                st.1.push_back(ctx.pid().0);
            }
            self.kernel.schedule_wake(ctx.pid(), deadline);
            ctx.block();
            unregister(&mut self.inner.st.lock().1, ctx.pid().0);
        }
    }

    /// Take the oldest item if one is present (never blocks).
    pub fn try_pop(&self) -> Option<T> {
        self.inner.st.lock().0.pop_front()
    }

    /// Drop queued items failing the predicate (never blocks; does not
    /// wake anyone). Used to purge protocol tokens that a killed process
    /// will re-issue after restart.
    pub fn retain(&self, f: impl FnMut(&T) -> bool) {
        self.inner.st.lock().0.retain(f);
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.st.lock().0.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Countdown
// ---------------------------------------------------------------------------

/// A one-shot countdown latch: created with a count, each participant
/// [`Countdown::arrive`]s once, and everyone blocked in
/// [`Countdown::wait`] is released when the count reaches zero.
#[derive(Clone)]
pub struct Countdown {
    remaining: Arc<Mutex<u64>>,
    done: Event,
}

impl Countdown {
    /// Create a latch expecting `count` arrivals (0 = already done).
    pub fn new(handle: &SimHandle, name: &str, count: u64) -> Self {
        let done = Event::new(handle, name);
        if count == 0 {
            done.set();
        }
        Countdown {
            remaining: Arc::new(Mutex::new(count)),
            done,
        }
    }

    /// Record one arrival (non-blocking). Arrivals after a
    /// [`Countdown::force_complete`] are ignored.
    pub fn arrive(&self) {
        let mut r = self.remaining.lock();
        if *r == 0 && self.done.is_set() {
            return; // forced open; late arrival from an aborted cycle
        }
        assert!(*r > 0, "Countdown over-arrived");
        *r -= 1;
        if *r == 0 {
            drop(r);
            self.done.set();
        }
    }

    /// Record an arrival, then block until everyone has arrived.
    pub fn arrive_and_wait(&self, ctx: &Ctx) {
        self.arrive();
        self.wait(ctx);
    }

    /// Block until the count reaches zero.
    pub fn wait(&self, ctx: &Ctx) {
        self.done.wait(ctx);
    }

    /// Block until the count reaches zero or `d` of virtual time elapses.
    /// Returns `true` if the countdown completed, `false` on timeout.
    pub fn wait_timeout(&self, ctx: &Ctx, d: Duration) -> bool {
        self.done.wait_timeout(ctx, d)
    }

    /// Force the latch open without waiting for outstanding arrivals,
    /// releasing all waiters. Used by abort paths to drain participants of
    /// a cancelled protocol cycle; late arrivals are then ignored.
    pub fn force_complete(&self) {
        let mut r = self.remaining.lock();
        *r = 0;
        drop(r);
        self.done.set();
    }

    /// Whether all arrivals have happened.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }

    /// Arrivals still outstanding.
    pub fn remaining(&self) -> u64 {
        *self.remaining.lock()
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemWaiter {
    pid: u32,
    n: u64,
}

struct SemInner {
    st: Mutex<(u64, VecDeque<SemWaiter>)>,
}

/// A FIFO counting semaphore. Acquisition order is strict FIFO: a large
/// request at the head blocks smaller requests behind it (no barging), which
/// is the fairness the buffer-pool manager requires.
#[derive(Clone)]
pub struct Semaphore {
    kernel: Arc<Kernel>,
    inner: Arc<SemInner>,
}

impl Semaphore {
    /// Create a semaphore holding `permits` initial permits.
    pub fn new(handle: &SimHandle, permits: u64) -> Self {
        Semaphore {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(SemInner {
                st: Mutex::new((permits, VecDeque::new())),
            }),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.inner.st.lock().0
    }

    /// Number of parked waiters.
    pub fn waiting(&self) -> usize {
        self.inner.st.lock().1.len()
    }

    /// Acquire `n` permits, parking FIFO until available.
    pub fn acquire(&self, ctx: &Ctx, n: u64) {
        ctx.check_killed();
        let pid = ctx.pid().0;
        let mut queued = false;
        loop {
            {
                let mut st = self.inner.st.lock();
                let (permits, waiters) = &mut *st;
                Self::purge_dead(&self.kernel, waiters);
                let at_front = waiters.front().map(|w| w.pid == pid).unwrap_or(false);
                if *permits >= n && (waiters.is_empty() || at_front) {
                    if at_front {
                        waiters.pop_front();
                    }
                    *permits -= n;
                    Self::wake_front_if_eligible(&self.kernel, *permits, waiters);
                    return;
                }
                if !queued {
                    waiters.push_back(SemWaiter { pid, n });
                    queued = true;
                }
            }
            ctx.block();
        }
    }

    /// Acquire `n` permits without blocking; returns whether it succeeded.
    pub fn try_acquire(&self, n: u64) -> bool {
        let mut st = self.inner.st.lock();
        let (permits, waiters) = &mut *st;
        Self::purge_dead(&self.kernel, waiters);
        if waiters.is_empty() && *permits >= n {
            *permits -= n;
            true
        } else {
            false
        }
    }

    /// Return `n` permits, waking the head waiter if now satisfiable.
    pub fn release(&self, n: u64) {
        let mut st = self.inner.st.lock();
        st.0 += n;
        let (permits, waiters) = &mut *st;
        Self::wake_front_if_eligible(&self.kernel, *permits, waiters);
    }

    fn purge_dead(kernel: &Kernel, waiters: &mut VecDeque<SemWaiter>) {
        while let Some(w) = waiters.front() {
            if kernel.is_killed(ProcId(w.pid)) {
                waiters.pop_front();
            } else {
                break;
            }
        }
    }

    fn wake_front_if_eligible(kernel: &Kernel, permits: u64, waiters: &mut VecDeque<SemWaiter>) {
        Self::purge_dead(kernel, waiters);
        if let Some(w) = waiters.front() {
            if w.n <= permits {
                kernel.wake_now(ProcId(w.pid));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end from `tests/` integration tests; unit coverage of
    // internal helpers lives here.
    use super::*;
    use crate::Simulation;

    #[test]
    fn semaphore_counts() {
        let sim = Simulation::new(0);
        let s = Semaphore::new(&sim.handle(), 3);
        assert_eq!(s.available(), 3);
        assert!(s.try_acquire(2));
        assert_eq!(s.available(), 1);
        assert!(!s.try_acquire(2));
        s.release(2);
        assert_eq!(s.available(), 3);
    }

    #[test]
    fn queue_try_pop() {
        let sim = Simulation::new(0);
        let q: Queue<u32> = Queue::new(&sim.handle());
        assert!(q.try_pop().is_none());
        q.push(7);
        q.push(8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(7));
        assert_eq!(q.try_pop(), Some(8));
        assert!(q.is_empty());
    }

    #[test]
    fn event_wait_timeout_expires_then_fires() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let e = Event::new(&h, "e");
        let done = Event::new(&h, "done");
        {
            let e = e.clone();
            let done = done.clone();
            h.spawn("waiter", move |ctx| {
                let t0 = ctx.now();
                assert!(!e.wait_timeout(ctx, Duration::from_millis(10)));
                assert_eq!(ctx.now(), t0 + Duration::from_millis(10));
                assert!(e.wait_timeout(ctx, Duration::from_secs(10)));
                done.set();
            });
        }
        {
            let e = e.clone();
            h.spawn("setter", move |ctx| {
                ctx.sleep(Duration::from_millis(50));
                e.set();
            });
        }
        sim.run_until_set(&done, crate::SimTime::MAX).unwrap();
        assert_eq!(sim.now(), crate::SimTime::ZERO + Duration::from_millis(50));
    }

    #[test]
    fn queue_pop_timeout_returns_none_then_item() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let q: Queue<u32> = Queue::new(&h);
        let done = Event::new(&h, "done");
        {
            let q = q.clone();
            let done = done.clone();
            h.spawn("popper", move |ctx| {
                assert_eq!(q.pop_timeout(ctx, Duration::from_millis(5)), None);
                assert_eq!(q.pop_timeout(ctx, Duration::from_secs(1)), Some(9));
                done.set();
            });
        }
        {
            let q = q.clone();
            h.spawn("pusher", move |ctx| {
                ctx.sleep(Duration::from_millis(20));
                q.push(9);
            });
        }
        sim.run_until_set(&done, crate::SimTime::MAX).unwrap();
    }

    #[test]
    fn countdown_force_complete_releases_and_ignores_late_arrivals() {
        let sim = Simulation::new(0);
        let c = Countdown::new(&sim.handle(), "c", 3);
        c.arrive();
        c.force_complete();
        assert!(c.is_done());
        c.arrive(); // late arrival from an aborted cycle: ignored
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn event_set_idempotent() {
        let sim = Simulation::new(0);
        let e = Event::new(&sim.handle(), "e");
        assert!(!e.is_set());
        e.set();
        e.set();
        assert!(e.is_set());
    }
}
