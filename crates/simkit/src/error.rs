//! Error and cancellation types.

use crate::kernel::ProcId;
use crate::time::SimTime;
use std::fmt;

/// Unwind sentinel raised inside a simulated process when it is killed.
///
/// Blocking primitives check the process's kill flag on every wake; when it
/// is set they `panic!` with a `Killed` payload. The process thread harness
/// downcasts panic payloads: a `Killed` payload is a *clean* death (node
/// failure, migration teardown), anything else is a genuine bug and aborts
/// the whole simulation with the original message.
///
/// Application code normally never observes `Killed`; it simply unwinds.
/// Code that must release non-RAII resources on death can use `catch_unwind`
/// and re-raise with [`Killed::resume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Killed {
    /// The process that was killed.
    pub pid: ProcId,
}

impl Killed {
    /// Re-raise the kill unwind (for use after a `catch_unwind` cleanup).
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(Box::new(self))
    }
}

impl fmt::Display for Killed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process {:?} killed", self.pid)
    }
}

/// Errors surfaced by [`crate::Simulation::run`].
#[derive(Debug)]
pub enum SimError {
    /// The event heap drained while live processes were still blocked with
    /// no pending wake: a genuine protocol deadlock. Lists the stuck
    /// processes to make failures diagnosable.
    Deadlock {
        /// Virtual time at which the simulation stalled.
        at: SimTime,
        /// `(pid, name)` of every blocked process.
        blocked: Vec<(ProcId, String)>,
    },
    /// A simulated process panicked with a non-[`Killed`] payload.
    ProcPanic {
        /// The offending process.
        pid: ProcId,
        /// Process name.
        name: String,
        /// Panic message, if it was a string payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(
                    f,
                    "simulation deadlocked at {at}: {} blocked process(es):",
                    blocked.len()
                )?;
                for (pid, name) in blocked {
                    write!(f, " [{:?} {name}]", pid)?;
                }
                Ok(())
            }
            SimError::ProcPanic { pid, name, message } => {
                write!(f, "process {pid:?} ({name}) panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}
