//! Kernel self-profiling: where the simulator's *wall-clock* time goes.
//!
//! The simulation is the workspace's own hot path — fleet soaks and
//! live-migration round sweeps push millions of scheduler events through
//! the kernel — so the kernel profiles itself. Two tiers:
//!
//! * **Counters** (events dispatched, timer-heap pushes, stale timers
//!   skipped, process/thread spawns, FlowNet retime traffic) are always
//!   maintained: one relaxed atomic increment each, noise next to the
//!   ~µs cost of a baton handoff.
//! * **Wall-clock timing** (ns per kernel category, per-process dispatch
//!   counts) reads the host monotonic clock twice per event and is off
//!   unless the `SIMKIT_PROF=1` environment variable is set when the
//!   [`Simulation`](crate::Simulation) is created (or
//!   [`SimHandle::set_prof`](crate::SimHandle::set_prof) is called).
//!
//! Neither tier affects virtual time or the trace stream: profiling a
//! run and not profiling it produce byte-identical traces.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Live counters owned by the kernel. Interior-mutable so every bump is
/// a relaxed atomic op under no lock.
pub(crate) struct Hot {
    /// Wall-clock timing armed (`SIMKIT_PROF=1` or `set_prof(true)`).
    prof: AtomicBool,
    /// Baton handoffs: timers popped as valid and handed to a process.
    pub(crate) dispatches: AtomicU64,
    /// Dispatches performed proc→proc (direct handoff), without waking
    /// the scheduler thread. Subset of `dispatches`.
    pub(crate) direct_handoffs: AtomicU64,
    /// Heap entries popped and discarded as stale (superseded wakes).
    pub(crate) stale_skips: AtomicU64,
    /// Timer-heap pushes (canonical wake replacements included).
    pub(crate) timer_pushes: AtomicU64,
    /// Peak timer-heap length observed at push time.
    pub(crate) heap_peak: AtomicU64,
    /// Simulated processes spawned.
    pub(crate) spawns: AtomicU64,
    /// OS threads actually created for them (spawns minus worker reuse).
    pub(crate) threads_created: AtomicU64,
    /// FlowNet rate recomputations (flow add/remove/wake).
    pub(crate) flow_recomputes: AtomicU64,
    /// Per-flow completion-wake reschedules issued to the kernel.
    pub(crate) flow_retimes: AtomicU64,
    /// Per-flow reschedules skipped because rate and wake were unchanged.
    pub(crate) flow_retime_skips: AtomicU64,
    /// ns the scheduler spent selecting timers (heap pop loop). Prof only.
    sched_ns: AtomicU64,
    /// ns between baton send and process yield (user code + handoff).
    /// Prof only.
    run_ns: AtomicU64,
    /// ns spent in `spawn_inner` (slot setup + thread create/reuse).
    /// Prof only.
    spawn_ns: AtomicU64,
    /// Dispatches per process. Prof only.
    per_proc: Mutex<BTreeMap<u32, u64>>,
}

impl Hot {
    pub(crate) fn new() -> Self {
        let prof = std::env::var("SIMKIT_PROF")
            .map(|v| v == "1")
            .unwrap_or(false);
        Hot {
            prof: AtomicBool::new(prof),
            dispatches: AtomicU64::new(0),
            direct_handoffs: AtomicU64::new(0),
            stale_skips: AtomicU64::new(0),
            timer_pushes: AtomicU64::new(0),
            heap_peak: AtomicU64::new(0),
            spawns: AtomicU64::new(0),
            threads_created: AtomicU64::new(0),
            flow_recomputes: AtomicU64::new(0),
            flow_retimes: AtomicU64::new(0),
            flow_retime_skips: AtomicU64::new(0),
            sched_ns: AtomicU64::new(0),
            run_ns: AtomicU64::new(0),
            spawn_ns: AtomicU64::new(0),
            per_proc: Mutex::new(BTreeMap::new()),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn raise_peak(&self, len: u64) {
        self.heap_peak.fetch_max(len, Ordering::Relaxed);
    }

    pub(crate) fn set_prof(&self, on: bool) {
        self.prof.store(on, Ordering::Relaxed);
    }

    /// Start a wall-clock measurement, `None` when profiling is off.
    #[inline]
    pub(crate) fn clock(&self) -> Option<Instant> {
        if self.prof.load(Ordering::Relaxed) {
            Some(Instant::now()) // jmlint: allow(wall_clock) — the profiler measures host time by design
        } else {
            None
        }
    }

    /// Close a measurement opened with [`Hot::clock`] into a category.
    #[inline]
    pub(crate) fn lap(&self, t0: Option<Instant>, cat: HotCat) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let counter = match cat {
                HotCat::Sched => &self.sched_ns,
                HotCat::Run => &self.run_ns,
                HotCat::Spawn => &self.spawn_ns,
            };
            counter.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Count one dispatch against `pid` (prof only — map update).
    #[inline]
    pub(crate) fn count_proc(&self, pid: u32) {
        if self.prof.load(Ordering::Relaxed) {
            *self.per_proc.lock().entry(pid).or_insert(0) += 1;
        }
    }

    pub(crate) fn snapshot(&self) -> HotStats {
        let mut per_proc: Vec<(u32, u64)> =
            self.per_proc.lock().iter().map(|(&p, &n)| (p, n)).collect();
        per_proc.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        HotStats {
            events_dispatched: self.dispatches.load(Ordering::Relaxed),
            direct_handoffs: self.direct_handoffs.load(Ordering::Relaxed),
            stale_timers_skipped: self.stale_skips.load(Ordering::Relaxed),
            timer_pushes: self.timer_pushes.load(Ordering::Relaxed),
            heap_peak: self.heap_peak.load(Ordering::Relaxed),
            procs_spawned: self.spawns.load(Ordering::Relaxed),
            threads_created: self.threads_created.load(Ordering::Relaxed),
            flow_recomputes: self.flow_recomputes.load(Ordering::Relaxed),
            flow_retimes: self.flow_retimes.load(Ordering::Relaxed),
            flow_retime_skips: self.flow_retime_skips.load(Ordering::Relaxed),
            sched_ns: self.sched_ns.load(Ordering::Relaxed),
            run_ns: self.run_ns.load(Ordering::Relaxed),
            spawn_ns: self.spawn_ns.load(Ordering::Relaxed),
            per_proc,
        }
    }
}

/// Wall-clock categories closed by [`Hot::lap`].
#[derive(Clone, Copy)]
pub(crate) enum HotCat {
    Sched,
    Run,
    Spawn,
}

/// A point-in-time snapshot of the kernel's self-profile (see
/// [`Simulation::hot_stats`](crate::Simulation::hot_stats)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Baton handoffs: timers popped as valid and handed to a process.
    /// This is the kernel's fundamental unit of work — "events/sec" in
    /// the wall-clock benches is this counter over elapsed host time.
    pub events_dispatched: u64,
    /// Dispatches done proc→proc without a scheduler-thread round trip
    /// (one context switch instead of two). Subset of `events_dispatched`.
    pub direct_handoffs: u64,
    /// Heap entries popped and discarded as stale (superseded wakes).
    pub stale_timers_skipped: u64,
    /// Timer-heap pushes.
    pub timer_pushes: u64,
    /// Peak timer-heap length observed.
    pub heap_peak: u64,
    /// Simulated processes spawned.
    pub procs_spawned: u64,
    /// OS threads created for them (less than `procs_spawned` when the
    /// kernel's worker pool reuses parked threads).
    pub threads_created: u64,
    /// FlowNet rate recomputations.
    pub flow_recomputes: u64,
    /// Per-flow completion-wake reschedules issued.
    pub flow_retimes: u64,
    /// Per-flow reschedules skipped as no-ops (rate and wake unchanged).
    pub flow_retime_skips: u64,
    /// Wall ns the scheduler spent selecting timers (prof only).
    pub sched_ns: u64,
    /// Wall ns between baton send and process yield (prof only).
    pub run_ns: u64,
    /// Wall ns spent spawning processes (prof only).
    pub spawn_ns: u64,
    /// Dispatch counts per process id, busiest first (prof only).
    pub per_proc: Vec<(u32, u64)>,
}

impl HotStats {
    /// Difference against an earlier snapshot (for profiling one phase of
    /// a longer run). `per_proc` is left empty.
    pub fn since(&self, earlier: &HotStats) -> HotStats {
        HotStats {
            events_dispatched: self.events_dispatched - earlier.events_dispatched,
            direct_handoffs: self.direct_handoffs - earlier.direct_handoffs,
            stale_timers_skipped: self.stale_timers_skipped - earlier.stale_timers_skipped,
            timer_pushes: self.timer_pushes - earlier.timer_pushes,
            heap_peak: self.heap_peak,
            procs_spawned: self.procs_spawned - earlier.procs_spawned,
            threads_created: self.threads_created - earlier.threads_created,
            flow_recomputes: self.flow_recomputes - earlier.flow_recomputes,
            flow_retimes: self.flow_retimes - earlier.flow_retimes,
            flow_retime_skips: self.flow_retime_skips - earlier.flow_retime_skips,
            sched_ns: self.sched_ns - earlier.sched_ns,
            run_ns: self.run_ns - earlier.run_ns,
            spawn_ns: self.spawn_ns - earlier.spawn_ns,
            per_proc: Vec::new(),
        }
    }

    /// Human-readable profile. `names` (e.g. from
    /// [`Tracer::proc_names`](crate::Tracer::proc_names)) labels the
    /// busiest processes when per-process counts were collected.
    pub fn report(&self, names: &HashMap<u32, String>) -> String {
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        out.push_str(&format!(
            "events dispatched   {:>12}\n\
             direct handoffs     {:>12}\n\
             timer pushes        {:>12}\n\
             stale timers        {:>12}\n\
             heap peak           {:>12}\n\
             procs spawned       {:>12}\n\
             threads created     {:>12}\n\
             flow recomputes     {:>12}\n\
             flow retimes        {:>12}\n\
             flow retime skips   {:>12}\n",
            self.events_dispatched,
            self.direct_handoffs,
            self.timer_pushes,
            self.stale_timers_skipped,
            self.heap_peak,
            self.procs_spawned,
            self.threads_created,
            self.flow_recomputes,
            self.flow_retimes,
            self.flow_retime_skips,
        ));
        if self.sched_ns + self.run_ns + self.spawn_ns > 0 {
            out.push_str(&format!(
                "sched wall          {:>12.1} ms\n\
                 run+handoff wall    {:>12.1} ms\n\
                 spawn wall          {:>12.1} ms\n",
                ms(self.sched_ns),
                ms(self.run_ns),
                ms(self.spawn_ns),
            ));
        }
        if !self.per_proc.is_empty() {
            out.push_str("busiest processes:\n");
            for (pid, n) in self.per_proc.iter().take(12) {
                let name = names.get(pid).map(String::as_str).unwrap_or("?");
                out.push_str(&format!("  p{pid:<6} {n:>10}  {name}\n"));
            }
        }
        out
    }
}
