//! Virtual-time instants.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation clock, measured in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is an absolute instant; spans of virtual time are expressed as
/// ordinary [`std::time::Duration`] values. The nanosecond `u64` range
/// covers ~584 years of virtual time, far beyond any experiment here.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `n` nanoseconds after the epoch.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// An instant `s` (fractional) seconds after the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid SimTime seconds: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (clock cannot run backwards).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        let dn: u64 = d
            .as_nanos()
            .try_into()
            .expect("duration too large for SimTime");
        SimTime(self.0.checked_add(dn).expect("SimTime overflow"))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "never")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_since_roundtrip() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_micros(1500);
        assert_eq!(t1.as_nanos(), 1_500_000);
        assert_eq!(t1.since(t0), Duration::from_micros(1500));
        assert_eq!(t1 - t0, Duration::from_micros(1500));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards() {
        SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_nanos(5_000)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_nanos(5_000_000)), "5.000ms");
        assert_eq!(
            format!("{}", SimTime::from_nanos(5_000_000_000)),
            "5.000000s"
        );
        assert_eq!(format!("{}", SimTime::MAX), "never");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_secs_f64(1e9));
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }
}
