//! # simkit — deterministic discrete-event simulation kernel
//!
//! `simkit` provides the virtual-time substrate on which the rest of this
//! workspace simulates an InfiniBand cluster: a scheduler with a nanosecond
//! virtual clock, *cooperative-thread processes* (each simulated process is
//! an OS thread that runs only while it holds the baton), timers, one-shot
//! events, FIFO queues, counting semaphores, and fluid-flow (processor
//! sharing) bandwidth links.
//!
//! ## Model
//!
//! * Exactly **one** process executes at any instant; the scheduler hands
//!   control to the process owning the earliest `(time, seq)` timer. Given a
//!   fixed seed, a simulation is fully deterministic.
//! * A process blocks by calling a primitive ([`Ctx::sleep`],
//!   [`Event::wait`], [`Queue::pop`], [`Link::transfer`], ...). Each block
//!   has a single *canonical wake*: a timer in the kernel heap. Wakers
//!   replace the pending timer, so retiming (e.g. a bandwidth share change)
//!   and spurious-wake suppression are uniform.
//! * Killing a process ([`SimHandle::kill`]) raises a [`Killed`] unwind at
//!   its next blocking call; the thread harness recognises the sentinel and
//!   records a clean death. This mirrors how signal-driven teardown
//!   interrupts real processes without forcing error plumbing through
//!   application code.
//!
//! ## Quick start
//!
//! ```
//! use simkit::{Simulation, Event};
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new(7);
//! let done = Event::new(&sim.handle(), "done");
//! let done2 = done.clone();
//! sim.spawn("worker", move |ctx| {
//!     ctx.sleep(Duration::from_millis(250));
//!     done2.set();
//! });
//! let d3 = done.clone();
//! sim.spawn("watcher", move |ctx| {
//!     d3.wait(ctx);
//!     assert_eq!(ctx.now().as_micros(), 250_000);
//! });
//! sim.run().unwrap();
//! ```

mod error;
mod flownet;
mod hotstats;
mod kernel;
mod link;
mod process;
mod sync;
mod time;
mod trace;

pub use error::{Killed, SimError};
pub use flownet::{FlowNet, LinkId};
pub use hotstats::HotStats;
pub use kernel::{ProcId, RunOutcome, SimHandle, Simulation};
pub use link::{Link, LinkStats, Sharing};
pub use process::{Ctx, ProcHandle, Span};
pub use sync::{Countdown, Event, Gate, Queue, Semaphore};
pub use time::SimTime;
pub use trace::{ArgValue, Args, EventKind, TraceDigest, TraceEvent, TraceRecord, Tracer};

/// Convenience constructors for [`std::time::Duration`] used pervasively in
/// simulation code and tests.
pub mod dur {
    use std::time::Duration;

    /// Duration of `n` nanoseconds.
    pub fn ns(n: u64) -> Duration {
        Duration::from_nanos(n)
    }
    /// Duration of `n` microseconds.
    pub fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }
    /// Duration of `n` milliseconds.
    pub fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }
    /// Duration of `n` seconds.
    pub fn secs(n: u64) -> Duration {
        Duration::from_secs(n)
    }
    /// Duration of `s` seconds given as floating point.
    pub fn secs_f64(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }
}
