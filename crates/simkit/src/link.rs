//! Fluid-flow (processor-sharing) bandwidth links.
//!
//! A [`Link`] models a shared bandwidth resource — an InfiniBand port, a
//! GigE NIC, a disk, a memory bus — using the classic *fluid model*: at any
//! instant the `n` active transfers share the link's aggregate capacity
//! equally, and shares are recomputed whenever a transfer starts or ends.
//! This captures the first-order contention behaviour the paper's
//! evaluation depends on (concurrent checkpoint streams degrading each
//! other) without per-packet simulation.
//!
//! Disks additionally suffer *seek degradation*: aggregate throughput drops
//! as concurrent streams force head movement. [`Sharing::Degraded`] models
//! this as `aggregate(n) = capacity / (1 + alpha * (n - 1))`.

use crate::kernel::{Kernel, SimHandle};
use crate::process::Ctx;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// How concurrent flows share a link's capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sharing {
    /// Ideal processor sharing: `n` flows each get `capacity / n`; aggregate
    /// stays at full capacity. Appropriate for network ports and memory
    /// buses.
    Fair,
    /// Seek-degraded sharing for rotating disks: aggregate capacity is
    /// `capacity / (1 + alpha * (n - 1))`, split evenly. `alpha = 0`
    /// degenerates to [`Sharing::Fair`].
    Degraded {
        /// Per-extra-stream degradation factor (typical ext3: 0.1–0.3).
        alpha: f64,
    },
}

impl Sharing {
    fn aggregate(&self, cap: f64, n: usize) -> f64 {
        debug_assert!(n > 0);
        match *self {
            Sharing::Fair => cap,
            Sharing::Degraded { alpha } => cap / (1.0 + alpha * (n as f64 - 1.0)),
        }
    }
}

/// Usage statistics accumulated by a [`Link`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Total payload bytes of completed transfers.
    pub bytes_completed: u64,
    /// Number of completed transfers.
    pub flows_completed: u64,
    /// Virtual time during which at least one flow was active.
    pub busy: Duration,
    /// Highest number of simultaneously active flows observed.
    pub peak_flows: usize,
}

struct Flow {
    id: u64,
    pid: u32,
    remaining: f64,
    bytes: u64,
}

struct Inner {
    name: String,
    cap: f64,
    sharing: Sharing,
    flows: Vec<Flow>,
    next_flow_id: u64,
    last_update: SimTime,
    stats: LinkStats,
}

impl Inner {
    /// Decrement all remaining byte counts by progress since `last_update`.
    fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        let n = self.flows.len();
        if n > 0 {
            let per_flow = self.sharing.aggregate(self.cap, n) / n as f64;
            for f in &mut self.flows {
                f.remaining = (f.remaining - per_flow * dt).max(0.0);
            }
            self.stats.busy += now - self.last_update;
        }
        self.last_update = now;
    }

    /// Reschedule every active flow's completion wake.
    fn retime_all(&mut self, kernel: &Kernel, now: SimTime) {
        let n = self.flows.len();
        if n == 0 {
            return;
        }
        let per_flow = self.sharing.aggregate(self.cap, n) / n as f64;
        for f in &self.flows {
            let secs = (f.remaining / per_flow).min(1e18); // clamp: "effectively never"
            let when = now.saturating_add(Duration::from_secs_f64(secs));
            kernel.schedule_wake(crate::kernel::ProcId(f.pid), when);
        }
    }

    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let idx = self.flows.iter().position(|f| f.id == id)?;
        Some(self.flows.swap_remove(idx))
    }
}

/// A shared-bandwidth resource. Cloning shares the link.
#[derive(Clone)]
pub struct Link {
    kernel: Arc<Kernel>,
    inner: Arc<Mutex<Inner>>,
}

impl Link {
    /// Create a link with `capacity` in bytes per second of virtual time.
    pub fn new(handle: &SimHandle, name: &str, capacity_bps: f64, sharing: Sharing) -> Self {
        assert!(
            capacity_bps > 0.0 && capacity_bps.is_finite(),
            "link capacity must be positive"
        );
        Link {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(Mutex::new(Inner {
                name: name.to_string(),
                cap: capacity_bps,
                sharing,
                flows: Vec::new(),
                next_flow_id: 0,
                last_update: handle.now(),
                stats: LinkStats::default(),
            })),
        }
    }

    /// Move `bytes` through the link, blocking for the fluid-model duration.
    /// Zero-byte transfers return immediately.
    ///
    /// If the calling process is killed mid-transfer, the flow is removed
    /// and remaining flows speed up (RAII guard), matching the behaviour of
    /// a connection torn down mid-stream.
    pub fn transfer(&self, ctx: &Ctx, bytes: u64) {
        ctx.check_killed();
        if bytes == 0 {
            return;
        }
        let flow_id = {
            let mut inner = self.inner.lock();
            let now = ctx.now();
            inner.advance_to(now);
            let id = inner.next_flow_id;
            inner.next_flow_id += 1;
            inner.flows.push(Flow {
                id,
                pid: ctx.pid().0,
                remaining: bytes as f64,
                bytes,
            });
            let nf = inner.flows.len();
            inner.stats.peak_flows = inner.stats.peak_flows.max(nf);
            inner.retime_all(&self.kernel, now);
            id
        };
        let guard = FlowGuard {
            link: self,
            flow_id,
            armed: true,
        };
        let mut guard = guard;
        // Completion tolerance: timer quantisation (1 ns) leaves at most a
        // couple of bytes of float residue per retiming at multi-GB/s rates.
        const DONE_EPS: f64 = 2.0;
        loop {
            ctx.block();
            let mut inner = self.inner.lock();
            let now = ctx.now();
            inner.advance_to(now);
            let done = inner
                .flows
                .iter()
                .find(|f| f.id == flow_id)
                .map(|f| f.remaining <= DONE_EPS)
                .expect("flow vanished while owner blocked");
            if done {
                let f = inner.remove_flow(flow_id).unwrap();
                inner.stats.bytes_completed += f.bytes;
                inner.stats.flows_completed += 1;
                inner.retime_all(&self.kernel, now);
                guard.armed = false;
                return;
            }
            // Spurious wake (stale timing after concurrent churn): ensure a
            // fresh completion wake exists and park again.
            inner.retime_all(&self.kernel, now);
        }
    }

    /// Time a transfer of `bytes` would take if it ran alone right now.
    pub fn solo_duration(&self, bytes: u64) -> Duration {
        let inner = self.inner.lock();
        Duration::from_secs_f64(bytes as f64 / inner.sharing.aggregate(inner.cap, 1))
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.inner.lock().flows.len()
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> LinkStats {
        self.inner.lock().stats
    }

    /// The link's diagnostic name.
    pub fn name(&self) -> String {
        self.inner.lock().name.clone()
    }

    /// Configured capacity in bytes/second.
    pub fn capacity_bps(&self) -> f64 {
        self.inner.lock().cap
    }
}

/// Removes the flow if the owning process unwinds mid-transfer.
struct FlowGuard<'a> {
    link: &'a Link,
    flow_id: u64,
    armed: bool,
}

impl Drop for FlowGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.link.inner.lock();
        let now = self.link.kernel.now();
        inner.advance_to(now);
        if inner.remove_flow(self.flow_id).is_some() {
            inner.retime_all(&self.link.kernel, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_aggregate_math() {
        let cap = 100.0;
        assert_eq!(Sharing::Fair.aggregate(cap, 1), 100.0);
        assert_eq!(Sharing::Fair.aggregate(cap, 10), 100.0);
        let d = Sharing::Degraded { alpha: 0.25 };
        assert_eq!(d.aggregate(cap, 1), 100.0);
        assert!((d.aggregate(cap, 8) - 100.0 / 2.75).abs() < 1e-9);
        let z = Sharing::Degraded { alpha: 0.0 };
        assert_eq!(z.aggregate(cap, 5), 100.0);
    }
}
