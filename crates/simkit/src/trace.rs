//! Lightweight execution tracing for debugging protocol interactions.

use crate::kernel::ProcId;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// A single trace record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Virtual time of the record.
    pub time: SimTime,
    /// Process the record is attributed to, if any.
    pub pid: Option<ProcId>,
    /// Free-form message.
    pub msg: String,
}

/// Collects [`TraceRecord`]s when enabled; optionally echoes them to stderr
/// as they are produced (useful when a test deadlocks before it can drain).
///
/// Disabled by default; recording is a single relaxed atomic load when off.
pub struct Tracer {
    enabled: AtomicBool,
    echo: AtomicBool,
    records: Mutex<Vec<TraceRecord>>,
}

impl Tracer {
    pub(crate) fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            echo: AtomicBool::new(false),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Turn record collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Also print each record to stderr as it is recorded.
    pub fn set_echo(&self, on: bool) {
        self.echo.store(on, Ordering::Relaxed);
    }

    /// Whether collection is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn rec(&self, time: SimTime, pid: Option<ProcId>, msg: &str) {
        let enabled = self.enabled.load(Ordering::Relaxed);
        let echo = self.echo.load(Ordering::Relaxed);
        if !enabled && !echo {
            return;
        }
        if echo {
            match pid {
                Some(p) => eprintln!("[{time}] {p:?}: {msg}"),
                None => eprintln!("[{time}] {msg}"),
            }
        }
        if enabled {
            self.records.lock().push(TraceRecord {
                time,
                pid,
                msg: msg.to_string(),
            });
        }
    }

    /// Remove and return all collected records.
    pub fn drain(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Number of collected records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.rec(SimTime::ZERO, None, "hello");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_collects_and_drains() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.rec(SimTime::from_nanos(5), Some(ProcId(3)), "a");
        t.rec(SimTime::from_nanos(9), None, "b");
        assert_eq!(t.len(), 2);
        let recs = t.drain();
        assert_eq!(recs[0].msg, "a");
        assert_eq!(recs[0].pid, Some(ProcId(3)));
        assert_eq!(recs[1].time.as_nanos(), 9);
        assert!(t.is_empty());
    }
}
