//! Structured execution tracing: the workspace-wide telemetry event bus.
//!
//! Every simulation [`Kernel`](crate::Simulation) owns one [`Tracer`].
//! Instrumented code emits [`TraceEvent`]s — spans ([`EventKind::Begin`]/
//! [`EventKind::End`]), point-in-time instants, numeric counter samples,
//! and free-form log messages — stamped with virtual time and the emitting
//! process id. Collection is **off by default**; when disabled, an emit is
//! a single relaxed atomic load and no event payload is constructed
//! (span/instant helpers take `impl Into<String>` and only materialise the
//! name when armed).
//!
//! Downstream, the `telemetry` crate aggregates the event stream into
//! counters/histograms and exports it as chrome://tracing JSON; the
//! `jobmig-core` `Timeline` rebuilds per-phase stacks (paper Fig. 4) from
//! `cat = "phase"` spans.
//!
//! Because the kernel is deterministic, the event sequence for a given
//! seed is bit-for-bit reproducible — traces are comparable across runs.

use crate::kernel::ProcId;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// A single legacy trace record (free-form message view of the stream).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Virtual time of the record.
    pub time: SimTime,
    /// Process the record is attributed to, if any.
    pub pid: Option<ProcId>,
    /// Free-form message.
    pub msg: String,
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Start of a span; paired with the next [`EventKind::End`] of the
    /// same `(pid, cat, name)`.
    Begin,
    /// End of a span.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled numeric series value (queue depth, bytes in flight, ...).
    Counter(f64),
    /// A free-form log message (the legacy [`Ctx::trace`](crate::Ctx::trace) path).
    Message,
}

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (ids, byte counts, chunk indexes).
    U64(u64),
    /// Floating point (rates, fractions).
    F64(f64),
    /// Text (names, transport kinds).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Key–value pairs attached to an event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// One structured telemetry event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time the event was emitted.
    pub time: SimTime,
    /// Emitting process, if emitted from process context.
    pub pid: Option<ProcId>,
    /// Category: a short static label grouping related events
    /// (`"phase"`, `"rdma"`, `"ckpt"`, `"ftb"`, `"store"`, `"mpi"`, `"log"`).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: String,
    /// What the event marks.
    pub kind: EventKind,
    /// Optional structured arguments.
    pub args: Args,
}

/// Running digest over the full trace-event stream.
///
/// FNV-1a-64 folded over a stable byte encoding of every event (time,
/// pid, category, name, kind, args) in emission order. Because the
/// kernel is deterministic, two runs of the same scenario produce the
/// same digest **iff** their trace streams are byte-identical — this is
/// the oracle the wall-clock optimization work is gated on: an optimized
/// kernel must reproduce the pre-optimization digest bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceDigest {
    /// FNV-1a-64 over the encoded event stream (`0xcbf29ce484222325`
    /// when no event has been folded).
    pub hash: u64,
    /// Number of events folded in.
    pub events: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl TraceDigest {
    fn new() -> Self {
        TraceDigest {
            hash: FNV_OFFSET,
            events: 0,
        }
    }

    #[inline]
    fn fold_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.hash;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }

    fn fold_event(&mut self, ev: &TraceEvent) {
        self.fold_bytes(&ev.time.as_nanos().to_le_bytes());
        match ev.pid {
            Some(p) => {
                self.fold_bytes(&[0x01]);
                self.fold_bytes(&p.0.to_le_bytes());
            }
            None => self.fold_bytes(&[0xFF]),
        }
        self.fold_bytes(ev.cat.as_bytes());
        self.fold_bytes(&[0]);
        self.fold_bytes(ev.name.as_bytes());
        self.fold_bytes(&[0]);
        match &ev.kind {
            EventKind::Begin => self.fold_bytes(&[1]),
            EventKind::End => self.fold_bytes(&[2]),
            EventKind::Instant => self.fold_bytes(&[3]),
            EventKind::Counter(v) => {
                self.fold_bytes(&[4]);
                self.fold_bytes(&v.to_bits().to_le_bytes());
            }
            EventKind::Message => self.fold_bytes(&[5]),
        }
        for (k, v) in &ev.args {
            self.fold_bytes(k.as_bytes());
            self.fold_bytes(&[0]);
            match v {
                ArgValue::U64(u) => {
                    self.fold_bytes(&[1]);
                    self.fold_bytes(&u.to_le_bytes());
                }
                ArgValue::F64(f) => {
                    self.fold_bytes(&[2]);
                    self.fold_bytes(&f.to_bits().to_le_bytes());
                }
                ArgValue::Str(s) => {
                    self.fold_bytes(&[3]);
                    self.fold_bytes(s.as_bytes());
                    self.fold_bytes(&[0]);
                }
            }
        }
        self.events += 1;
    }
}

/// Collects [`TraceEvent`]s when enabled; optionally echoes them to stderr
/// as they are produced (useful when a test deadlocks before it can drain).
///
/// Disabled by default; an emit is a single relaxed atomic load when off.
pub struct Tracer {
    enabled: AtomicBool,
    echo: AtomicBool,
    digest_on: AtomicBool,
    digest: Mutex<TraceDigest>,
    events: Mutex<Vec<TraceEvent>>,
    proc_names: Mutex<HashMap<u32, String>>,
}

impl Tracer {
    pub(crate) fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            echo: AtomicBool::new(false),
            digest_on: AtomicBool::new(false),
            digest: Mutex::new(TraceDigest::new()),
            events: Mutex::new(Vec::new()),
            proc_names: Mutex::new(HashMap::new()),
        }
    }

    /// Fold every subsequent event into a running [`TraceDigest`] instead
    /// of (or in addition to) collecting it. Digesting arms event
    /// construction like `set_enabled` but stores nothing per event, so
    /// soak-length runs can be digested in O(1) memory.
    pub fn set_digest_enabled(&self, on: bool) {
        self.digest_on.store(on, Ordering::Relaxed);
    }

    /// The running digest over every event folded so far.
    pub fn digest(&self) -> TraceDigest {
        *self.digest.lock()
    }

    /// Turn event collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Also print each event to stderr as it is recorded.
    pub fn set_echo(&self, on: bool) {
        self.echo.store(on, Ordering::Relaxed);
    }

    /// Whether collection is enabled. Check this before building an
    /// expensive event payload (formatted names, argument vectors).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn armed(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
            || self.echo.load(Ordering::Relaxed)
            || self.digest_on.load(Ordering::Relaxed)
    }

    /// Record a process name so exporters can label its track. Called by
    /// the kernel on every spawn; names survive `drain_events`.
    pub(crate) fn name_proc(&self, pid: ProcId, name: &str) {
        self.proc_names.lock().insert(pid.0, name.to_string());
    }

    /// Known process names, by raw pid.
    pub fn proc_names(&self) -> HashMap<u32, String> {
        self.proc_names.lock().clone()
    }

    /// Append a structured event (no-op unless enabled, digesting or
    /// echoing).
    pub fn emit(&self, ev: TraceEvent) {
        if !self.armed() {
            return;
        }
        if self.digest_on.load(Ordering::Relaxed) {
            self.digest.lock().fold_event(&ev);
        }
        if self.echo.load(Ordering::Relaxed) {
            let t = ev.time;
            let what = match &ev.kind {
                EventKind::Begin => format!("[{}] {} begin", ev.cat, ev.name),
                EventKind::End => format!("[{}] {} end", ev.cat, ev.name),
                EventKind::Instant => format!("[{}] {}", ev.cat, ev.name),
                EventKind::Counter(v) => format!("[{}] {} = {v}", ev.cat, ev.name),
                EventKind::Message => ev.name.clone(),
            };
            match ev.pid {
                Some(p) => eprintln!("[{t}] {p:?}: {what}"),
                None => eprintln!("[{t}] {what}"),
            }
        }
        if self.enabled.load(Ordering::Relaxed) {
            self.events.lock().push(ev);
        }
    }

    /// Emit a span-begin event.
    pub fn begin(
        &self,
        time: SimTime,
        pid: Option<ProcId>,
        cat: &'static str,
        name: impl Into<String>,
        args: Args,
    ) {
        if !self.armed() {
            return;
        }
        self.emit(TraceEvent {
            time,
            pid,
            cat,
            name: name.into(),
            kind: EventKind::Begin,
            args,
        });
    }

    /// Emit a span-end event.
    pub fn end(
        &self,
        time: SimTime,
        pid: Option<ProcId>,
        cat: &'static str,
        name: impl Into<String>,
        args: Args,
    ) {
        if !self.armed() {
            return;
        }
        self.emit(TraceEvent {
            time,
            pid,
            cat,
            name: name.into(),
            kind: EventKind::End,
            args,
        });
    }

    /// Emit a point-in-time instant event.
    pub fn instant(
        &self,
        time: SimTime,
        pid: Option<ProcId>,
        cat: &'static str,
        name: impl Into<String>,
        args: Args,
    ) {
        if !self.armed() {
            return;
        }
        self.emit(TraceEvent {
            time,
            pid,
            cat,
            name: name.into(),
            kind: EventKind::Instant,
            args,
        });
    }

    /// Emit a counter sample.
    pub fn counter(
        &self,
        time: SimTime,
        pid: Option<ProcId>,
        cat: &'static str,
        name: impl Into<String>,
        value: f64,
    ) {
        if !self.armed() {
            return;
        }
        self.emit(TraceEvent {
            time,
            pid,
            cat,
            name: name.into(),
            kind: EventKind::Counter(value),
            args: Vec::new(),
        });
    }

    /// Legacy free-form message record.
    pub(crate) fn rec(&self, time: SimTime, pid: Option<ProcId>, msg: &str) {
        if !self.armed() {
            return;
        }
        self.emit(TraceEvent {
            time,
            pid,
            cat: "log",
            name: msg.to_string(),
            kind: EventKind::Message,
            args: Vec::new(),
        });
    }

    /// Remove and return all collected events.
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Clone the collected events without draining them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Remove all collected events and return the free-form-message ones
    /// as legacy [`TraceRecord`]s. Structured events are discarded; use
    /// [`Tracer::drain_events`] to keep them.
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.drain_events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::Message))
            .map(|e| TraceRecord {
                time: e.time,
                pid: e.pid,
                msg: e.name,
            })
            .collect()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.rec(SimTime::ZERO, None, "hello");
        t.instant(SimTime::ZERO, None, "rdma", "chunk", Vec::new());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_collects_and_drains() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.rec(SimTime::from_nanos(5), Some(ProcId(3)), "a");
        t.rec(SimTime::from_nanos(9), None, "b");
        assert_eq!(t.len(), 2);
        let recs = t.drain();
        assert_eq!(recs[0].msg, "a");
        assert_eq!(recs[0].pid, Some(ProcId(3)));
        assert_eq!(recs[1].time.as_nanos(), 9);
        assert!(t.is_empty());
    }

    #[test]
    fn structured_events_roundtrip() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.begin(
            SimTime::from_nanos(1),
            Some(ProcId(1)),
            "phase",
            "migrate",
            vec![("cycle", 0u64.into())],
        );
        t.counter(SimTime::from_nanos(2), None, "store", "dirty", 0.5);
        t.end(
            SimTime::from_nanos(3),
            Some(ProcId(1)),
            "phase",
            "migrate",
            Vec::new(),
        );
        let evs = t.drain_events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[0].args, vec![("cycle", ArgValue::U64(0))]);
        assert_eq!(evs[1].kind, EventKind::Counter(0.5));
        assert_eq!(evs[2].kind, EventKind::End);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let emit_seq = |names: &[&str]| {
            let t = Tracer::new();
            t.set_digest_enabled(true);
            for (i, n) in names.iter().enumerate() {
                t.instant(
                    SimTime::from_nanos(i as u64),
                    Some(ProcId(1)),
                    "pool",
                    *n,
                    vec![("k", (i as u64).into())],
                );
            }
            t.digest()
        };
        let a = emit_seq(&["x", "y"]);
        let b = emit_seq(&["x", "y"]);
        let c = emit_seq(&["x", "z"]);
        assert_eq!(a, b, "same stream, same digest");
        assert_ne!(a.hash, c.hash, "different stream, different digest");
        assert_eq!(a.events, 2);
        // digesting alone stores no events
        let t = Tracer::new();
        t.set_digest_enabled(true);
        t.instant(SimTime::ZERO, None, "pool", "x", Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.digest().events, 1);
    }

    #[test]
    fn digest_distinguishes_kind_and_args() {
        let one = |kind: EventKind, args: Args| {
            let t = Tracer::new();
            t.set_digest_enabled(true);
            t.emit(TraceEvent {
                time: SimTime::ZERO,
                pid: None,
                cat: "c",
                name: "n".into(),
                kind,
                args,
            });
            t.digest().hash
        };
        let h1 = one(EventKind::Instant, Vec::new());
        let h2 = one(EventKind::Begin, Vec::new());
        let h3 = one(EventKind::Counter(1.0), Vec::new());
        let h4 = one(EventKind::Instant, vec![("a", 1u64.into())]);
        let h5 = one(EventKind::Instant, vec![("a", "1".into())]);
        assert!(h1 != h2 && h1 != h3 && h1 != h4 && h4 != h5);
    }

    #[test]
    fn legacy_drain_skips_structured_events() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.instant(SimTime::ZERO, None, "ftb", "publish", Vec::new());
        t.rec(SimTime::ZERO, None, "msg");
        let recs = t.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].msg, "msg");
    }
}
