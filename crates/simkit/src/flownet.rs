//! Multi-resource fluid flows: transfers that traverse several bandwidth
//! resources at once (e.g. sender tx port *and* receiver rx port).
//!
//! Each link splits its aggregate capacity equally among the flows crossing
//! it; a flow's instantaneous rate is the **minimum** of its per-link
//! shares. This is the classic conservative approximation of max-min fair
//! sharing (slack from non-bottleneck links is not redistributed), accurate
//! to first order for the traffic patterns simulated here and — importantly
//! — monotone and cheap to recompute on every arrival/departure.
//!
//! [`FlowNet`] complements [`crate::Link`]: use `Link` for a standalone
//! resource (a disk, a memory bus), `FlowNet` when flows share *paths*.

use crate::hotstats::Hot;
use crate::kernel::{Kernel, ProcId, SimHandle};
use crate::link::Sharing;
use crate::process::Ctx;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a link inside a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(u32);

struct NetLink {
    name: String,
    cap: f64,
    sharing: Sharing,
    active: u32,
    bytes_completed: u64,
}

struct NetFlow {
    pid: u32,
    links: Vec<LinkId>,
    remaining: f64,
    bytes: u64,
    rate: f64,
    /// Virtual instant of the completion wake last pushed for the owner.
    /// A retime whose recomputed rate *and* wake both equal the stored
    /// values is a no-op and is skipped (incremental mode).
    wake: SimTime,
}

struct NetInner {
    links: Vec<NetLink>,
    /// Cached per-link equal-split share, maintained incrementally: a
    /// link's share only changes when its `active` count does, so it is
    /// refreshed at flow add/remove instead of rebuilt per retime. The
    /// refresh uses the same expression as the full rebuild, so cached
    /// values are bit-identical to recomputed ones.
    shares: Vec<f64>,
    // BTreeMap, not HashMap: recompute_and_retime iterates this map and
    // schedules wakes in iteration order, which must be stable for
    // same-seed runs to replay identically (same-timestamp tie-breaks).
    flows: BTreeMap<u64, NetFlow>,
    next_flow: u64,
    last_update: SimTime,
    /// Force the pre-incremental behavior: reschedule every flow on every
    /// recompute. Kept as the oracle the incremental path is tested
    /// against (`SIMKIT_FULL_RETIME=1` or [`FlowNet::set_full_retime`]).
    full_retime: bool,
}

impl NetInner {
    fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        self.last_update = now;
    }

    /// Refresh the cached share of one link after its `active` changed.
    fn refresh_share(&mut self, l: LinkId) {
        let link = &self.links[l.0 as usize];
        self.shares[l.0 as usize] = if link.active == 0 {
            f64::INFINITY
        } else {
            link.sharing_aggregate() / link.active as f64
        };
    }

    /// Recompute every flow's rate from the cached link shares and retime
    /// the owners' completion wakes. In incremental mode a flow whose rate
    /// and recomputed wake instant are both unchanged keeps its pending
    /// timer; in full (oracle) mode every flow is rescheduled, as the
    /// pre-incremental kernel did.
    ///
    /// `running` names the caller's own flow, whose canonical wake has just
    /// fired and been consumed — it MUST be rescheduled even when the
    /// recomputed wake is unchanged, or its owner would block with no
    /// pending timer.
    ///
    /// The skip is byte-identical to the retime-everything oracle only
    /// under three kernel-verified conditions: the owner's canonical
    /// timer still sits at the stored wake (a kill may have replaced
    /// it), and the wake's exact nanosecond is *uncontended* — ties at
    /// equal virtual time are broken by timer insertion sequence, so a
    /// stale timer may only be kept where no tie is possible. Contended
    /// flows are refreshed on every recompute, in flow-id order, exactly
    /// reproducing the sequence numbers the oracle assigns.
    fn recompute_and_retime(&mut self, kernel: &Kernel, now: SimTime, running: Option<u64>) {
        Hot::bump(&kernel.hot.flow_recomputes);
        let shares = &self.shares;
        let full_retime = self.full_retime;
        kernel.with_wake_batch(|batch| {
            for (&id, f) in self.flows.iter_mut() {
                let rate = f
                    .links
                    .iter()
                    .map(|l| shares[l.0 as usize])
                    .fold(f64::INFINITY, f64::min);
                debug_assert!(rate.is_finite() && rate > 0.0);
                let secs = (f.remaining / rate).min(1e18); // clamp: "effectively never"
                let wake = now.saturating_add(Duration::from_secs_f64(secs));
                let pid = ProcId(f.pid);
                if !full_retime
                    && running != Some(id)
                    && rate.to_bits() == f.rate.to_bits()
                    && wake == f.wake
                    && batch.pending_matches(pid, wake)
                    && batch.pending_count_at(wake) <= 1
                {
                    Hot::bump(&kernel.hot.flow_retime_skips);
                    continue;
                }
                f.rate = rate;
                f.wake = wake;
                batch.schedule_wake(pid, wake);
                Hot::bump(&kernel.hot.flow_retimes);
            }
        });
    }
}

impl NetLink {
    fn sharing_aggregate(&self) -> f64 {
        match self.sharing {
            Sharing::Fair => self.cap,
            Sharing::Degraded { alpha } => {
                self.cap / (1.0 + alpha * (self.active.saturating_sub(1)) as f64)
            }
        }
    }
}

/// A set of bandwidth links over which multi-link fluid flows run.
#[derive(Clone)]
pub struct FlowNet {
    kernel: Arc<Kernel>,
    inner: Arc<Mutex<NetInner>>,
}

impl FlowNet {
    /// Create an empty flow network.
    pub fn new(handle: &SimHandle) -> Self {
        // Kernel-wide default (the `SIMKIT_FULL_RETIME=1` environment
        // variable at Simulation::new, or set_full_retime_default).
        let full_retime = handle
            .kernel
            .full_retime_default
            .load(std::sync::atomic::Ordering::Relaxed);
        FlowNet {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(Mutex::new(NetInner {
                links: Vec::new(),
                shares: Vec::new(),
                flows: BTreeMap::new(),
                next_flow: 0,
                last_update: handle.now(),
                full_retime,
            })),
        }
    }

    /// Force full (oracle) retiming: reschedule every flow on every
    /// recompute instead of skipping bit-identical no-ops. Used by the
    /// incremental≡full equivalence tests.
    pub fn set_full_retime(&self, on: bool) {
        self.inner.lock().full_retime = on;
    }

    /// Add a link with `capacity_bps` bytes/second.
    pub fn add_link(&self, name: &str, capacity_bps: f64, sharing: Sharing) -> LinkId {
        assert!(capacity_bps > 0.0 && capacity_bps.is_finite());
        let mut inner = self.inner.lock();
        let id = LinkId(inner.links.len() as u32);
        inner.links.push(NetLink {
            name: name.to_string(),
            cap: capacity_bps,
            sharing,
            active: 0,
            bytes_completed: 0,
        });
        inner.shares.push(f64::INFINITY);
        id
    }

    /// Move `bytes` across all of `links` simultaneously, blocking for the
    /// fluid-model duration. The flow's rate at any instant is the minimum
    /// of its equal-split shares on each link.
    pub fn transfer(&self, ctx: &Ctx, links: &[LinkId], bytes: u64) {
        ctx.check_killed();
        if bytes == 0 || links.is_empty() {
            return;
        }
        let flow_id = {
            let mut inner = self.inner.lock();
            let now = ctx.now();
            inner.advance_to(now);
            let id = inner.next_flow;
            inner.next_flow += 1;
            for l in links {
                inner.links[l.0 as usize].active += 1;
                inner.refresh_share(*l);
            }
            inner.flows.insert(
                id,
                NetFlow {
                    pid: ctx.pid().0,
                    links: links.to_vec(),
                    remaining: bytes as f64,
                    bytes,
                    rate: 0.0,
                    wake: SimTime::ZERO,
                },
            );
            inner.recompute_and_retime(&self.kernel, now, Some(id));
            id
        };
        let mut guard = NetFlowGuard {
            net: self,
            flow_id,
            armed: true,
        };
        const DONE_EPS: f64 = 2.0;
        loop {
            ctx.block();
            let mut inner = self.inner.lock();
            let now = ctx.now();
            inner.advance_to(now);
            let done = inner
                .flows
                .get(&flow_id)
                .map(|f| f.remaining <= DONE_EPS)
                .expect("flow vanished while owner blocked");
            if done {
                Self::finish_flow(&mut inner, flow_id, true);
                inner.recompute_and_retime(&self.kernel, now, None);
                guard.armed = false;
                return;
            }
            inner.recompute_and_retime(&self.kernel, now, Some(flow_id));
        }
    }

    fn finish_flow(inner: &mut NetInner, flow_id: u64, completed: bool) {
        if let Some(f) = inner.flows.remove(&flow_id) {
            for l in &f.links {
                let link = &mut inner.links[l.0 as usize];
                link.active -= 1;
                if completed {
                    link.bytes_completed += f.bytes;
                }
            }
            for l in &f.links {
                inner.refresh_share(*l);
            }
        }
    }

    /// Number of flows currently crossing `link`.
    pub fn active_on(&self, link: LinkId) -> usize {
        self.inner.lock().links[link.0 as usize].active as usize
    }

    /// Total completed bytes carried over `link`.
    pub fn bytes_completed_on(&self, link: LinkId) -> u64 {
        self.inner.lock().links[link.0 as usize].bytes_completed
    }

    /// The link's diagnostic name.
    pub fn link_name(&self, link: LinkId) -> String {
        self.inner.lock().links[link.0 as usize].name.clone()
    }
}

struct NetFlowGuard<'a> {
    net: &'a FlowNet,
    flow_id: u64,
    armed: bool,
}

impl Drop for NetFlowGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.net.inner.lock();
        let now = self.net.kernel.now();
        inner.advance_to(now);
        FlowNet::finish_flow(&mut inner, self.flow_id, false);
        inner.recompute_and_retime(&self.net.kernel, now, None);
    }
}
