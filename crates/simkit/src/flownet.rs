//! Multi-resource fluid flows: transfers that traverse several bandwidth
//! resources at once (e.g. sender tx port *and* receiver rx port).
//!
//! Each link splits its aggregate capacity equally among the flows crossing
//! it; a flow's instantaneous rate is the **minimum** of its per-link
//! shares. This is the classic conservative approximation of max-min fair
//! sharing (slack from non-bottleneck links is not redistributed), accurate
//! to first order for the traffic patterns simulated here and — importantly
//! — monotone and cheap to recompute on every arrival/departure.
//!
//! [`FlowNet`] complements [`crate::Link`]: use `Link` for a standalone
//! resource (a disk, a memory bus), `FlowNet` when flows share *paths*.

use crate::kernel::{Kernel, ProcId, SimHandle};
use crate::link::Sharing;
use crate::process::Ctx;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a link inside a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(u32);

struct NetLink {
    name: String,
    cap: f64,
    sharing: Sharing,
    active: u32,
    bytes_completed: u64,
}

struct NetFlow {
    pid: u32,
    links: Vec<LinkId>,
    remaining: f64,
    bytes: u64,
    rate: f64,
}

struct NetInner {
    links: Vec<NetLink>,
    // BTreeMap, not HashMap: recompute_and_retime iterates this map and
    // schedules wakes in iteration order, which must be stable for
    // same-seed runs to replay identically (same-timestamp tie-breaks).
    flows: BTreeMap<u64, NetFlow>,
    next_flow: u64,
    last_update: SimTime,
}

impl NetInner {
    fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        self.last_update = now;
    }

    /// Recompute every flow's rate from current link loads and reschedule
    /// every owner's completion wake.
    fn recompute_and_retime(&mut self, kernel: &Kernel, now: SimTime) {
        // Per-link equal split of (possibly degraded) aggregate capacity.
        let shares: Vec<f64> = self
            .links
            .iter()
            .map(|l| {
                if l.active == 0 {
                    f64::INFINITY
                } else {
                    l.sharing_aggregate() / l.active as f64
                }
            })
            .collect();
        for f in self.flows.values_mut() {
            let rate = f
                .links
                .iter()
                .map(|l| shares[l.0 as usize])
                .fold(f64::INFINITY, f64::min);
            debug_assert!(rate.is_finite() && rate > 0.0);
            f.rate = rate;
            let secs = (f.remaining / rate).min(1e18); // clamp: "effectively never"
            kernel.schedule_wake(
                ProcId(f.pid),
                now.saturating_add(Duration::from_secs_f64(secs)),
            );
        }
    }
}

impl NetLink {
    fn sharing_aggregate(&self) -> f64 {
        match self.sharing {
            Sharing::Fair => self.cap,
            Sharing::Degraded { alpha } => {
                self.cap / (1.0 + alpha * (self.active.saturating_sub(1)) as f64)
            }
        }
    }
}

/// A set of bandwidth links over which multi-link fluid flows run.
#[derive(Clone)]
pub struct FlowNet {
    kernel: Arc<Kernel>,
    inner: Arc<Mutex<NetInner>>,
}

impl FlowNet {
    /// Create an empty flow network.
    pub fn new(handle: &SimHandle) -> Self {
        FlowNet {
            kernel: Arc::clone(&handle.kernel),
            inner: Arc::new(Mutex::new(NetInner {
                links: Vec::new(),
                flows: BTreeMap::new(),
                next_flow: 0,
                last_update: handle.now(),
            })),
        }
    }

    /// Add a link with `capacity_bps` bytes/second.
    pub fn add_link(&self, name: &str, capacity_bps: f64, sharing: Sharing) -> LinkId {
        assert!(capacity_bps > 0.0 && capacity_bps.is_finite());
        let mut inner = self.inner.lock();
        let id = LinkId(inner.links.len() as u32);
        inner.links.push(NetLink {
            name: name.to_string(),
            cap: capacity_bps,
            sharing,
            active: 0,
            bytes_completed: 0,
        });
        id
    }

    /// Move `bytes` across all of `links` simultaneously, blocking for the
    /// fluid-model duration. The flow's rate at any instant is the minimum
    /// of its equal-split shares on each link.
    pub fn transfer(&self, ctx: &Ctx, links: &[LinkId], bytes: u64) {
        ctx.check_killed();
        if bytes == 0 || links.is_empty() {
            return;
        }
        let flow_id = {
            let mut inner = self.inner.lock();
            let now = ctx.now();
            inner.advance_to(now);
            let id = inner.next_flow;
            inner.next_flow += 1;
            for l in links {
                inner.links[l.0 as usize].active += 1;
            }
            inner.flows.insert(
                id,
                NetFlow {
                    pid: ctx.pid().0,
                    links: links.to_vec(),
                    remaining: bytes as f64,
                    bytes,
                    rate: 0.0,
                },
            );
            inner.recompute_and_retime(&self.kernel, now);
            id
        };
        let mut guard = NetFlowGuard {
            net: self,
            flow_id,
            armed: true,
        };
        const DONE_EPS: f64 = 2.0;
        loop {
            ctx.block();
            let mut inner = self.inner.lock();
            let now = ctx.now();
            inner.advance_to(now);
            let done = inner
                .flows
                .get(&flow_id)
                .map(|f| f.remaining <= DONE_EPS)
                .expect("flow vanished while owner blocked");
            if done {
                Self::finish_flow(&mut inner, flow_id, true);
                inner.recompute_and_retime(&self.kernel, now);
                guard.armed = false;
                return;
            }
            inner.recompute_and_retime(&self.kernel, now);
        }
    }

    fn finish_flow(inner: &mut NetInner, flow_id: u64, completed: bool) {
        if let Some(f) = inner.flows.remove(&flow_id) {
            for l in &f.links {
                let link = &mut inner.links[l.0 as usize];
                link.active -= 1;
                if completed {
                    link.bytes_completed += f.bytes;
                }
            }
        }
    }

    /// Number of flows currently crossing `link`.
    pub fn active_on(&self, link: LinkId) -> usize {
        self.inner.lock().links[link.0 as usize].active as usize
    }

    /// Total completed bytes carried over `link`.
    pub fn bytes_completed_on(&self, link: LinkId) -> u64 {
        self.inner.lock().links[link.0 as usize].bytes_completed
    }

    /// The link's diagnostic name.
    pub fn link_name(&self, link: LinkId) -> String {
        self.inner.lock().links[link.0 as usize].name.clone()
    }
}

struct NetFlowGuard<'a> {
    net: &'a FlowNet,
    flow_id: u64,
    armed: bool,
}

impl Drop for NetFlowGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.net.inner.lock();
        let now = self.net.kernel.now();
        inner.advance_to(now);
        FlowNet::finish_flow(&mut inner, self.flow_id, false);
        inner.recompute_and_retime(&self.net.kernel, now);
    }
}
