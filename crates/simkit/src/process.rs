//! Per-process execution context.

use crate::error::Killed;
use crate::kernel::{Baton, Kernel, ProcId, SimHandle, YieldMsg};
use crate::time::SimTime;
use crate::trace::Args;
use rand::rngs::StdRng;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

/// The execution context handed to every simulated process body.
///
/// A `Ctx` is unique to its process thread; blocking calls
/// ([`Ctx::sleep`], [`Event::wait`](crate::Event::wait), [`Queue::pop`](crate::Queue::pop),
/// [`Link::transfer`](crate::Link::transfer), ...)
/// may only be made through it. All blocking calls are kill points: if the
/// process has been killed they unwind with a [`Killed`] payload.
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: ProcId,
    baton: Arc<Baton>,
    /// Legacy-mode rendezvous (direct handoff disabled): the channel the
    /// scheduler's dispatch send arrives on.
    resume_rx: Receiver<()>,
}

impl Ctx {
    pub(crate) fn new(
        kernel: Arc<Kernel>,
        pid: ProcId,
        baton: Arc<Baton>,
        resume_rx: Receiver<()>,
    ) -> Self {
        Ctx {
            kernel,
            pid,
            baton,
            resume_rx,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// This process's name (interned at spawn; cloning is a refcount).
    pub fn name(&self) -> Arc<str> {
        self.kernel.proc_name(self.pid)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// A cloneable kernel handle (for spawning, killing, constructing
    /// primitives).
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            kernel: Arc::clone(&self.kernel),
        }
    }

    /// Spawn a child process (not a daemon).
    pub fn spawn(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.handle().spawn(name, f)
    }

    /// Spawn a daemon process (exempt from deadlock detection).
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.handle().spawn_daemon(name, f)
    }

    /// Advance virtual time by `d`. A zero-duration sleep still yields,
    /// letting other processes scheduled at the same instant run first.
    pub fn sleep(&self, d: Duration) {
        self.check_killed();
        let when = self.kernel.now() + d;
        self.kernel.schedule_wake(self.pid, when);
        self.block();
    }

    /// Block until `target` has terminated. Returns immediately if it is
    /// already dead.
    pub fn join(&self, target: &ProcHandle) {
        self.check_killed();
        loop {
            if !self.kernel.add_join_waiter(target.pid(), self.pid) {
                return; // already dead
            }
            self.block();
            if self.kernel.is_dead(target.pid()) {
                return;
            }
        }
    }

    /// Draw from the simulation-global deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        self.kernel.with_rng(f)
    }

    /// Append a trace record attributed to this process.
    pub fn trace(&self, msg: &str) {
        self.kernel.tracer.rec(self.now(), Some(self.pid), msg);
    }

    /// Whether telemetry collection is on. Check before building an
    /// expensive event payload (formatted names, argument vectors).
    #[inline]
    pub fn telemetry_on(&self) -> bool {
        self.kernel.tracer.is_enabled()
    }

    /// Open a telemetry span attributed to this process; it ends when the
    /// returned guard drops (or at an explicit [`Span::end`]).
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> Span {
        self.span_with(cat, name, Vec::new)
    }

    /// Open a telemetry span with arguments attached to its begin event.
    /// `args` is only invoked when telemetry is on.
    pub fn span_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) -> Span {
        Span::open(Arc::clone(&self.kernel), Some(self.pid), cat, name, args)
    }

    /// Emit a point-in-time telemetry event attributed to this process.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>) {
        self.instant_with(cat, name, Vec::new);
    }

    /// Emit an instant event with arguments; `args` is only invoked when
    /// telemetry is on.
    pub fn instant_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) {
        if self.kernel.tracer.armed() {
            self.kernel
                .tracer
                .instant(self.now(), Some(self.pid), cat, name, args());
        }
    }

    /// Emit a telemetry counter sample attributed to this process.
    pub fn counter(&self, cat: &'static str, name: impl Into<String>, value: f64) {
        self.kernel
            .tracer
            .counter(self.now(), Some(self.pid), cat, name, value);
    }

    /// Terminate this process immediately (clean voluntary exit via the
    /// kill-unwind path).
    pub fn exit(&self) -> ! {
        std::panic::panic_any(Killed { pid: self.pid });
    }

    /// Unwind with [`Killed`] if this process has been killed. All blocking
    /// primitives call this; long compute-only loops may call it to poll.
    pub fn check_killed(&self) {
        if self.kernel.is_killed(self.pid) {
            std::panic::panic_any(Killed { pid: self.pid });
        }
    }

    /// Yield the baton and park until the canonical wake fires.
    ///
    /// The caller must have *already registered* its wake condition (a
    /// timer via `schedule_wake`, or membership in a primitive's waiter
    /// list). Checks the kill flag on resume.
    pub(crate) fn block(&self) {
        // Fast path: dispatch the next event ourselves (one context
        // switch). Chain breaks — finish, quiescence, limit, stop flag,
        // handoff disabled — wake the scheduler thread instead.
        if !self.kernel.try_handoff() {
            self.kernel
                .yield_tx
                .send(YieldMsg {
                    pid: self.pid.0,
                    finished: None,
                })
                .expect("scheduler gone while process running");
        }
        if self.kernel.direct_on() {
            self.baton.take();
        } else {
            self.resume_rx
                .recv()
                .expect("scheduler dropped resume channel");
        }
        self.check_killed();
    }
}

/// Handle to a spawned process: query liveness, kill it, or `join` it from
/// another process via [`Ctx::join`].
#[derive(Clone)]
pub struct ProcHandle {
    pid: ProcId,
    kernel: Arc<Kernel>,
}

impl ProcHandle {
    pub(crate) fn new(pid: ProcId, kernel: Arc<Kernel>) -> Self {
        ProcHandle { pid, kernel }
    }

    /// The process id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Whether the process has terminated.
    pub fn is_dead(&self) -> bool {
        self.kernel.is_dead(self.pid)
    }

    /// Kill the process (it unwinds at its next blocking call).
    pub fn kill(&self) {
        self.kernel.kill(self.pid)
    }
}

impl std::fmt::Debug for ProcHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcHandle({:?})", self.pid)
    }
}

/// RAII telemetry span: emits a begin event when opened (via
/// [`Ctx::span`]/[`SimHandle::span`]) and the matching end event — stamped
/// with the virtual time at that moment — when dropped or explicitly
/// closed with [`Span::end`].
///
/// When telemetry is off at open time the span is disarmed: no event is
/// built and drop is free.
#[must_use = "a span ends when dropped; binding it to _ ends it immediately"]
pub struct Span {
    // None when telemetry was off at open time.
    armed: Option<(Arc<Kernel>, Option<ProcId>, &'static str, String)>,
}

impl Span {
    pub(crate) fn open(
        kernel: Arc<Kernel>,
        pid: Option<ProcId>,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) -> Self {
        if !kernel.tracer.is_enabled() {
            return Span { armed: None };
        }
        let name = name.into();
        kernel
            .tracer
            .begin(kernel.now(), pid, cat, name.clone(), args());
        Span {
            armed: Some((kernel, pid, cat, name)),
        }
    }

    /// Close the span now, attaching `args` to the end event.
    pub fn end_with(mut self, args: Args) {
        if let Some((kernel, pid, cat, name)) = self.armed.take() {
            kernel.tracer.end(kernel.now(), pid, cat, name, args);
        }
    }

    /// Close the span now.
    pub fn end(self) {
        self.end_with(Vec::new());
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((kernel, pid, cat, name)) = self.armed.take() {
            kernel.tracer.end(kernel.now(), pid, cat, name, Vec::new());
        }
    }
}
