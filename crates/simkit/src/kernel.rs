//! The event-heap scheduler and the cooperative-thread machinery.
//!
//! # Scheduling model
//!
//! Every blocked process has at most one *canonical wake*: an entry in the
//! global timer heap identified by a sequence number stored in the process
//! slot (`pending_seq`). Waking, retiming and killing all go through the
//! same mechanism — push a fresh timer and overwrite `pending_seq` — so
//! stale heap entries are recognised and skipped when popped. This gives a
//! single, easily-audited source of truth for "who runs next" and makes the
//! simulation deterministic: ties at equal virtual time are broken by
//! insertion sequence.
//!
//! # Thread handoff
//!
//! Each simulated process is an OS thread parked on a private rendezvous
//! channel. The scheduler resumes exactly one process and then blocks until
//! that process yields (by blocking in a primitive or finishing), so at most
//! one simulated process executes at any wall-clock instant.

use crate::error::{Killed, SimError};
use crate::process::{Ctx, ProcHandle, Span};
use crate::time::SimTime;
use crate::trace::{Args, Tracer};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread;

/// Identifier of a simulated process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl std::fmt::Debug for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Timer {
    time: SimTime,
    seq: u64,
    pid: u32,
}

impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How a process finished, reported through the yield channel.
pub(crate) enum Fin {
    Ok,
    Killed,
    Panic(String),
}

pub(crate) struct YieldMsg {
    pub pid: u32,
    pub finished: Option<Fin>,
}

struct Slot {
    name: String,
    resume_tx: SyncSender<()>,
    join: Option<thread::JoinHandle<()>>,
    dead: bool,
    killed: bool,
    daemon: bool,
    /// Sequence number of the canonical pending wake timer, if any.
    pending_seq: Option<u64>,
    /// Processes blocked in `join()` on this process.
    join_waiters: Vec<u32>,
}

pub(crate) struct KState {
    now: SimTime,
    next_seq: u64,
    next_pid: u32,
    heap: BinaryHeap<Reverse<Timer>>,
    // BTreeMap: deadlock reports iterate this map; pid order keeps the
    // blocked-process listing (and thus error text) deterministic.
    procs: BTreeMap<u32, Slot>,
    rng: StdRng,
}

/// Shared kernel: the scheduler state plus the yield channel sender handed
/// to every process thread.
pub(crate) struct Kernel {
    pub(crate) st: Mutex<KState>,
    pub(crate) yield_tx: Sender<YieldMsg>,
    pub(crate) tracer: Tracer,
}

impl Kernel {
    pub(crate) fn now(&self) -> SimTime {
        self.st.lock().now
    }

    /// Push a fresh canonical wake for `pid` at `time` (replacing any
    /// pending one). No-op on dead processes. Returns whether a wake was
    /// actually scheduled.
    pub(crate) fn schedule_wake(&self, pid: ProcId, time: SimTime) -> bool {
        let mut st = self.st.lock();
        let time = time.max(st.now);
        let seq = st.next_seq;
        st.next_seq += 1;
        let Some(slot) = st.procs.get_mut(&pid.0) else {
            return false;
        };
        if slot.dead {
            return false;
        }
        slot.pending_seq = Some(seq);
        st.heap.push(Reverse(Timer {
            time,
            seq,
            pid: pid.0,
        }));
        true
    }

    /// Wake `pid` at the current instant. Returns false if it is dead.
    pub(crate) fn wake_now(&self, pid: ProcId) -> bool {
        let now = self.now();
        self.schedule_wake(pid, now)
    }

    /// Mark `pid` killed and schedule an immediate wake so it unwinds.
    pub(crate) fn kill(&self, pid: ProcId) {
        {
            let mut st = self.st.lock();
            match st.procs.get_mut(&pid.0) {
                Some(s) if !s.dead => s.killed = true,
                _ => return,
            }
        }
        self.wake_now(pid);
        self.tracer.rec(self.now(), Some(pid), "killed");
    }

    pub(crate) fn is_killed(&self, pid: ProcId) -> bool {
        self.st
            .lock()
            .procs
            .get(&pid.0)
            .map(|s| s.killed)
            .unwrap_or(true)
    }

    pub(crate) fn is_dead(&self, pid: ProcId) -> bool {
        self.st
            .lock()
            .procs
            .get(&pid.0)
            .map(|s| s.dead)
            .unwrap_or(true)
    }

    /// Register `waiter` to be woken when `target` dies. Returns `false`
    /// (and does not register) if the target is already dead.
    pub(crate) fn add_join_waiter(&self, target: ProcId, waiter: ProcId) -> bool {
        let mut st = self.st.lock();
        match st.procs.get_mut(&target.0) {
            Some(s) if !s.dead => {
                s.join_waiters.push(waiter.0);
                true
            }
            _ => false,
        }
    }

    pub(crate) fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        f(&mut self.st.lock().rng)
    }

    pub(crate) fn proc_name(&self, pid: ProcId) -> String {
        self.st
            .lock()
            .procs
            .get(&pid.0)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| "<gone>".into())
    }

    /// Spawn a new simulated process; it will first run at the current
    /// virtual instant, after already-scheduled same-time timers.
    pub(crate) fn spawn_inner(
        self: &Arc<Self>,
        name: &str,
        daemon: bool,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ProcHandle {
        let (resume_tx, resume_rx) = sync_channel::<()>(1);
        let pid = {
            let mut st = self.st.lock();
            let pid = st.next_pid;
            st.next_pid += 1;
            st.procs.insert(
                pid,
                Slot {
                    name: name.to_string(),
                    resume_tx,
                    join: None,
                    dead: false,
                    killed: false,
                    daemon,
                    pending_seq: None,
                    join_waiters: Vec::new(),
                },
            );
            pid
        };
        let pid = ProcId(pid);
        let kernel = Arc::clone(self);
        let yield_tx = self.yield_tx.clone();
        let tname = format!("sim:{name}");
        let jh = thread::Builder::new()
            .name(tname)
            .stack_size(512 * 1024)
            .spawn(move || {
                // Wait for the first baton handoff.
                if resume_rx.recv().is_err() {
                    return; // simulation torn down before we ever ran
                }
                let ctx = Ctx::new(Arc::clone(&kernel), pid, resume_rx);
                let fin = if kernel.is_killed(pid) {
                    Fin::Killed
                } else {
                    match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                        Ok(()) => Fin::Ok,
                        Err(p) if p.is::<Killed>() => Fin::Killed,
                        Err(p) => Fin::Panic(panic_message(&*p)),
                    }
                };
                let _ = yield_tx.send(YieldMsg {
                    pid: pid.0,
                    finished: Some(fin),
                });
            })
            .expect("failed to spawn simulation process thread");
        {
            let mut st = self.st.lock();
            st.procs.get_mut(&pid.0).unwrap().join = Some(jh);
        }
        self.schedule_wake(pid, self.now());
        self.tracer.name_proc(pid, name);
        if self.tracer.armed() {
            self.tracer
                .rec(self.now(), Some(pid), &format!("spawned '{name}'"));
        }
        ProcHandle::new(pid, Arc::clone(self))
    }

    /// Mark a process dead and wake anyone joined on it. Returns its name.
    fn finish_proc(&self, pid: u32) -> (String, Vec<u32>) {
        let mut st = self.st.lock();
        let slot = st.procs.get_mut(&pid).expect("finish of unknown proc");
        slot.dead = true;
        slot.pending_seq = None;
        let name = slot.name.clone();
        let waiters = std::mem::take(&mut slot.join_waiters);
        (name, waiters)
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A cloneable handle onto a running (or not-yet-run) simulation.
///
/// `SimHandle` is how code *outside* a process context (test setup, the main
/// thread between [`Simulation::run_until`] calls) and primitives interact
/// with the kernel: reading the clock, spawning processes, killing them,
/// tracing.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) kernel: Arc<Kernel>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Spawn a process that participates in deadlock detection.
    pub fn spawn(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.kernel.spawn_inner(name, false, f)
    }

    /// Spawn a *daemon* process: a service that legitimately blocks forever
    /// (e.g. an FTB agent waiting for events) and is ignored by deadlock
    /// detection and by [`Simulation::run`] completion.
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.kernel.spawn_inner(name, true, f)
    }

    /// Kill a process: it unwinds at its next (or current) blocking call.
    pub fn kill(&self, pid: ProcId) {
        self.kernel.kill(pid)
    }

    /// Whether the process has terminated (finished, killed, or panicked).
    pub fn is_dead(&self, pid: ProcId) -> bool {
        self.kernel.is_dead(pid)
    }

    /// Draw from the simulation-global deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        self.kernel.with_rng(f)
    }

    /// Append a trace record (no-op unless tracing is enabled).
    pub fn trace(&self, msg: &str) {
        self.kernel.tracer.rec(self.now(), None, msg);
    }

    /// Access the tracer (enable, drain records).
    pub fn tracer(&self) -> &Tracer {
        &self.kernel.tracer
    }

    /// Whether telemetry collection is on. Check before building an
    /// expensive event payload (formatted names, argument vectors).
    #[inline]
    pub fn telemetry_on(&self) -> bool {
        self.kernel.tracer.is_enabled()
    }

    /// Open a telemetry span not attributed to any process; it ends when
    /// the returned guard drops (or at an explicit [`Span::end`]).
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> Span {
        self.span_with(cat, name, Vec::new)
    }

    /// Open a telemetry span with arguments attached to its begin event.
    /// `args` is only invoked when telemetry is on.
    pub fn span_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) -> Span {
        Span::open(Arc::clone(&self.kernel), None, cat, name, args)
    }

    /// Emit a point-in-time telemetry event not attributed to any process.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>) {
        self.instant_with(cat, name, Vec::new);
    }

    /// Emit an instant event with arguments; `args` is only invoked when
    /// telemetry is on.
    pub fn instant_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) {
        if self.kernel.tracer.armed() {
            self.kernel
                .tracer
                .instant(self.now(), None, cat, name, args());
        }
    }

    /// Emit a telemetry counter sample not attributed to any process.
    pub fn counter(&self, cat: &'static str, name: impl Into<String>, value: f64) {
        self.kernel
            .tracer
            .counter(self.now(), None, cat, name, value);
    }
}

enum StepResult {
    Ran,
    Quiescent,
    LimitReached,
}

/// Outcome of [`Simulation::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The heap drained: nothing left to do before (or after) the limit.
    Quiescent,
    /// The time limit was reached with future work still pending.
    LimitReached,
}

/// A discrete-event simulation: owns the scheduler loop.
///
/// Construct with [`Simulation::new`], spawn processes, then drive with
/// [`Simulation::run`] (to quiescence) or [`Simulation::run_until`].
pub struct Simulation {
    kernel: Arc<Kernel>,
    yield_rx: Receiver<YieldMsg>,
    /// Set once a process panic has aborted the run; further use is a bug.
    poisoned: bool,
}

impl Simulation {
    /// Create a simulation whose RNG is seeded with `seed`. Identical seeds
    /// and identical process logic produce identical event sequences.
    pub fn new(seed: u64) -> Self {
        // Kill-unwinds are routine control flow here; stop the default
        // panic hook from spamming stderr with them (installed once).
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().is::<Killed>() {
                    return;
                }
                prev(info);
            }));
        });
        let (yield_tx, yield_rx) = channel();
        let kernel = Arc::new(Kernel {
            st: Mutex::new(KState {
                now: SimTime::ZERO,
                next_seq: 0,
                next_pid: 0,
                heap: BinaryHeap::new(),
                procs: BTreeMap::new(),
                rng: StdRng::seed_from_u64(seed),
            }),
            yield_tx,
            tracer: Tracer::new(),
        });
        Simulation {
            kernel,
            yield_rx,
            poisoned: false,
        }
    }

    /// A cloneable handle for spawning/killing/tracing.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            kernel: Arc::clone(&self.kernel),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Spawn a process (see [`SimHandle::spawn`]).
    pub fn spawn(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.handle().spawn(name, f)
    }

    /// Spawn a daemon process (see [`SimHandle::spawn_daemon`]).
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.handle().spawn_daemon(name, f)
    }

    /// Run until `event` fires. Use this to drive simulations containing
    /// perpetual daemons (heartbeats, monitors) that would otherwise keep
    /// the heap non-empty forever. Errors if the heap drains or the clock
    /// passes `limit` without the event firing.
    pub fn run_until_set(
        &mut self,
        event: &crate::sync::Event,
        limit: SimTime,
    ) -> Result<(), SimError> {
        loop {
            if event.is_set() {
                return Ok(());
            }
            match self.step_one(limit)? {
                StepResult::Ran => continue,
                StepResult::Quiescent | StepResult::LimitReached => {
                    if event.is_set() {
                        return Ok(());
                    }
                    let st = self.kernel.st.lock();
                    let blocked: Vec<(ProcId, String)> = st
                        .procs
                        .iter()
                        .filter(|(_, s)| !s.dead && !s.daemon)
                        .map(|(pid, s)| (ProcId(*pid), s.name.clone()))
                        .collect();
                    return Err(SimError::Deadlock {
                        at: st.now,
                        blocked,
                    });
                }
            }
        }
    }

    /// Run until the event heap drains. Returns an error on protocol
    /// deadlock (non-daemon processes blocked forever) or a process panic.
    pub fn run(&mut self) -> Result<(), SimError> {
        self.drive(SimTime::MAX)?;
        // Heap drained: any live, blocked, non-daemon process is deadlocked.
        let st = self.kernel.st.lock();
        let blocked: Vec<(ProcId, String)> = st
            .procs
            .iter()
            .filter(|(_, s)| !s.dead && !s.daemon)
            .map(|(pid, s)| (ProcId(*pid), s.name.clone()))
            .collect();
        if blocked.is_empty() {
            Ok(())
        } else {
            let mut blocked = blocked;
            blocked.sort_by_key(|(p, _)| *p);
            Err(SimError::Deadlock {
                at: st.now,
                blocked,
            })
        }
    }

    /// Run until virtual time `limit` (inclusive of events at `limit`).
    /// On success the clock reads exactly `limit` unless the heap drained
    /// earlier (then it reads the last event time).
    pub fn run_until(&mut self, limit: SimTime) -> Result<RunOutcome, SimError> {
        let outcome = self.drive(limit)?;
        if outcome == RunOutcome::LimitReached {
            let mut st = self.kernel.st.lock();
            st.now = limit;
        }
        Ok(outcome)
    }

    /// Run for `d` more virtual time from the current instant.
    pub fn run_for(&mut self, d: std::time::Duration) -> Result<RunOutcome, SimError> {
        let limit = self.now() + d;
        self.run_until(limit)
    }

    fn drive(&mut self, limit: SimTime) -> Result<RunOutcome, SimError> {
        loop {
            match self.step_one(limit)? {
                StepResult::Ran => {}
                StepResult::Quiescent => return Ok(RunOutcome::Quiescent),
                StepResult::LimitReached => return Ok(RunOutcome::LimitReached),
            }
        }
    }

    /// Process a single scheduler event (one baton handoff).
    fn step_one(&mut self, limit: SimTime) -> Result<StepResult, SimError> {
        assert!(!self.poisoned, "simulation used after a process panic");
        // Pop the next valid timer (skipping stale entries).
        let (pid, resume_tx) = {
            let mut st = self.kernel.st.lock();
            loop {
                match st.heap.peek() {
                    None => return Ok(StepResult::Quiescent),
                    Some(Reverse(t)) if t.time > limit => return Ok(StepResult::LimitReached),
                    Some(_) => {}
                }
                let Reverse(t) = st.heap.pop().unwrap();
                let valid = st
                    .procs
                    .get(&t.pid)
                    .map(|s| !s.dead && s.pending_seq == Some(t.seq))
                    .unwrap_or(false);
                if valid {
                    st.now = t.time;
                    let slot = st.procs.get_mut(&t.pid).unwrap();
                    slot.pending_seq = None;
                    break (ProcId(t.pid), slot.resume_tx.clone());
                }
            }
        };
        // Hand the baton to the process and wait for it to yield.
        resume_tx
            .send(())
            .expect("process thread vanished while scheduled");
        let msg = self
            .yield_rx
            .recv()
            .expect("yield channel closed unexpectedly");
        debug_assert_eq!(msg.pid, pid.0, "yield from unexpected process");
        if let Some(fin) = msg.finished {
            let (name, waiters) = self.kernel.finish_proc(msg.pid);
            for w in waiters {
                self.kernel.wake_now(ProcId(w));
            }
            match fin {
                Fin::Ok => self.kernel.tracer.rec(self.now(), Some(pid), "finished"),
                Fin::Killed => self
                    .kernel
                    .tracer
                    .rec(self.now(), Some(pid), "died (killed)"),
                Fin::Panic(message) => {
                    self.poisoned = true;
                    return Err(SimError::ProcPanic { pid, name, message });
                }
            }
            // Reap the thread: it has sent its final yield and is exiting.
            let jh = {
                let mut st = self.kernel.st.lock();
                st.procs.get_mut(&msg.pid).and_then(|s| s.join.take())
            };
            if let Some(jh) = jh {
                let _ = jh.join();
            }
        }
        Ok(StepResult::Ran)
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // Kill every live process, release each thread so it unwinds, then
        // join them all. Threads may briefly run concurrently during this
        // teardown; no simulation state advances.
        let victims: Vec<(u32, SyncSender<()>, Option<thread::JoinHandle<()>>)> = {
            let mut st = self.kernel.st.lock();
            st.procs
                .iter_mut()
                .filter(|(_, s)| !s.dead)
                .map(|(pid, s)| {
                    s.killed = true;
                    (*pid, s.resume_tx.clone(), s.join.take())
                })
                .collect()
        };
        for (_, tx, _) in &victims {
            let _ = tx.send(());
        }
        // Drain final yields so senders don't block, then join.
        for _ in 0..victims.len() {
            let _ = self.yield_rx.recv();
        }
        for (_, _, jh) in victims {
            if let Some(jh) = jh {
                let _ = jh.join();
            }
        }
    }
}
