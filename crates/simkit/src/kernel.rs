//! The event-heap scheduler and the cooperative-thread machinery.
//!
//! # Scheduling model
//!
//! Every blocked process has at most one *canonical wake*: an entry in the
//! global timer heap identified by a sequence number stored in the process
//! slot (`pending_seq`). Waking, retiming and killing all go through the
//! same mechanism — push a fresh timer and overwrite `pending_seq` — so
//! stale heap entries are recognised and skipped when popped. This gives a
//! single, easily-audited source of truth for "who runs next" and makes the
//! simulation deterministic: ties at equal virtual time are broken by
//! insertion sequence.
//!
//! # Thread handoff
//!
//! Each simulated process is an OS thread parked on a private baton (an
//! unpark token). At most one simulated process executes at any wall-clock
//! instant. By default a yielding process dispatches the next timer
//! **directly** — it pops the heap itself and unparks the next owner, one
//! context switch per event instead of the two a scheduler round trip
//! costs. The scheduler thread is woken only at chain breaks: a process
//! finished (bookkeeping, join wakes, thread reaping), the heap drained,
//! the drive limit was reached, or the `run_until_set` stop flag fired.
//! Dispatch order is identical either way — both paths pop the same
//! shared heap under the same lock — so traces are byte-identical; set
//! `SIMKIT_NO_HANDOFF=1` (or [`SimHandle::set_direct_handoff`]) to force
//! every event through the scheduler thread (the legacy path, kept as
//! the wall-clock benches' "before" mode).

use crate::error::{Killed, SimError};
use crate::hotstats::{Hot, HotCat, HotStats};
use crate::process::{Ctx, ProcHandle, Span};
use crate::time::SimTime;
use crate::trace::{Args, Tracer};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, OnceLock};
use std::thread;

/// Identifier of a simulated process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl std::fmt::Debug for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Timer {
    time: SimTime,
    seq: u64,
    pid: u32,
}

impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// How a process finished, reported through the yield channel.
pub(crate) enum Fin {
    Ok,
    Killed,
    Panic(String),
}

pub(crate) struct YieldMsg {
    pub pid: u32,
    pub finished: Option<Fin>,
}

/// Rendezvous cell for one process thread: an unpark token plus the
/// thread handle to poke. A handoff is one `Release` store and one
/// `unpark` — a single futex wake when the target is parked — replacing
/// the heavier per-process rendezvous channel.
pub(crate) struct Baton {
    token: AtomicBool,
    thread: OnceLock<thread::Thread>,
}

impl Baton {
    fn new() -> Baton {
        Baton {
            token: AtomicBool::new(false),
            thread: OnceLock::new(),
        }
    }

    /// Hand the baton over. Safe even if the target has not parked yet:
    /// the token makes the wake stick (its first `take` consumes it).
    pub(crate) fn give(&self) {
        self.token.store(true, Ordering::Release);
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }

    /// Park until the baton arrives. Spins briefly first: busy processes
    /// are typically re-dispatched within a few µs, and a futex
    /// sleep/wake round trip costs more wall time than the spin. The
    /// spin reads the token (no RMW) so the waiting core does not steal
    /// the cache line from the giver.
    pub(crate) fn take(&self) {
        for _ in 0..spin_budget() {
            if self.token.load(Ordering::Acquire) {
                break;
            }
            std::hint::spin_loop();
        }
        while !self.token.swap(false, Ordering::Acquire) {
            thread::park();
        }
    }
}

/// Iterations of the pre-park spin in [`Baton::take`] (`SIMKIT_SPIN`
/// overrides; `0` disables spinning). Spinning only pays when spare
/// cores exist for the waiter to burn — on small hosts it *steals* CPU
/// from the running process — so the default is 0 below 4 cores.
fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        if let Some(v) = std::env::var("SIMKIT_SPIN")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return v;
        }
        let cores = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            4000
        } else {
            0
        }
    })
}

struct Slot {
    name: Arc<str>,
    baton: Arc<Baton>,
    /// Legacy-mode rendezvous: with direct handoff disabled, dispatch
    /// sends on this channel (and the process waits on the paired
    /// receiver) exactly as the pre-optimization kernel did, so the
    /// wall-clock benches' "before" mode reproduces its real cost.
    resume_tx: SyncSender<()>,
    join: Option<thread::JoinHandle<()>>,
    dead: bool,
    killed: bool,
    daemon: bool,
    /// Sequence number of the canonical pending wake timer, if any.
    pending_seq: Option<u64>,
    /// Virtual instant of the canonical pending wake (meaningful only
    /// while `pending_seq` is `Some`).
    pending_time: SimTime,
    /// Processes blocked in `join()` on this process.
    join_waiters: Vec<u32>,
}

pub(crate) struct KState {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Reverse<Timer>>,
    // Dense slab indexed by pid (pids are allocated 0,1,2,… and slots are
    // never removed, only marked dead). Index order doubles as pid order,
    // keeping deadlock-report listings deterministic.
    procs: Vec<Slot>,
    /// How many *canonical* pending wakes land on each exact nanosecond.
    /// Ties at equal virtual time are broken by timer insertion sequence,
    /// so an optimization may only keep a stale timer in place (instead
    /// of re-pushing) while its nanosecond is uncontended — FlowNet's
    /// no-op-retime skip consults this to stay byte-identical with the
    /// retime-everything oracle.
    pending_at: HashMap<u64, u32>,
    rng: StdRng,
}

impl KState {
    /// Core of [`Kernel::schedule_wake`], callable with the state lock
    /// already held (the batch-retime path).
    fn schedule_wake_locked(&mut self, hot: &Hot, pid: ProcId, time: SimTime) -> bool {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let Some(slot) = self.procs.get_mut(pid.0 as usize) else {
            return false;
        };
        if slot.dead {
            return false;
        }
        let replaced = slot.pending_seq.replace(seq).map(|_| slot.pending_time);
        slot.pending_time = time;
        if let Some(old) = replaced {
            dec_pending(&mut self.pending_at, old);
        }
        *self.pending_at.entry(time.as_nanos()).or_insert(0) += 1;
        self.heap.push(Reverse(Timer {
            time,
            seq,
            pid: pid.0,
        }));
        Hot::bump(&hot.timer_pushes);
        hot.raise_peak(self.heap.len() as u64);
        true
    }

    /// Pop the next valid timer at or before `limit_ns`, skipping stale
    /// entries, and consume the owner's canonical wake. Advances `now`.
    /// This is the single dispatch-selection point, shared by the
    /// scheduler thread and the direct proc→proc handoff path, so both
    /// produce the identical event order. `legacy` additionally clones
    /// the owner's resume sender (the channel-dispatch path).
    fn pop_next(&mut self, hot: &Hot, limit_ns: u64, legacy: bool) -> Popped {
        loop {
            match self.heap.peek() {
                None => return Popped::Quiescent,
                Some(Reverse(t)) if t.time.as_nanos() > limit_ns => return Popped::Limit,
                Some(_) => {}
            }
            let Reverse(t) = self.heap.pop().unwrap();
            let valid = self
                .procs
                .get(t.pid as usize)
                .map(|s| !s.dead && s.pending_seq == Some(t.seq))
                .unwrap_or(false);
            if valid {
                self.now = t.time;
                let slot = &mut self.procs[t.pid as usize];
                slot.pending_seq = None;
                let baton = Arc::clone(&slot.baton);
                let resume_tx = legacy.then(|| slot.resume_tx.clone());
                dec_pending(&mut self.pending_at, t.time);
                return Popped::Ready {
                    pid: t.pid,
                    baton,
                    resume_tx,
                };
            }
            Hot::bump(&hot.stale_skips);
        }
    }
}

/// Outcome of [`KState::pop_next`].
enum Popped {
    Quiescent,
    Limit,
    Ready {
        pid: u32,
        baton: Arc<Baton>,
        /// `Some` in legacy mode: dispatch by channel send instead of
        /// baton give.
        resume_tx: Option<SyncSender<()>>,
    },
}

/// Wake the popped process through the mode-appropriate rendezvous.
fn dispatch(baton: &Baton, resume_tx: Option<SyncSender<()>>) {
    match resume_tx {
        Some(tx) => tx
            .send(())
            .expect("process thread vanished while scheduled"),
        None => baton.give(),
    }
}

fn dec_pending(pending_at: &mut HashMap<u64, u32>, t: SimTime) {
    if let Some(c) = pending_at.get_mut(&t.as_nanos()) {
        *c -= 1;
        if *c == 0 {
            pending_at.remove(&t.as_nanos());
        }
    }
}

/// Shared kernel: the scheduler state plus the yield channel sender handed
/// to every process thread.
pub(crate) struct Kernel {
    pub(crate) st: Mutex<KState>,
    pub(crate) yield_tx: Sender<YieldMsg>,
    pub(crate) tracer: Tracer,
    pub(crate) hot: Hot,
    /// Direct proc→proc dispatch enabled. Off: every event routes through
    /// the scheduler thread (two context switches per event — the legacy
    /// path, kept for the wall-clock benches' "before" mode).
    direct: AtomicBool,
    /// Virtual-time limit (nanos) of the drive loop currently in
    /// progress; the handoff path must not dispatch past it. `u64::MAX`
    /// outside a drive loop (no process runs then anyway).
    limit_ns: AtomicU64,
    /// Stop flag of an in-progress `run_until_set` (the target event's
    /// set-mirror). The handoff path re-checks it before every dispatch,
    /// exactly as the scheduler loop checks `event.is_set()` between
    /// events, and breaks the chain once it reads true.
    stop: Mutex<Option<Arc<AtomicBool>>>,
    /// Default for [`FlowNet`](crate::FlowNet)s created on this kernel:
    /// retime every flow on every recompute (the pre-incremental oracle).
    pub(crate) full_retime_default: AtomicBool,
}

impl Kernel {
    pub(crate) fn now(&self) -> SimTime {
        self.st.lock().now
    }

    /// Push a fresh canonical wake for `pid` at `time` (replacing any
    /// pending one). No-op on dead processes. Returns whether a wake was
    /// actually scheduled.
    pub(crate) fn schedule_wake(&self, pid: ProcId, time: SimTime) -> bool {
        self.st.lock().schedule_wake_locked(&self.hot, pid, time)
    }

    /// Run `f` against a [`WakeBatch`]: the scheduler lock is taken once
    /// for any number of wake pushes and pending-timer queries. Used by
    /// FlowNet's retime loop instead of per-flow `schedule_wake` calls.
    pub(crate) fn with_wake_batch<R>(&self, f: impl FnOnce(&mut WakeBatch) -> R) -> R {
        let mut st = self.st.lock();
        f(&mut WakeBatch {
            st: &mut st,
            hot: &self.hot,
        })
    }

    /// Wake `pid` at the current instant. Returns false if it is dead.
    pub(crate) fn wake_now(&self, pid: ProcId) -> bool {
        let now = self.now();
        self.schedule_wake(pid, now)
    }

    /// Mark `pid` killed and schedule an immediate wake so it unwinds.
    pub(crate) fn kill(&self, pid: ProcId) {
        {
            let mut st = self.st.lock();
            match st.procs.get_mut(pid.0 as usize) {
                Some(s) if !s.dead => s.killed = true,
                _ => return,
            }
        }
        self.wake_now(pid);
        self.tracer.rec(self.now(), Some(pid), "killed");
    }

    pub(crate) fn is_killed(&self, pid: ProcId) -> bool {
        self.st
            .lock()
            .procs
            .get(pid.0 as usize)
            .map(|s| s.killed)
            .unwrap_or(true)
    }

    pub(crate) fn is_dead(&self, pid: ProcId) -> bool {
        self.st
            .lock()
            .procs
            .get(pid.0 as usize)
            .map(|s| s.dead)
            .unwrap_or(true)
    }

    /// Register `waiter` to be woken when `target` dies. Returns `false`
    /// (and does not register) if the target is already dead.
    pub(crate) fn add_join_waiter(&self, target: ProcId, waiter: ProcId) -> bool {
        let mut st = self.st.lock();
        match st.procs.get_mut(target.0 as usize) {
            Some(s) if !s.dead => {
                s.join_waiters.push(waiter.0);
                true
            }
            _ => false,
        }
    }

    pub(crate) fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        f(&mut self.st.lock().rng)
    }

    /// The process's interned name. Cheap: names are `Arc<str>`, cloned
    /// by reference count (deadlock reports, trace labels, and kernel
    /// diagnostics all share the one allocation made at spawn).
    pub(crate) fn proc_name(&self, pid: ProcId) -> Arc<str> {
        self.st
            .lock()
            .procs
            .get(pid.0 as usize)
            .map(|s| Arc::clone(&s.name))
            .unwrap_or_else(|| Arc::from("<gone>"))
    }

    /// Try to dispatch the next event directly from a yielding process
    /// (one context switch instead of a scheduler round trip). Returns
    /// `false` when the chain must break to the scheduler thread instead:
    /// direct handoff disabled, the stop flag fired, the heap drained, or
    /// the next timer lies past the drive limit.
    pub(crate) fn try_handoff(&self) -> bool {
        if !self.direct.load(Ordering::Relaxed) {
            return false;
        }
        // Same between-events check the scheduler loop performs: once the
        // run_until_set target fires, no further event may be dispatched.
        let stop = self.stop.lock().clone();
        if let Some(flag) = stop {
            if flag.load(Ordering::Acquire) {
                return false;
            }
        }
        let limit_ns = self.limit_ns.load(Ordering::Relaxed);
        let t_sched = self.hot.clock();
        let popped = self.st.lock().pop_next(&self.hot, limit_ns, false);
        match popped {
            Popped::Ready { pid, baton, .. } => {
                self.hot.lap(t_sched, HotCat::Sched);
                Hot::bump(&self.hot.dispatches);
                Hot::bump(&self.hot.direct_handoffs);
                self.hot.count_proc(pid);
                baton.give();
                true
            }
            Popped::Quiescent | Popped::Limit => false,
        }
    }

    /// Whether direct proc→proc dispatch is enabled.
    pub(crate) fn direct_on(&self) -> bool {
        self.direct.load(Ordering::Relaxed)
    }

    /// Install the stop flag consulted by [`Kernel::try_handoff`];
    /// cleared when the returned guard drops.
    fn install_stop(self: &Arc<Self>, flag: Arc<AtomicBool>) -> StopGuard {
        *self.stop.lock() = Some(flag);
        StopGuard(Arc::clone(self))
    }

    /// Spawn a new simulated process; it will first run at the current
    /// virtual instant, after already-scheduled same-time timers.
    pub(crate) fn spawn_inner(
        self: &Arc<Self>,
        name: &str,
        daemon: bool,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) -> ProcHandle {
        let t0 = self.hot.clock();
        let baton = Arc::new(Baton::new());
        let (resume_tx, resume_rx) = sync_channel::<()>(1);
        let interned: Arc<str> = Arc::from(name);
        let pid = {
            let mut st = self.st.lock();
            let pid = st.procs.len() as u32;
            st.procs.push(Slot {
                name: Arc::clone(&interned),
                baton: Arc::clone(&baton),
                resume_tx,
                join: None,
                dead: false,
                killed: false,
                daemon,
                pending_seq: None,
                pending_time: SimTime::ZERO,
                join_waiters: Vec::new(),
            });
            pid
        };
        let pid = ProcId(pid);
        let kernel = Arc::clone(self);
        let yield_tx = self.yield_tx.clone();
        let thread_baton = Arc::clone(&baton);
        let tname = format!("sim:{name}");
        let jh = thread::Builder::new()
            .name(tname)
            .stack_size(512 * 1024)
            .spawn(move || {
                // Wait for the first dispatch (teardown wakes us too; the
                // kill flag then routes straight to unwind).
                if kernel.direct_on() {
                    thread_baton.take();
                } else if resume_rx.recv().is_err() {
                    return; // torn down before we ever ran
                }
                let ctx = Ctx::new(
                    Arc::clone(&kernel),
                    pid,
                    Arc::clone(&thread_baton),
                    resume_rx,
                );
                let fin = if kernel.is_killed(pid) {
                    Fin::Killed
                } else {
                    match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                        Ok(()) => Fin::Ok,
                        Err(p) if p.is::<Killed>() => Fin::Killed,
                        Err(p) => Fin::Panic(panic_message(&*p)),
                    }
                };
                let _ = yield_tx.send(YieldMsg {
                    pid: pid.0,
                    finished: Some(fin),
                });
            })
            .expect("failed to spawn simulation process thread");
        // Register the unpark target before the first wake can possibly
        // be dispatched (the wake is only scheduled below).
        let _ = baton.thread.set(jh.thread().clone());
        Hot::bump(&self.hot.spawns);
        Hot::bump(&self.hot.threads_created);
        {
            let mut st = self.st.lock();
            st.procs[pid.0 as usize].join = Some(jh);
        }
        self.schedule_wake(pid, self.now());
        self.tracer.name_proc(pid, name);
        if self.tracer.armed() {
            self.tracer
                .rec(self.now(), Some(pid), &format!("spawned '{name}'"));
        }
        self.hot.lap(t0, HotCat::Spawn);
        ProcHandle::new(pid, Arc::clone(self))
    }

    /// Mark a process dead and wake anyone joined on it. Returns its name.
    fn finish_proc(&self, pid: u32) -> (Arc<str>, Vec<u32>) {
        let mut st = self.st.lock();
        let slot = st
            .procs
            .get_mut(pid as usize)
            .expect("finish of unknown proc");
        slot.dead = true;
        let stale = slot.pending_seq.take().map(|_| slot.pending_time);
        let name = Arc::clone(&slot.name);
        let waiters = std::mem::take(&mut slot.join_waiters);
        if let Some(t) = stale {
            dec_pending(&mut st.pending_at, t);
        }
        (name, waiters)
    }
}

/// Clears the kernel stop flag on drop (see [`Kernel::install_stop`]).
struct StopGuard(Arc<Kernel>);

impl Drop for StopGuard {
    fn drop(&mut self) {
        *self.0.stop.lock() = None;
    }
}

/// A single-lock window onto the scheduler, handed out by
/// [`Kernel::with_wake_batch`]. Wake pushes through it are identical —
/// same sequence-number allocation, same heap discipline — to individual
/// [`Kernel::schedule_wake`] calls; only the locking is batched.
pub(crate) struct WakeBatch<'a> {
    st: &'a mut KState,
    hot: &'a Hot,
}

impl WakeBatch<'_> {
    /// See [`Kernel::schedule_wake`].
    pub(crate) fn schedule_wake(&mut self, pid: ProcId, time: SimTime) -> bool {
        self.st.schedule_wake_locked(self.hot, pid, time)
    }

    /// Whether `pid`'s canonical pending wake exists and sits at exactly
    /// `time`.
    pub(crate) fn pending_matches(&self, pid: ProcId, time: SimTime) -> bool {
        self.st
            .procs
            .get(pid.0 as usize)
            .map(|s| s.pending_seq.is_some() && s.pending_time == time)
            .unwrap_or(false)
    }

    /// Number of canonical pending wakes at exactly `time` (any process).
    pub(crate) fn pending_count_at(&self, time: SimTime) -> u32 {
        self.st
            .pending_at
            .get(&time.as_nanos())
            .copied()
            .unwrap_or(0)
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A cloneable handle onto a running (or not-yet-run) simulation.
///
/// `SimHandle` is how code *outside* a process context (test setup, the main
/// thread between [`Simulation::run_until`] calls) and primitives interact
/// with the kernel: reading the clock, spawning processes, killing them,
/// tracing.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) kernel: Arc<Kernel>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Spawn a process that participates in deadlock detection.
    pub fn spawn(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.kernel.spawn_inner(name, false, f)
    }

    /// Spawn a *daemon* process: a service that legitimately blocks forever
    /// (e.g. an FTB agent waiting for events) and is ignored by deadlock
    /// detection and by [`Simulation::run`] completion.
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.kernel.spawn_inner(name, true, f)
    }

    /// Kill a process: it unwinds at its next (or current) blocking call.
    pub fn kill(&self, pid: ProcId) {
        self.kernel.kill(pid)
    }

    /// Whether the process has terminated (finished, killed, or panicked).
    pub fn is_dead(&self, pid: ProcId) -> bool {
        self.kernel.is_dead(pid)
    }

    /// Draw from the simulation-global deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        self.kernel.with_rng(f)
    }

    /// Append a trace record (no-op unless tracing is enabled).
    pub fn trace(&self, msg: &str) {
        self.kernel.tracer.rec(self.now(), None, msg);
    }

    /// Access the tracer (enable, drain records).
    pub fn tracer(&self) -> &Tracer {
        &self.kernel.tracer
    }

    /// Whether telemetry collection is on. Check before building an
    /// expensive event payload (formatted names, argument vectors).
    #[inline]
    pub fn telemetry_on(&self) -> bool {
        self.kernel.tracer.is_enabled()
    }

    /// Open a telemetry span not attributed to any process; it ends when
    /// the returned guard drops (or at an explicit [`Span::end`]).
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> Span {
        self.span_with(cat, name, Vec::new)
    }

    /// Open a telemetry span with arguments attached to its begin event.
    /// `args` is only invoked when telemetry is on.
    pub fn span_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) -> Span {
        Span::open(Arc::clone(&self.kernel), None, cat, name, args)
    }

    /// Emit a point-in-time telemetry event not attributed to any process.
    pub fn instant(&self, cat: &'static str, name: impl Into<String>) {
        self.instant_with(cat, name, Vec::new);
    }

    /// Emit an instant event with arguments; `args` is only invoked when
    /// telemetry is on.
    pub fn instant_with(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: impl FnOnce() -> Args,
    ) {
        if self.kernel.tracer.armed() {
            self.kernel
                .tracer
                .instant(self.now(), None, cat, name, args());
        }
    }

    /// Emit a telemetry counter sample not attributed to any process.
    pub fn counter(&self, cat: &'static str, name: impl Into<String>, value: f64) {
        self.kernel
            .tracer
            .counter(self.now(), None, cat, name, value);
    }

    /// Snapshot the kernel self-profile (see [`HotStats`]). Counters are
    /// always live; wall-clock categories need profiling armed.
    pub fn hot_stats(&self) -> HotStats {
        self.kernel.hot.snapshot()
    }

    /// Arm or disarm wall-clock profiling at runtime (equivalent to the
    /// `SIMKIT_PROF=1` environment variable at construction).
    pub fn set_prof(&self, on: bool) {
        self.kernel.hot.set_prof(on)
    }

    /// Enable or disable direct proc→proc event dispatch (default on;
    /// `SIMKIT_NO_HANDOFF=1` starts it off). Off, every event takes a
    /// scheduler-thread round trip — the legacy path the wall-clock
    /// benches use as their "before" mode. Dispatch order, and therefore
    /// the trace stream, is identical either way.
    pub fn set_direct_handoff(&self, on: bool) {
        self.kernel.direct.store(on, Ordering::Relaxed)
    }

    /// Set the default retiming mode for [`FlowNet`](crate::FlowNet)s
    /// created on this kernel from now on: `true` forces the full
    /// retime-everything oracle (equivalent to `SIMKIT_FULL_RETIME=1`).
    pub fn set_full_retime_default(&self, on: bool) {
        self.kernel.full_retime_default.store(on, Ordering::Relaxed)
    }
}

enum StepResult {
    Ran,
    Quiescent,
    LimitReached,
}

/// Outcome of [`Simulation::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The heap drained: nothing left to do before (or after) the limit.
    Quiescent,
    /// The time limit was reached with future work still pending.
    LimitReached,
}

/// A discrete-event simulation: owns the scheduler loop.
///
/// Construct with [`Simulation::new`], spawn processes, then drive with
/// [`Simulation::run`] (to quiescence) or [`Simulation::run_until`].
pub struct Simulation {
    kernel: Arc<Kernel>,
    yield_rx: Receiver<YieldMsg>,
    /// Set once a process panic has aborted the run; further use is a bug.
    poisoned: bool,
}

impl Simulation {
    /// Create a simulation whose RNG is seeded with `seed`. Identical seeds
    /// and identical process logic produce identical event sequences.
    pub fn new(seed: u64) -> Self {
        // Kill-unwinds are routine control flow here; stop the default
        // panic hook from spamming stderr with them (installed once).
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().is::<Killed>() {
                    return;
                }
                prev(info);
            }));
        });
        let (yield_tx, yield_rx) = channel();
        let env_on = |k: &str| std::env::var(k).map(|v| v == "1").unwrap_or(false);
        let kernel = Arc::new(Kernel {
            st: Mutex::new(KState {
                now: SimTime::ZERO,
                next_seq: 0,
                heap: BinaryHeap::new(),
                procs: Vec::new(),
                pending_at: HashMap::new(),
                rng: StdRng::seed_from_u64(seed),
            }),
            yield_tx,
            tracer: Tracer::new(),
            hot: Hot::new(),
            direct: AtomicBool::new(!env_on("SIMKIT_NO_HANDOFF")),
            limit_ns: AtomicU64::new(u64::MAX),
            stop: Mutex::new(None),
            full_retime_default: AtomicBool::new(env_on("SIMKIT_FULL_RETIME")),
        });
        Simulation {
            kernel,
            yield_rx,
            poisoned: false,
        }
    }

    /// A cloneable handle for spawning/killing/tracing.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            kernel: Arc::clone(&self.kernel),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Spawn a process (see [`SimHandle::spawn`]).
    pub fn spawn(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.handle().spawn(name, f)
    }

    /// Spawn a daemon process (see [`SimHandle::spawn_daemon`]).
    pub fn spawn_daemon(&self, name: &str, f: impl FnOnce(&Ctx) + Send + 'static) -> ProcHandle {
        self.handle().spawn_daemon(name, f)
    }

    /// Snapshot the kernel self-profile (see [`HotStats`]).
    pub fn hot_stats(&self) -> HotStats {
        self.kernel.hot.snapshot()
    }

    /// Run until `event` fires. Use this to drive simulations containing
    /// perpetual daemons (heartbeats, monitors) that would otherwise keep
    /// the heap non-empty forever. Errors if the heap drains or the clock
    /// passes `limit` without the event firing.
    pub fn run_until_set(
        &mut self,
        event: &crate::sync::Event,
        limit: SimTime,
    ) -> Result<(), SimError> {
        // Arm the handoff chain-breaker: a direct dispatch checks this
        // flag exactly where this loop checks `event.is_set()`.
        let _stop = self.kernel.install_stop(event.set_mirror());
        loop {
            if event.is_set() {
                return Ok(());
            }
            match self.step_one(limit)? {
                StepResult::Ran => continue,
                StepResult::Quiescent | StepResult::LimitReached => {
                    if event.is_set() {
                        return Ok(());
                    }
                    let st = self.kernel.st.lock();
                    let blocked: Vec<(ProcId, String)> = st
                        .procs
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !s.dead && !s.daemon)
                        .map(|(pid, s)| (ProcId(pid as u32), s.name.to_string()))
                        .collect();
                    return Err(SimError::Deadlock {
                        at: st.now,
                        blocked,
                    });
                }
            }
        }
    }

    /// Run until the event heap drains. Returns an error on protocol
    /// deadlock (non-daemon processes blocked forever) or a process panic.
    pub fn run(&mut self) -> Result<(), SimError> {
        self.drive(SimTime::MAX)?;
        // Heap drained: any live, blocked, non-daemon process is deadlocked.
        let st = self.kernel.st.lock();
        let blocked: Vec<(ProcId, String)> = st
            .procs
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.dead && !s.daemon)
            .map(|(pid, s)| (ProcId(pid as u32), s.name.to_string()))
            .collect();
        if blocked.is_empty() {
            Ok(())
        } else {
            Err(SimError::Deadlock {
                at: st.now,
                blocked,
            })
        }
    }

    /// Run until virtual time `limit` (inclusive of events at `limit`).
    /// On success the clock reads exactly `limit` unless the heap drained
    /// earlier (then it reads the last event time).
    pub fn run_until(&mut self, limit: SimTime) -> Result<RunOutcome, SimError> {
        let outcome = self.drive(limit)?;
        if outcome == RunOutcome::LimitReached {
            let mut st = self.kernel.st.lock();
            st.now = limit;
        }
        Ok(outcome)
    }

    /// Run for `d` more virtual time from the current instant.
    pub fn run_for(&mut self, d: std::time::Duration) -> Result<RunOutcome, SimError> {
        let limit = self.now() + d;
        self.run_until(limit)
    }

    fn drive(&mut self, limit: SimTime) -> Result<RunOutcome, SimError> {
        loop {
            match self.step_one(limit)? {
                StepResult::Ran => {}
                StepResult::Quiescent => return Ok(RunOutcome::Quiescent),
                StepResult::LimitReached => return Ok(RunOutcome::LimitReached),
            }
        }
    }

    /// Dispatch the next event from the scheduler thread and wait for the
    /// baton to come back. With direct handoff enabled the wait may span
    /// a whole proc→proc chain of events; the yield that wakes us then
    /// comes from whichever process broke the chain, not necessarily the
    /// one dispatched here.
    fn step_one(&mut self, limit: SimTime) -> Result<StepResult, SimError> {
        assert!(!self.poisoned, "simulation used after a process panic");
        // Publish the limit for the handoff path before dispatching.
        self.kernel
            .limit_ns
            .store(limit.as_nanos(), Ordering::Relaxed);
        let legacy = !self.kernel.direct_on();
        let t_sched = self.kernel.hot.clock();
        let popped = self
            .kernel
            .st
            .lock()
            .pop_next(&self.kernel.hot, limit.as_nanos(), legacy);
        let (pid, baton, resume_tx) = match popped {
            Popped::Quiescent => return Ok(StepResult::Quiescent),
            Popped::Limit => return Ok(StepResult::LimitReached),
            Popped::Ready {
                pid,
                baton,
                resume_tx,
            } => (ProcId(pid), baton, resume_tx),
        };
        self.kernel.hot.lap(t_sched, HotCat::Sched);
        Hot::bump(&self.kernel.hot.dispatches);
        self.kernel.hot.count_proc(pid.0);
        // Hand the baton over and wait for some process to yield back.
        let t_run = self.kernel.hot.clock();
        dispatch(&baton, resume_tx);
        let msg = self
            .yield_rx
            .recv()
            .expect("yield channel closed unexpectedly");
        self.kernel.hot.lap(t_run, HotCat::Run);
        if let Some(fin) = msg.finished {
            let fin_pid = ProcId(msg.pid);
            let (name, waiters) = self.kernel.finish_proc(msg.pid);
            for w in waiters {
                self.kernel.wake_now(ProcId(w));
            }
            match fin {
                Fin::Ok => self
                    .kernel
                    .tracer
                    .rec(self.now(), Some(fin_pid), "finished"),
                Fin::Killed => self
                    .kernel
                    .tracer
                    .rec(self.now(), Some(fin_pid), "died (killed)"),
                Fin::Panic(message) => {
                    self.poisoned = true;
                    return Err(SimError::ProcPanic {
                        pid: fin_pid,
                        name: name.to_string(),
                        message,
                    });
                }
            }
            // Reap the thread: it has sent its final yield and is exiting.
            let jh = {
                let mut st = self.kernel.st.lock();
                st.procs
                    .get_mut(msg.pid as usize)
                    .and_then(|s| s.join.take())
            };
            if let Some(jh) = jh {
                let _ = jh.join();
            }
        }
        Ok(StepResult::Ran)
    }
}

/// Both wake mechanisms plus the join handle of one live proc, captured
/// at teardown.
type TeardownVictim = (Arc<Baton>, SyncSender<()>, Option<thread::JoinHandle<()>>);

impl Drop for Simulation {
    fn drop(&mut self) {
        // Kill every live process, release each thread so it unwinds, then
        // join them all. Threads may briefly run concurrently during this
        // teardown; no simulation state advances. Disable direct handoff
        // first so an unwinding process cannot re-dispatch a victim.
        self.kernel.direct.store(false, Ordering::Relaxed);
        let victims: Vec<TeardownVictim> = {
            let mut st = self.kernel.st.lock();
            st.procs
                .iter_mut()
                .filter(|s| !s.dead)
                .map(|s| {
                    s.killed = true;
                    (Arc::clone(&s.baton), s.resume_tx.clone(), s.join.take())
                })
                .collect()
        };
        // Wake both rendezvous mechanisms: each victim waits on whichever
        // matched the dispatch mode at the time it parked.
        for (baton, tx, _) in &victims {
            let _ = tx.try_send(());
            baton.give();
        }
        // Drain final yields so senders don't block, then join.
        for _ in 0..victims.len() {
            let _ = self.yield_rx.recv();
        }
        for (_, _, jh) in victims {
            if let Some(jh) = jh {
                let _ = jh.join();
            }
        }
    }
}
