//! The RDMA-based process migration engine (paper §III-B, Figure 3).
//!
//! On the **source** node a user-level buffer manager owns a pool of
//! chunks inside a registered memory region. BLCR checkpoint streams from
//! the co-located MPI processes are aggregated into those chunks (one
//! chunk carries data of exactly one process). Whenever a chunk fills, an
//! *RDMA-read request* — carrying the chunk's rkey/offset/length and the
//! owning rank — is sent to the **target** buffer manager, which pulls the
//! chunk with an RDMA Read, appends it to that rank's checkpoint file
//! (page-cache buffered), and acknowledges so the source can reuse the
//! chunk. Pool exhaustion naturally throttles the checkpoint writers —
//! the paper's flow control.

use crate::calib;
use blcrsim::CheckpointSink;
use ibfabric::{DataSlice, Hca, Qp, QpAddr, RemoteMr};
use parking_lot::Mutex;
use simkit::{Ctx, Event, Semaphore, SimHandle};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use storesim::CkptStore;

/// How chunk data crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The paper's design: the target pulls chunks with zero-copy RDMA
    /// Read.
    RdmaRead,
    /// The Wang et al. style staged-copy path over IPoIB sockets: the
    /// same wire, plus a kernel memory copy on each side — the approach
    /// §III-B argues against.
    IpoibStaged,
}

/// Where restarted processes load their images from (Phase 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// The paper's implementation: chunks are staged into temporary
    /// checkpoint files on the target and BLCR restarts from them (file
    /// I/O dominates Phase 3).
    FileBased,
    /// The paper's stated future work: restart directly from the buffer
    /// pool in memory, eliminating the file I/O.
    MemoryBased,
}

/// Buffer pool geometry and engine options.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Total pool bytes (paper default 10 MB).
    pub pool_bytes: u64,
    /// Chunk size (paper default 1 MB).
    pub chunk_bytes: u64,
    /// Wire transport for chunk data.
    pub transport: Transport,
    /// Phase 3 restart strategy.
    pub restart_mode: RestartMode,
    /// Per-chunk RDMA Read re-issue budget on CQ error or checksum
    /// mismatch.
    pub chunk_retries: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            pool_bytes: calib::BUFFER_POOL_BYTES,
            chunk_bytes: calib::CHUNK_BYTES,
            transport: Transport::RdmaRead,
            restart_mode: RestartMode::FileBased,
            chunk_retries: calib::recovery().chunk_retries,
        }
    }
}

/// Positional sampled checksum over a slice stream, independent of slice
/// boundaries (the target's RDMA Read may return different slicing than
/// the source wrote). Samples up to 64 byte positions, endpoints
/// included, and mixes in the position — so a full-chunk pattern swap, a
/// truncation, or an offset shift all change the value.
pub(crate) fn stream_checksum(slices: &[DataSlice]) -> u64 {
    let total: u64 = slices.iter().map(|s| s.len).sum();
    if total == 0 {
        return 0;
    }
    const SAMPLES: u64 = 64;
    let n = SAMPLES.min(total);
    let mut acc: u64 = 0xfeed_f00d_0bad_cafe;
    // Positions are non-decreasing: walk the stream with one cursor.
    let mut si = 0usize;
    let mut base = 0u64;
    for i in 0..n {
        let pos = if n == 1 { 0 } else { i * (total - 1) / (n - 1) };
        while pos >= base + slices[si].len {
            base += slices[si].len;
            si += 1;
        }
        let b = slices[si].byte_at(pos - base);
        acc = acc.rotate_left(7) ^ (b as u64) ^ pos.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    (acc << 1) ^ total
}

impl PoolConfig {
    /// Number of chunks in the pool.
    pub fn slots(&self) -> u32 {
        (self.pool_bytes / self.chunk_bytes).max(1) as u32
    }
}

// wire tags on the manager QP
const TAG_HELLO: u64 = 0;
const TAG_REQ: u64 = 1;
const TAG_EOF: u64 = 2;
const TAG_DONE: u64 = 3;
const TAG_ACK: u64 = 4;
const TAG_DONE_ACK: u64 = 5;

/// RDMA-read request for one filled chunk.
struct ChunkReq {
    rank: u32,
    slot: u32,
    len: u64,
    src_mr: RemoteMr,
    /// Positional checksum of the chunk content (see [`stream_checksum`]);
    /// the target verifies each pulled chunk against it and re-issues the
    /// RDMA Read on mismatch.
    checksum: u64,
}

/// End-of-stream marker for one process.
struct RankEof {
    rank: u32,
    total_bytes: u64,
    image_checksum: u64,
}

struct AckMsg {
    slot: u32,
}

/// Rendezvous published by the source manager so the target can connect
/// (stands in for the launcher's out-of-band address exchange).
#[derive(Clone)]
pub struct PoolRendezvous {
    addr: Arc<Mutex<Option<QpAddr>>>,
    ready: Event,
}

impl PoolRendezvous {
    /// Create an empty rendezvous.
    pub fn new(handle: &SimHandle) -> Self {
        PoolRendezvous {
            addr: Arc::new(Mutex::new(None)),
            ready: Event::new(handle, "pool-rendezvous"),
        }
    }

    fn publish(&self, addr: QpAddr) {
        *self.addr.lock() = Some(addr);
        self.ready.set();
    }

    fn wait(&self, ctx: &Ctx) -> Option<QpAddr> {
        self.ready.wait(ctx);
        *self.addr.lock()
    }
}

struct SourceState {
    free_slots: Mutex<Vec<u32>>,
    slot_sem: Semaphore,
    /// Requests sent and not yet acked.
    outstanding: Mutex<u64>,
    /// Ranks that have not closed their sink yet.
    ranks_remaining: Mutex<u32>,
    done_sent: Mutex<bool>,
    bytes_streamed: AtomicU64,
    /// All data acked and DONE_ACK received.
    finished: Event,
}

/// The source-side buffer manager.
pub struct SourcePool {
    cfg: PoolConfig,
    qp: Qp,
    mr: ibfabric::Mr,
    /// Target connected and ready to receive requests.
    channel_ready: Event,
    st: Arc<SourceState>,
}

impl SourcePool {
    /// Set up the source manager on `hca`: registers the pool MR (timed),
    /// publishes its QP address on `rendezvous`, and spawns the ack loop
    /// (returned so an aborted cycle can kill it). `nranks` is the number
    /// of local processes that will stream through the pool.
    pub fn setup(
        ctx: &Ctx,
        hca: &Hca,
        cfg: PoolConfig,
        nranks: u32,
        rendezvous: &PoolRendezvous,
    ) -> (Arc<SourcePool>, simkit::ProcHandle) {
        let handle = ctx.handle();
        let mr = hca.register_mr(ctx, cfg.pool_bytes);
        let qp = hca.create_qp();
        rendezvous.publish(qp.addr());
        let slots = cfg.slots();
        let st = Arc::new(SourceState {
            free_slots: Mutex::new((0..slots).collect()),
            slot_sem: Semaphore::new(&handle, slots as u64),
            outstanding: Mutex::new(0),
            ranks_remaining: Mutex::new(nranks),
            done_sent: Mutex::new(false),
            bytes_streamed: AtomicU64::new(0),
            finished: Event::new(&handle, "source-pool-finished"),
        });
        let pool = Arc::new(SourcePool {
            cfg,
            qp: qp.clone(),
            mr,
            channel_ready: Event::new(&handle, "pool-channel-ready"),
            st,
        });
        // Ack loop: receives HELLO (target address), ACKs and DONE_ACK.
        // A daemon: on a healthy cycle it exits at DONE_ACK; on an aborted
        // one the runtime kills it.
        let p = Arc::clone(&pool);
        let ack = ctx.spawn_daemon("srcpool-ackloop", move |ctx| p.ack_loop(ctx));
        (pool, ack)
    }

    fn ack_loop(&self, ctx: &Ctx) {
        loop {
            let msg = match self.qp.recv(ctx) {
                Ok(m) => m,
                Err(_) => return,
            };
            match msg.tag {
                TAG_HELLO => {
                    let Ok(addr) = msg.body.downcast::<QpAddr>() else {
                        continue; // foreign traffic: ignore
                    };
                    // A failed connect-back (link fault) leaves the channel
                    // unready: writers stall on it and the phase deadline
                    // aborts/retries the cycle.
                    if let Err(e) = self.qp.connect(ctx, *addr) {
                        ctx.instant_with("pool", "control_connect_failed", || {
                            vec![("error", e.to_string().into())]
                        });
                        return;
                    }
                    self.channel_ready.set();
                }
                TAG_ACK => {
                    let Ok(ack) = msg.body.downcast::<AckMsg>() else {
                        continue; // foreign traffic: ignore
                    };
                    self.st.free_slots.lock().push(ack.slot);
                    self.st.slot_sem.release(1);
                    let outstanding = {
                        let mut o = self.st.outstanding.lock();
                        *o -= 1;
                        *o
                    };
                    if ctx.telemetry_on() {
                        ctx.instant_with("pool", "chunk_ack", || vec![("slot", ack.slot.into())]);
                        ctx.counter("pool", "outstanding", outstanding as f64);
                    }
                }
                TAG_DONE_ACK => {
                    self.st.finished.set();
                    return;
                }
                other => {
                    // A tag we don't speak is a protocol anomaly, not a
                    // reason to take the job down: log and keep serving.
                    ctx.instant_with("pool", "unexpected_tag", || {
                        vec![("side", "source".into()), ("tag", other.into())]
                    });
                }
            }
        }
    }

    /// A checkpoint sink streaming `rank`'s image through the pool.
    /// `image_checksum` rides the EOF marker for end-to-end verification.
    pub fn sink(self: &Arc<Self>, ctx: &Ctx, rank: u32, image_checksum: u64) -> AggregationSink {
        // Writers may not race ahead of the control channel.
        self.channel_ready.wait(ctx);
        AggregationSink {
            pool: Arc::clone(self),
            rank,
            image_checksum,
            slot: None,
            fill: 0,
            total: 0,
            chunk: Vec::new(),
        }
    }

    /// Completion event: all data pulled and acknowledged by the target.
    pub fn finished(&self) -> &Event {
        &self.st.finished
    }

    /// Stream bytes pushed through the pool (Table I accounting).
    pub fn bytes_streamed(&self) -> u64 {
        self.st.bytes_streamed.load(Ordering::Relaxed)
    }

    fn submit_chunk(&self, ctx: &Ctx, rank: u32, slot: u32, len: u64, checksum: u64) {
        ctx.sleep(calib::CHUNK_PROTOCOL_OVERHEAD);
        let outstanding = {
            let mut o = self.st.outstanding.lock();
            *o += 1;
            *o
        };
        if ctx.telemetry_on() {
            ctx.instant_with("pool", "chunk_submit", || {
                vec![
                    ("rank", rank.into()),
                    ("slot", slot.into()),
                    ("bytes", len.into()),
                ]
            });
            ctx.counter("pool", "outstanding", outstanding as f64);
        }
        self.st.bytes_streamed.fetch_add(len, Ordering::Relaxed);
        // A failed control send (link fault) is treated as a lost message:
        // the target never pulls the chunk, the pool stalls, and the Job
        // Manager's phase deadline aborts and retries the cycle.
        if let Err(e) = self.qp.send(
            ctx,
            TAG_REQ,
            Box::new(ChunkReq {
                rank,
                slot,
                len,
                src_mr: self.mr.remote(),
                checksum,
            }),
            96,
        ) {
            ctx.instant_with("pool", "control_send_failed", || {
                vec![("msg", "chunk_req".into()), ("error", e.to_string().into())]
            });
        }
    }

    fn rank_eof(&self, ctx: &Ctx, rank: u32, total: u64, checksum: u64) {
        ctx.instant_with("pool", "rank_eof", || {
            vec![("rank", rank.into()), ("stream_bytes", total.into())]
        });
        if let Err(e) = self.qp.send(
            ctx,
            TAG_EOF,
            Box::new(RankEof {
                rank,
                total_bytes: total,
                image_checksum: checksum,
            }),
            96,
        ) {
            ctx.instant_with("pool", "control_send_failed", || {
                vec![("msg", "eof".into()), ("error", e.to_string().into())]
            });
        }
        let mut remaining = self.st.ranks_remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            let mut sent = self.st.done_sent.lock();
            if !*sent {
                *sent = true;
                if let Err(e) = self.qp.send(ctx, TAG_DONE, Box::new(()), 64) {
                    ctx.instant_with("pool", "control_send_failed", || {
                        vec![("msg", "done".into()), ("error", e.to_string().into())]
                    });
                }
            }
        }
    }
}

/// [`CheckpointSink`] that aggregates one process's checkpoint stream into
/// pool chunks (paper: "each chunk containing data from one process").
pub struct AggregationSink {
    pool: Arc<SourcePool>,
    rank: u32,
    image_checksum: u64,
    slot: Option<u32>,
    fill: u64,
    total: u64,
    /// Shadow of the slices written into the current chunk, for the
    /// per-chunk checksum that rides the RDMA-read request.
    chunk: Vec<DataSlice>,
}

impl AggregationSink {
    fn acquire_slot(&mut self, ctx: &Ctx) -> u32 {
        if let Some(s) = self.slot {
            return s;
        }
        self.pool.st.slot_sem.acquire(ctx, 1);
        let s = self
            .pool
            .st
            .free_slots
            .lock()
            .pop()
            // jmlint: allow(hot_unwrap) — slot_sem counts free_slots exactly
            .expect("semaphore guarantees a free slot");
        self.slot = Some(s);
        self.fill = 0;
        s
    }

    fn flush_chunk(&mut self, ctx: &Ctx) {
        if let Some(slot) = self.slot.take() {
            if self.fill > 0 {
                let sum = stream_checksum(&self.chunk);
                self.pool.submit_chunk(ctx, self.rank, slot, self.fill, sum);
            } else {
                // nothing written: return the slot silently
                self.pool.st.free_slots.lock().push(slot);
                self.pool.st.slot_sem.release(1);
            }
            self.fill = 0;
            self.chunk.clear();
        }
    }
}

impl CheckpointSink for AggregationSink {
    fn write(&mut self, ctx: &Ctx, data: DataSlice) {
        let chunk = self.pool.cfg.chunk_bytes;
        let mut offset = 0u64;
        while offset < data.len {
            let slot = self.acquire_slot(ctx);
            let room = chunk - self.fill;
            let n = room.min(data.len - offset);
            let base = slot as u64 * chunk;
            let part = data.slice(offset, n);
            self.chunk.push(part.clone());
            self.pool.mr.write_local(base + self.fill, part);
            self.fill += n;
            self.total += n;
            offset += n;
            if self.fill == chunk {
                self.flush_chunk(ctx);
            }
        }
    }

    fn close(&mut self, ctx: &Ctx) {
        self.flush_chunk(ctx);
        self.pool
            .rank_eof(ctx, self.rank, self.total, self.image_checksum);
    }
}

/// What the target manager assembled for one rank.
#[derive(Debug, Clone)]
pub struct AssembledImage {
    /// Checkpoint file path on the target filesystem (file-based mode).
    pub path: String,
    /// Total stream bytes.
    pub bytes: u64,
    /// Source-side image checksum (verify after restart).
    pub expected_checksum: u64,
    /// In-memory stream (memory-based restart mode).
    pub slices: Option<Vec<DataSlice>>,
}

/// Result of a completed target-side pull.
pub struct TargetResult {
    /// Per-rank assembled images.
    pub images: HashMap<u32, AssembledImage>,
    /// Total bytes pulled over RDMA.
    pub bytes_pulled: u64,
}

/// Why a target-side pull gave up. The Job Manager's Phase 2 deadline
/// notices (no PIIC arrives) and aborts/retries the cycle.
#[derive(Debug, Clone)]
pub struct PullAbort {
    /// What failed ("chunk", "store", "wire").
    pub reason: &'static str,
}

/// Run the target-side buffer manager to completion: connect back to the
/// source, pull every announced chunk with RDMA Read (re-issuing on CQ
/// error or per-chunk checksum mismatch, within `cfg.chunk_retries`),
/// append chunks to per-rank checkpoint files on `store` (buffered temp
/// files), and acknowledge. Returns once the source signals DONE, or
/// `Err` when a chunk cannot be obtained or staged — the caller leaves
/// the cycle to the Job Manager's phase deadline.
pub fn run_target_pool(
    ctx: &Ctx,
    hca: &Hca,
    cfg: PoolConfig,
    rendezvous: &PoolRendezvous,
    store: Arc<dyn CkptStore>,
    file_prefix: &str,
) -> Result<TargetResult, PullAbort> {
    let Some(src_addr) = rendezvous.wait(ctx) else {
        // Woken without a published address: the source side died before
        // publishing. Leave the cycle to the phase deadline.
        return Err(PullAbort {
            reason: "rendezvous",
        });
    };
    // Local staging pool mirrors the source pool geometry.
    let _staging = hca.register_mr(ctx, cfg.pool_bytes);
    let qp = hca.create_qp();
    if qp.connect(ctx, src_addr).is_err() {
        return Err(PullAbort { reason: "wire" });
    }
    if qp.send(ctx, TAG_HELLO, Box::new(qp.addr()), 64).is_err() {
        return Err(PullAbort { reason: "wire" });
    }

    let mut images: HashMap<u32, AssembledImage> = HashMap::new();
    let mut created: HashMap<u32, String> = HashMap::new();
    let mut memory: HashMap<u32, Vec<DataSlice>> = HashMap::new();
    let mut bytes_pulled = 0u64;
    loop {
        let Ok(msg) = qp.recv(ctx) else {
            return Err(PullAbort { reason: "wire" });
        };
        match msg.tag {
            TAG_REQ => {
                let Ok(req) = msg.body.downcast::<ChunkReq>() else {
                    return Err(PullAbort { reason: "protocol" });
                };
                let base = req.slot as u64 * cfg.chunk_bytes;
                let mut tries = 0u32;
                let slices = loop {
                    let pulled = match cfg.transport {
                        Transport::RdmaRead => qp.rdma_read(ctx, &req.src_mr, base, req.len),
                        Transport::IpoibStaged => {
                            // Same wire, but through the socket stack: an
                            // extra kernel copy on each side of the
                            // transfer.
                            ctx.sleep(Duration::from_secs_f64(
                                req.len as f64 / calib::IPOIB_COPY_BW,
                            ));
                            let r = qp.rdma_read(ctx, &req.src_mr, base, req.len);
                            ctx.sleep(Duration::from_secs_f64(
                                req.len as f64 / calib::IPOIB_COPY_BW,
                            ));
                            r
                        }
                    };
                    bytes_pulled += req.len;
                    let error: &'static str = match pulled {
                        Ok(s) if stream_checksum(&s) == req.checksum => break s,
                        Ok(_) => "checksum_mismatch",
                        Err(ibfabric::VerbsError::CqError) => "cq_error",
                        Err(_) => return Err(PullAbort { reason: "wire" }),
                    };
                    tries += 1;
                    ctx.instant_with("pool", "chunk_reissue", || {
                        vec![
                            ("rank", req.rank.into()),
                            ("slot", req.slot.into()),
                            ("try", tries.into()),
                            ("error", error.into()),
                        ]
                    });
                    if tries > cfg.chunk_retries {
                        ctx.instant_with("pool", "chunk_failed", || {
                            vec![("rank", req.rank.into()), ("slot", req.slot.into())]
                        });
                        return Err(PullAbort { reason: "chunk" });
                    }
                };
                ctx.instant_with("pool", "chunk_pull", || {
                    vec![
                        ("rank", req.rank.into()),
                        ("slot", req.slot.into()),
                        ("bytes", req.len.into()),
                    ]
                });
                match cfg.restart_mode {
                    RestartMode::FileBased => {
                        let path = created.entry(req.rank).or_insert_with(|| {
                            let p = format!("{file_prefix}.{}", req.rank);
                            store.create(ctx, &p);
                            p
                        });
                        for s in slices {
                            if let Err(e) = store.try_append(ctx, path, s, false) {
                                ctx.instant_with("pool", "stage_write_failed", || {
                                    vec![("rank", req.rank.into()), ("error", e.to_string().into())]
                                });
                                return Err(PullAbort { reason: "store" });
                            }
                        }
                    }
                    RestartMode::MemoryBased => {
                        memory.entry(req.rank).or_default().extend(slices);
                    }
                }
                if qp
                    .send(ctx, TAG_ACK, Box::new(AckMsg { slot: req.slot }), 64)
                    .is_err()
                {
                    return Err(PullAbort { reason: "wire" });
                }
            }
            TAG_EOF => {
                let Ok(eof) = msg.body.downcast::<RankEof>() else {
                    return Err(PullAbort { reason: "protocol" });
                };
                // A staged stream shorter than announced means a chunk
                // request was lost on the wire: give up gracefully and let
                // the Phase 2 deadline abort the cycle.
                let (path, slices) = match cfg.restart_mode {
                    RestartMode::FileBased => {
                        let Some(path) = created.get(&eof.rank).cloned() else {
                            return Err(PullAbort {
                                reason: "incomplete",
                            });
                        };
                        if store.len(&path) != Some(eof.total_bytes) {
                            ctx.instant_with("pool", "stream_incomplete", || {
                                vec![
                                    ("rank", eof.rank.into()),
                                    ("expected", eof.total_bytes.into()),
                                ]
                            });
                            return Err(PullAbort {
                                reason: "incomplete",
                            });
                        }
                        (path, None)
                    }
                    RestartMode::MemoryBased => {
                        let slices = memory.remove(&eof.rank).unwrap_or_default();
                        let total: u64 = slices.iter().map(|s| s.len).sum();
                        if total != eof.total_bytes {
                            ctx.instant_with("pool", "stream_incomplete", || {
                                vec![
                                    ("rank", eof.rank.into()),
                                    ("expected", eof.total_bytes.into()),
                                ]
                            });
                            return Err(PullAbort {
                                reason: "incomplete",
                            });
                        }
                        (String::new(), Some(slices))
                    }
                };
                images.insert(
                    eof.rank,
                    AssembledImage {
                        path,
                        bytes: eof.total_bytes,
                        expected_checksum: eof.image_checksum,
                        slices,
                    },
                );
            }
            TAG_DONE => {
                if qp.send(ctx, TAG_DONE_ACK, Box::new(()), 64).is_err() {
                    return Err(PullAbort { reason: "wire" });
                }
                break;
            }
            other => {
                ctx.instant_with("pool", "unexpected_tag", || {
                    vec![("side", "target".into()), ("tag", other.into())]
                });
                return Err(PullAbort { reason: "protocol" });
            }
        }
    }
    Ok(TargetResult {
        images,
        bytes_pulled,
    })
}
