//! The RDMA-based process migration engine (paper §III-B, Figure 3).
//!
//! On the **source** node a user-level buffer manager owns a pool of
//! chunks inside a registered memory region. BLCR checkpoint streams from
//! the co-located MPI processes are aggregated into those chunks (one
//! chunk carries data of exactly one process). Whenever a chunk fills, an
//! *RDMA-read request* — carrying the chunk's rkey/offset/length and the
//! owning rank — is sent to the **target** buffer manager, which pulls the
//! chunk with an RDMA Read, appends it to that rank's checkpoint file
//! (page-cache buffered), and acknowledges so the source can reuse the
//! chunk. Pool exhaustion naturally throttles the checkpoint writers —
//! the paper's flow control.
//!
//! Both ends are driven through [`TransferSession`]: a symmetric builder
//! over [`PoolConfig`] with a `source` side (aggregation + request
//! announcements) and a `target` side (pull + staging + per-rank
//! completion). The target side supports two extensions over the paper's
//! engine:
//!
//! * **per-rank readiness** — the session fires a [`TargetHooks::on_rank_ready`]
//!   hook the moment one rank's stream is fully staged and verified, so a
//!   pipelined restart phase can begin restarting that rank while other
//!   ranks are still streaming;
//! * **multi-lane pulls** — chunk pulls can be striped over N parallel
//!   QPs (`PoolConfig::lanes`), overlapping RDMA Read wire time with
//!   staging I/O; a per-lane worker re-issues failed reads with the same
//!   per-chunk retry budget the single-lane engine uses.

use crate::calib;
use blcrsim::CheckpointSink;
use ibfabric::{DataSlice, Hca, Qp, QpAddr, RemoteMr, Rope};
use parking_lot::Mutex;
use simkit::{Ctx, Event, Queue, Semaphore, SimHandle};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use storesim::CkptStore;

/// How chunk data crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The paper's design: the target pulls chunks with zero-copy RDMA
    /// Read.
    RdmaRead,
    /// The Wang et al. style staged-copy path over IPoIB sockets: the
    /// same wire, plus a kernel memory copy on each side — the approach
    /// §III-B argues against.
    IpoibStaged,
}

/// Where restarted processes load their images from (Phase 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// The paper's implementation: chunks are staged into temporary
    /// checkpoint files on the target and BLCR restarts from them (file
    /// I/O dominates Phase 3).
    FileBased,
    /// The paper's stated future work: restart directly from the buffer
    /// pool in memory, eliminating the file I/O.
    MemoryBased,
}

/// Buffer pool geometry and engine options.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Total pool bytes (paper default 10 MB).
    pub pool_bytes: u64,
    /// Chunk size (paper default 1 MB).
    pub chunk_bytes: u64,
    /// Wire transport for chunk data.
    pub transport: Transport,
    /// Phase 3 restart strategy.
    pub restart_mode: RestartMode,
    /// Per-chunk RDMA Read re-issue budget on CQ error or checksum
    /// mismatch.
    pub chunk_retries: u32,
    /// Parallel RDMA lanes on the target side (QPs pulling chunks
    /// concurrently). 1 reproduces the paper's sequential engine.
    pub lanes: u32,
    /// Overlap Phase 3 with Phase 2: restart each rank as soon as its
    /// image is staged instead of waiting for the whole-pull barrier.
    pub overlap: bool,
    /// Maximum concurrent per-rank restarts in overlap mode (bounds the
    /// Phase 3 cold-read storm on the target disk). 0 = unbounded, which
    /// matches the barrier engine's all-at-once restart.
    pub restart_admission: u32,
    /// Iterative pre-copy live migration. `Some` streams the image while
    /// ranks keep running and only holds the barrier for a short residual
    /// round; `None` is classic stop-and-copy.
    pub live: Option<livemig::LiveConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            pool_bytes: calib::BUFFER_POOL_BYTES,
            chunk_bytes: calib::CHUNK_BYTES,
            transport: Transport::RdmaRead,
            restart_mode: RestartMode::FileBased,
            chunk_retries: calib::recovery().chunk_retries,
            lanes: 1,
            overlap: false,
            restart_admission: 0,
            live: None,
        }
    }
}

/// Positional sampled checksum over a slice stream, independent of slice
/// boundaries (the target's RDMA Read may return different slicing than
/// the source wrote). Samples up to 64 byte positions, endpoints
/// included, and mixes in the position — so a full-chunk pattern swap, a
/// truncation, or an offset shift all change the value.
pub(crate) fn stream_checksum(slices: &[DataSlice]) -> u64 {
    let total: u64 = slices.iter().map(|s| s.len).sum();
    if total == 0 {
        return 0;
    }
    const SAMPLES: u64 = 64;
    let n = SAMPLES.min(total);
    let mut acc: u64 = 0xfeed_f00d_0bad_cafe;
    // Positions are non-decreasing: walk the stream with one cursor.
    let mut si = 0usize;
    let mut base = 0u64;
    for i in 0..n {
        let pos = if n == 1 { 0 } else { i * (total - 1) / (n - 1) };
        while pos >= base + slices[si].len {
            base += slices[si].len;
            si += 1;
        }
        let b = slices[si].byte_at(pos - base);
        acc = acc.rotate_left(7) ^ (b as u64) ^ pos.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    (acc << 1) ^ total
}

impl PoolConfig {
    /// Number of chunks in the pool.
    pub fn slots(&self) -> u32 {
        (self.pool_bytes / self.chunk_bytes).max(1) as u32
    }

    /// Effective lane count (at least one).
    pub fn lane_count(&self) -> u32 {
        self.lanes.max(1)
    }
}

// wire tags on the manager QP
const TAG_HELLO: u64 = 0;
const TAG_REQ: u64 = 1;
const TAG_EOF: u64 = 2;
const TAG_DONE: u64 = 3;
const TAG_ACK: u64 = 4;
const TAG_DONE_ACK: u64 = 5;

/// How often the multi-lane manager re-checks for abort while parked
/// waiting on control traffic or on stage completion.
const LANE_POLL: Duration = Duration::from_micros(50);

/// RDMA-read request for one filled chunk.
struct ChunkReq {
    rank: u32,
    /// Per-rank submission sequence number: the staging side re-assembles
    /// each rank's stream in `seq` order so multi-lane pulls may complete
    /// out of order.
    seq: u64,
    slot: u32,
    len: u64,
    src_mr: RemoteMr,
    /// Positional checksum of the chunk content (see [`stream_checksum`]);
    /// the target verifies each pulled chunk against it and re-issues the
    /// RDMA Read on mismatch.
    checksum: u64,
}

/// End-of-stream marker for one process.
struct RankEof {
    rank: u32,
    total_bytes: u64,
    image_checksum: u64,
}

struct AckMsg {
    slot: u32,
}

/// Rendezvous published by the source manager so the target can connect
/// (stands in for the launcher's out-of-band address exchange).
#[derive(Clone)]
pub struct PoolRendezvous {
    addr: Arc<Mutex<Option<QpAddr>>>,
    ready: Event,
}

impl PoolRendezvous {
    /// Create an empty rendezvous.
    pub fn new(handle: &SimHandle) -> Self {
        PoolRendezvous {
            addr: Arc::new(Mutex::new(None)),
            ready: Event::new(handle, "pool-rendezvous"),
        }
    }

    fn publish(&self, addr: QpAddr) {
        *self.addr.lock() = Some(addr);
        self.ready.set();
    }

    fn wait(&self, ctx: &Ctx) -> Option<QpAddr> {
        self.ready.wait(ctx);
        *self.addr.lock()
    }
}

// ---------------------------------------------------------------------------
// TransferSession — the symmetric entry point for both pool ends
// ---------------------------------------------------------------------------

/// Hook invoked by the target engine the moment one rank's stream is
/// fully staged and length-verified (its EOF is satisfied). Runs in the
/// staging process; used by the runtime to fire per-rank `image_ready`
/// events for the pipelined restart path.
pub type RankReadyHook = Arc<dyn Fn(&Ctx, u32, AssembledImage) + Send + Sync>;

/// Optional target-side callbacks.
#[derive(Default, Clone)]
pub struct TargetHooks {
    /// Fired once per rank when its image is completely staged.
    pub on_rank_ready: Option<RankReadyHook>,
    /// Observes every helper process the multi-lane engine spawns (lane
    /// workers, stager) so a supervising cycle can track and kill them on
    /// abort.
    pub on_spawn: Option<Arc<dyn Fn(simkit::ProcHandle) + Send + Sync>>,
}

/// One migration data-path session: a symmetric façade over the source
/// aggregation pool and the target pull engine, built from one
/// [`PoolConfig`].
///
/// ```ignore
/// let session = TransferSession::builder().lanes(2).overlap(true).build();
/// // source node:
/// let (pool, ack) = session.source(ctx, &hca, nranks, &rendezvous);
/// // target node:
/// let result = session.target(ctx, &hca, &rendezvous, store, "mig.1")?;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TransferSession {
    cfg: PoolConfig,
}

impl TransferSession {
    /// Start building a session from the paper-default configuration.
    pub fn builder() -> TransferSessionBuilder {
        TransferSessionBuilder {
            cfg: PoolConfig::default(),
        }
    }

    /// Wrap an existing configuration.
    pub fn from_config(cfg: PoolConfig) -> Self {
        TransferSession { cfg }
    }

    /// The session's pool configuration.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Set up the source half on `hca`: registers the pool MR (timed),
    /// publishes its QP address on `rendezvous`, and spawns the ack loop
    /// (returned so an aborted cycle can kill it). `nranks` is the number
    /// of local processes that will stream through the pool.
    pub fn source(
        &self,
        ctx: &Ctx,
        hca: &Hca,
        nranks: u32,
        rendezvous: &PoolRendezvous,
    ) -> (Arc<SourcePool>, simkit::ProcHandle) {
        SourcePool::setup_inner(ctx, hca, self.cfg, nranks, rendezvous)
    }

    /// Run the target half to completion: connect back to the source,
    /// pull every announced chunk (striped over `lanes` QPs when
    /// configured), stage per-rank streams on `store`, and acknowledge.
    /// Blocks until the source signals DONE and every announced rank is
    /// fully staged, or returns `Err` when a chunk cannot be obtained or
    /// staged — the caller leaves the cycle to the Job Manager's phase
    /// deadline.
    pub fn target(
        &self,
        ctx: &Ctx,
        hca: &Hca,
        rendezvous: &PoolRendezvous,
        store: Arc<dyn CkptStore>,
        file_prefix: &str,
    ) -> Result<TargetResult, PullAbort> {
        self.target_with(
            ctx,
            hca,
            rendezvous,
            store,
            file_prefix,
            TargetHooks::default(),
        )
    }

    /// [`TransferSession::target`] with per-rank readiness / spawn hooks.
    pub fn target_with(
        &self,
        ctx: &Ctx,
        hca: &Hca,
        rendezvous: &PoolRendezvous,
        store: Arc<dyn CkptStore>,
        file_prefix: &str,
        hooks: TargetHooks,
    ) -> Result<TargetResult, PullAbort> {
        if self.cfg.lane_count() > 1 {
            target_multi_lane(ctx, hca, self.cfg, rendezvous, store, file_prefix, hooks)
        } else {
            target_single_lane(ctx, hca, self.cfg, rendezvous, store, file_prefix, hooks)
        }
    }
}

/// Builder for [`TransferSession`].
#[derive(Debug, Clone, Copy)]
pub struct TransferSessionBuilder {
    cfg: PoolConfig,
}

impl TransferSessionBuilder {
    /// Total pool bytes (paper default 10 MB).
    pub fn pool_bytes(mut self, bytes: u64) -> Self {
        self.cfg.pool_bytes = bytes;
        self
    }

    /// Chunk size (paper default 1 MB).
    pub fn chunk_bytes(mut self, bytes: u64) -> Self {
        self.cfg.chunk_bytes = bytes;
        self
    }

    /// Wire transport for chunk data.
    pub fn transport(mut self, t: Transport) -> Self {
        self.cfg.transport = t;
        self
    }

    /// Phase 3 restart strategy.
    pub fn restart_mode(mut self, m: RestartMode) -> Self {
        self.cfg.restart_mode = m;
        self
    }

    /// Per-chunk RDMA Read re-issue budget.
    pub fn chunk_retries(mut self, retries: u32) -> Self {
        self.cfg.chunk_retries = retries;
        self
    }

    /// Parallel RDMA pull lanes on the target.
    pub fn lanes(mut self, lanes: u32) -> Self {
        self.cfg.lanes = lanes.max(1);
        self
    }

    /// Overlap per-rank restart with the remaining pull.
    pub fn overlap(mut self, on: bool) -> Self {
        self.cfg.overlap = on;
        self
    }

    /// Bound on concurrent restarts in overlap mode (0 = unbounded).
    pub fn restart_admission(mut self, n: u32) -> Self {
        self.cfg.restart_admission = n;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> TransferSession {
        TransferSession { cfg: self.cfg }
    }
}

struct SourceState {
    free_slots: Mutex<Vec<u32>>,
    slot_sem: Semaphore,
    /// Requests sent and not yet acked.
    outstanding: Mutex<u64>,
    /// Ranks that have not closed their sink yet.
    ranks_remaining: Mutex<u32>,
    done_sent: Mutex<bool>,
    bytes_streamed: AtomicU64,
    /// All data acked and DONE_ACK received.
    finished: Event,
}

/// The source-side buffer manager.
pub struct SourcePool {
    cfg: PoolConfig,
    qp: Qp,
    mr: ibfabric::Mr,
    /// Target connected and ready to receive requests.
    channel_ready: Event,
    st: Arc<SourceState>,
}

impl SourcePool {
    fn setup_inner(
        ctx: &Ctx,
        hca: &Hca,
        cfg: PoolConfig,
        nranks: u32,
        rendezvous: &PoolRendezvous,
    ) -> (Arc<SourcePool>, simkit::ProcHandle) {
        let handle = ctx.handle();
        let mr = hca.register_mr(ctx, cfg.pool_bytes);
        let qp = hca.create_qp();
        rendezvous.publish(qp.addr());
        let slots = cfg.slots();
        let st = Arc::new(SourceState {
            free_slots: Mutex::new((0..slots).collect()),
            slot_sem: Semaphore::new(&handle, slots as u64),
            outstanding: Mutex::new(0),
            ranks_remaining: Mutex::new(nranks),
            done_sent: Mutex::new(false),
            bytes_streamed: AtomicU64::new(0),
            finished: Event::new(&handle, "source-pool-finished"),
        });
        let pool = Arc::new(SourcePool {
            cfg,
            qp: qp.clone(),
            mr,
            channel_ready: Event::new(&handle, "pool-channel-ready"),
            st,
        });
        // Ack loop: receives HELLO (target address), ACKs and DONE_ACK.
        // A daemon: on a healthy cycle it exits at DONE_ACK; on an aborted
        // one the runtime kills it.
        let p = Arc::clone(&pool);
        let ack = ctx.spawn_daemon("srcpool-ackloop", move |ctx| p.ack_loop(ctx));
        (pool, ack)
    }

    fn ack_loop(&self, ctx: &Ctx) {
        loop {
            let msg = match self.qp.recv(ctx) {
                Ok(m) => m,
                Err(_) => return,
            };
            match msg.tag {
                TAG_HELLO => {
                    let Ok(addr) = msg.body.downcast::<QpAddr>() else {
                        continue; // foreign traffic: ignore
                    };
                    // A failed connect-back (link fault) leaves the channel
                    // unready: writers stall on it and the phase deadline
                    // aborts/retries the cycle.
                    if let Err(e) = self.qp.connect(ctx, *addr) {
                        ctx.instant_with("pool", "control_connect_failed", || {
                            vec![("error", e.to_string().into())]
                        });
                        return;
                    }
                    self.channel_ready.set();
                }
                TAG_ACK => {
                    let Ok(ack) = msg.body.downcast::<AckMsg>() else {
                        continue; // foreign traffic: ignore
                    };
                    self.st.free_slots.lock().push(ack.slot);
                    self.st.slot_sem.release(1);
                    let outstanding = {
                        let mut o = self.st.outstanding.lock();
                        *o -= 1;
                        *o
                    };
                    if ctx.telemetry_on() {
                        ctx.instant_with("pool", "chunk_ack", || vec![("slot", ack.slot.into())]);
                        ctx.counter("pool", "outstanding", outstanding as f64);
                    }
                }
                TAG_DONE_ACK => {
                    self.st.finished.set();
                    return;
                }
                other => {
                    // A tag we don't speak is a protocol anomaly, not a
                    // reason to take the job down: log and keep serving.
                    ctx.instant_with("pool", "unexpected_tag", || {
                        vec![("side", "source".into()), ("tag", other.into())]
                    });
                }
            }
        }
    }

    /// A checkpoint sink streaming `rank`'s image through the pool.
    /// `image_checksum` rides the EOF marker for end-to-end verification.
    pub fn sink(self: &Arc<Self>, ctx: &Ctx, rank: u32, image_checksum: u64) -> AggregationSink {
        // Writers may not race ahead of the control channel.
        self.channel_ready.wait(ctx);
        AggregationSink {
            pool: Arc::clone(self),
            rank,
            image_checksum,
            slot: None,
            seq: 0,
            fill: 0,
            total: 0,
            chunk: Rope::new(),
        }
    }

    /// Completion event: all data pulled and acknowledged by the target.
    pub fn finished(&self) -> &Event {
        &self.st.finished
    }

    /// Stream bytes pushed through the pool (Table I accounting).
    pub fn bytes_streamed(&self) -> u64 {
        self.st.bytes_streamed.load(Ordering::Relaxed)
    }

    fn submit_chunk(&self, ctx: &Ctx, rank: u32, seq: u64, slot: u32, len: u64, checksum: u64) {
        ctx.sleep(calib::CHUNK_PROTOCOL_OVERHEAD);
        let outstanding = {
            let mut o = self.st.outstanding.lock();
            *o += 1;
            *o
        };
        if ctx.telemetry_on() {
            ctx.instant_with("pool", "chunk_submit", || {
                vec![
                    ("rank", rank.into()),
                    ("slot", slot.into()),
                    ("bytes", len.into()),
                ]
            });
            ctx.counter("pool", "outstanding", outstanding as f64);
        }
        self.st.bytes_streamed.fetch_add(len, Ordering::Relaxed);
        // A failed control send (link fault) is treated as a lost message:
        // the target never pulls the chunk, the pool stalls, and the Job
        // Manager's phase deadline aborts and retries the cycle.
        if let Err(e) = self.qp.send(
            ctx,
            TAG_REQ,
            Box::new(ChunkReq {
                rank,
                seq,
                slot,
                len,
                src_mr: self.mr.remote(),
                checksum,
            }),
            96,
        ) {
            ctx.instant_with("pool", "control_send_failed", || {
                vec![("msg", "chunk_req".into()), ("error", e.to_string().into())]
            });
        }
    }

    fn rank_eof(&self, ctx: &Ctx, rank: u32, total: u64, checksum: u64) {
        ctx.instant_with("pool", "rank_eof", || {
            vec![("rank", rank.into()), ("stream_bytes", total.into())]
        });
        if let Err(e) = self.qp.send(
            ctx,
            TAG_EOF,
            Box::new(RankEof {
                rank,
                total_bytes: total,
                image_checksum: checksum,
            }),
            96,
        ) {
            ctx.instant_with("pool", "control_send_failed", || {
                vec![("msg", "eof".into()), ("error", e.to_string().into())]
            });
        }
        let mut remaining = self.st.ranks_remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            let mut sent = self.st.done_sent.lock();
            if !*sent {
                *sent = true;
                if let Err(e) = self.qp.send(ctx, TAG_DONE, Box::new(()), 64) {
                    ctx.instant_with("pool", "control_send_failed", || {
                        vec![("msg", "done".into()), ("error", e.to_string().into())]
                    });
                }
            }
        }
    }
}

/// [`CheckpointSink`] that aggregates one process's checkpoint stream into
/// pool chunks (paper: "each chunk containing data from one process").
pub struct AggregationSink {
    pool: Arc<SourcePool>,
    rank: u32,
    image_checksum: u64,
    slot: Option<u32>,
    /// Next chunk sequence number for this rank's stream.
    seq: u64,
    fill: u64,
    total: u64,
    /// Shadow of the slices written into the current chunk, for the
    /// per-chunk checksum that rides the RDMA-read request. A rope: the
    /// slice views are shared with the MR write, never copied.
    chunk: Rope,
}

impl AggregationSink {
    fn acquire_slot(&mut self, ctx: &Ctx) -> u32 {
        if let Some(s) = self.slot {
            return s;
        }
        self.pool.st.slot_sem.acquire(ctx, 1);
        let s = self
            .pool
            .st
            .free_slots
            .lock()
            .pop()
            // jmlint: allow(hot_unwrap) — slot_sem counts free_slots exactly
            .expect("semaphore guarantees a free slot");
        self.slot = Some(s);
        self.fill = 0;
        s
    }

    fn flush_chunk(&mut self, ctx: &Ctx) {
        if let Some(slot) = self.slot.take() {
            if self.fill > 0 {
                let sum = stream_checksum(self.chunk.as_slices());
                self.pool
                    .submit_chunk(ctx, self.rank, self.seq, slot, self.fill, sum);
                self.seq += 1;
            } else {
                // nothing written: return the slot silently
                self.pool.st.free_slots.lock().push(slot);
                self.pool.st.slot_sem.release(1);
            }
            self.fill = 0;
            self.chunk.clear();
        }
    }
}

impl CheckpointSink for AggregationSink {
    fn write(&mut self, ctx: &Ctx, data: DataSlice) {
        let chunk = self.pool.cfg.chunk_bytes;
        let mut offset = 0u64;
        while offset < data.len {
            let slot = self.acquire_slot(ctx);
            let room = chunk - self.fill;
            let n = room.min(data.len - offset);
            let base = slot as u64 * chunk;
            let part = data.slice(offset, n);
            self.chunk.push(part.clone());
            self.pool.mr.write_local(base + self.fill, part);
            self.fill += n;
            self.total += n;
            offset += n;
            if self.fill == chunk {
                self.flush_chunk(ctx);
            }
        }
    }

    fn close(&mut self, ctx: &Ctx) {
        self.flush_chunk(ctx);
        self.pool
            .rank_eof(ctx, self.rank, self.total, self.image_checksum);
    }
}

/// What the target manager assembled for one rank.
#[derive(Debug, Clone)]
pub struct AssembledImage {
    /// Checkpoint file path on the target filesystem (file-based mode).
    pub path: String,
    /// Total stream bytes.
    pub bytes: u64,
    /// Source-side image checksum (verify after restart).
    pub expected_checksum: u64,
    /// In-memory stream (memory-based restart mode). A [`Rope`]: cloning
    /// the image — the per-rank readiness hook, the images map — shares
    /// the slice table instead of copying it.
    pub slices: Option<Rope>,
}

/// Result of a completed target-side pull.
pub struct TargetResult {
    /// Per-rank assembled images.
    pub images: HashMap<u32, AssembledImage>,
    /// Total bytes pulled over RDMA.
    pub bytes_pulled: u64,
}

/// Why a target-side pull gave up. The Job Manager's Phase 2 deadline
/// notices (no PIIC arrives) and aborts/retries the cycle.
#[derive(Debug, Clone)]
pub struct PullAbort {
    /// What failed ("chunk", "store", "wire").
    pub reason: &'static str,
    /// The rank whose stream the engine was working on, when known.
    pub rank: Option<u32>,
    /// Pull lane that hit the failure (0 on the single-lane engine and
    /// for manager-side control failures).
    pub lane: u32,
    /// RDMA bytes pulled before the abort (failed re-issues included).
    pub bytes_pulled: u64,
}

impl PullAbort {
    fn new(reason: &'static str) -> PullAbort {
        PullAbort {
            reason,
            rank: None,
            lane: 0,
            bytes_pulled: 0,
        }
    }

    fn at(reason: &'static str, rank: Option<u32>, lane: u32) -> PullAbort {
        PullAbort {
            reason,
            rank,
            lane,
            bytes_pulled: 0,
        }
    }

    fn pulled(mut self, bytes: u64) -> PullAbort {
        self.bytes_pulled = bytes;
        self
    }
}

/// Pull one chunk with the per-chunk re-issue budget. Adds every pull
/// attempt (including failed re-issues) to `bytes_pulled`.
fn pull_chunk(
    ctx: &Ctx,
    qp: &Qp,
    cfg: &PoolConfig,
    req: &ChunkReq,
    lane: u32,
    bytes_pulled: &AtomicU64,
) -> Result<Vec<DataSlice>, PullAbort> {
    let base = req.slot as u64 * cfg.chunk_bytes;
    let mut tries = 0u32;
    loop {
        let pulled = match cfg.transport {
            Transport::RdmaRead => qp.rdma_read(ctx, &req.src_mr, base, req.len),
            Transport::IpoibStaged => {
                // Same wire, but through the socket stack: an extra kernel
                // copy on each side of the transfer.
                ctx.sleep(Duration::from_secs_f64(
                    req.len as f64 / calib::IPOIB_COPY_BW,
                ));
                let r = qp.rdma_read(ctx, &req.src_mr, base, req.len);
                ctx.sleep(Duration::from_secs_f64(
                    req.len as f64 / calib::IPOIB_COPY_BW,
                ));
                r
            }
        };
        bytes_pulled.fetch_add(req.len, Ordering::Relaxed);
        let error: &'static str = match pulled {
            Ok(s) if stream_checksum(&s) == req.checksum => return Ok(s),
            Ok(_) => "checksum_mismatch",
            Err(ibfabric::VerbsError::CqError) => "cq_error",
            Err(_) => return Err(PullAbort::at("wire", Some(req.rank), lane)),
        };
        tries += 1;
        ctx.instant_with("pool", "chunk_reissue", || {
            vec![
                ("rank", req.rank.into()),
                ("slot", req.slot.into()),
                ("lane", lane.into()),
                ("try", tries.into()),
                ("error", error.into()),
            ]
        });
        if tries > cfg.chunk_retries {
            ctx.instant_with("pool", "chunk_failed", || {
                vec![
                    ("rank", req.rank.into()),
                    ("slot", req.slot.into()),
                    ("lane", lane.into()),
                ]
            });
            return Err(PullAbort::at("chunk", Some(req.rank), lane));
        }
    }
}

/// The paper's sequential target engine: one QP, chunks pulled and staged
/// in announcement order. Timing-identical to the pre-session engine.
fn target_single_lane(
    ctx: &Ctx,
    hca: &Hca,
    cfg: PoolConfig,
    rendezvous: &PoolRendezvous,
    store: Arc<dyn CkptStore>,
    file_prefix: &str,
    hooks: TargetHooks,
) -> Result<TargetResult, PullAbort> {
    let Some(src_addr) = rendezvous.wait(ctx) else {
        // Woken without a published address: the source side died before
        // publishing. Leave the cycle to the phase deadline.
        return Err(PullAbort::new("rendezvous"));
    };
    // Local staging pool mirrors the source pool geometry.
    let _staging = hca.register_mr(ctx, cfg.pool_bytes);
    let qp = hca.create_qp();
    if qp.connect(ctx, src_addr).is_err() {
        return Err(PullAbort::new("wire"));
    }
    if qp.send(ctx, TAG_HELLO, Box::new(qp.addr()), 64).is_err() {
        return Err(PullAbort::new("wire"));
    }

    let mut images: HashMap<u32, AssembledImage> = HashMap::new();
    let mut created: HashMap<u32, String> = HashMap::new();
    let mut memory: HashMap<u32, Rope> = HashMap::new();
    let bytes_pulled = AtomicU64::new(0);
    loop {
        let Ok(msg) = qp.recv(ctx) else {
            return Err(PullAbort::new("wire").pulled(bytes_pulled.load(Ordering::Relaxed)));
        };
        match msg.tag {
            TAG_REQ => {
                let Ok(req) = msg.body.downcast::<ChunkReq>() else {
                    return Err(
                        PullAbort::new("protocol").pulled(bytes_pulled.load(Ordering::Relaxed))
                    );
                };
                let slices = pull_chunk(ctx, &qp, &cfg, &req, 0, &bytes_pulled)
                    .map_err(|a| a.pulled(bytes_pulled.load(Ordering::Relaxed)))?;
                ctx.instant_with("pool", "chunk_pull", || {
                    vec![
                        ("rank", req.rank.into()),
                        ("slot", req.slot.into()),
                        ("bytes", req.len.into()),
                    ]
                });
                match cfg.restart_mode {
                    RestartMode::FileBased => {
                        let path = created.entry(req.rank).or_insert_with(|| {
                            let p = format!("{file_prefix}.{}", req.rank);
                            store.create(ctx, &p);
                            p
                        });
                        for s in slices {
                            if let Err(e) = store.try_append(ctx, path, s, false) {
                                ctx.instant_with("pool", "stage_write_failed", || {
                                    vec![("rank", req.rank.into()), ("error", e.to_string().into())]
                                });
                                return Err(PullAbort::at("store", Some(req.rank), 0)
                                    .pulled(bytes_pulled.load(Ordering::Relaxed)));
                            }
                        }
                    }
                    RestartMode::MemoryBased => {
                        memory.entry(req.rank).or_default().extend(slices);
                    }
                }
                if qp
                    .send(ctx, TAG_ACK, Box::new(AckMsg { slot: req.slot }), 64)
                    .is_err()
                {
                    return Err(PullAbort::at("wire", Some(req.rank), 0)
                        .pulled(bytes_pulled.load(Ordering::Relaxed)));
                }
            }
            TAG_EOF => {
                let Ok(eof) = msg.body.downcast::<RankEof>() else {
                    return Err(
                        PullAbort::new("protocol").pulled(bytes_pulled.load(Ordering::Relaxed))
                    );
                };
                // A staged stream shorter than announced means a chunk
                // request was lost on the wire: give up gracefully and let
                // the Phase 2 deadline abort the cycle.
                let (path, slices) = match cfg.restart_mode {
                    RestartMode::FileBased => {
                        let Some(path) = created.get(&eof.rank).cloned() else {
                            return Err(PullAbort::at("incomplete", Some(eof.rank), 0)
                                .pulled(bytes_pulled.load(Ordering::Relaxed)));
                        };
                        if store.len(&path) != Some(eof.total_bytes) {
                            ctx.instant_with("pool", "stream_incomplete", || {
                                vec![
                                    ("rank", eof.rank.into()),
                                    ("expected", eof.total_bytes.into()),
                                ]
                            });
                            return Err(PullAbort::at("incomplete", Some(eof.rank), 0)
                                .pulled(bytes_pulled.load(Ordering::Relaxed)));
                        }
                        (path, None)
                    }
                    RestartMode::MemoryBased => {
                        let slices = memory.remove(&eof.rank).unwrap_or_default();
                        if slices.len() != eof.total_bytes {
                            ctx.instant_with("pool", "stream_incomplete", || {
                                vec![
                                    ("rank", eof.rank.into()),
                                    ("expected", eof.total_bytes.into()),
                                ]
                            });
                            return Err(PullAbort::at("incomplete", Some(eof.rank), 0)
                                .pulled(bytes_pulled.load(Ordering::Relaxed)));
                        }
                        (String::new(), Some(slices))
                    }
                };
                let image = AssembledImage {
                    path,
                    bytes: eof.total_bytes,
                    expected_checksum: eof.image_checksum,
                    slices,
                };
                if let Some(hook) = &hooks.on_rank_ready {
                    // jmlint: allow(hot_alloc) — rope-backed image: clone is a refcount bump
                    hook(ctx, eof.rank, image.clone());
                }
                images.insert(eof.rank, image);
            }
            TAG_DONE => {
                if qp.send(ctx, TAG_DONE_ACK, Box::new(()), 64).is_err() {
                    return Err(PullAbort::new("wire").pulled(bytes_pulled.load(Ordering::Relaxed)));
                }
                break;
            }
            other => {
                ctx.instant_with("pool", "unexpected_tag", || {
                    vec![("side", "target".into()), ("tag", other.into())]
                });
                return Err(PullAbort::new("protocol").pulled(bytes_pulled.load(Ordering::Relaxed)));
            }
        }
    }
    Ok(TargetResult {
        images,
        bytes_pulled: bytes_pulled.load(Ordering::Relaxed),
    })
}

// ---------------------------------------------------------------------------
// Multi-lane target engine
// ---------------------------------------------------------------------------

enum LaneWork {
    Pull(ChunkReq),
    Stop,
}

enum StageItem {
    Chunk {
        rank: u32,
        seq: u64,
        slot: u32,
        len: u64,
        slices: Vec<DataSlice>,
    },
    Eof(RankEof),
    Fail(PullAbort),
    Stop,
}

/// State shared between the manager, the lane workers and the stager.
struct LaneShared {
    images: Mutex<HashMap<u32, AssembledImage>>,
    bytes_pulled: AtomicU64,
    abort: Mutex<Option<PullAbort>>,
    /// Set when `abort` is populated; the manager's park point.
    abort_ev: Event,
    /// One permit per rank whose stream is fully staged and verified.
    ranks_staged: Semaphore,
}

impl LaneShared {
    fn fail(&self, abort: PullAbort) {
        let mut slot = self.abort.lock();
        if slot.is_none() {
            *slot = Some(abort);
        }
        drop(slot);
        self.abort_ev.set();
    }

    fn take_abort(&self) -> Option<PullAbort> {
        self.abort.lock().take()
    }
}

/// In-flight reassembly state for one rank's stream.
#[derive(Default)]
struct RankAssembly {
    next_seq: u64,
    pending: BTreeMap<u64, (u32, u64, Vec<DataSlice>)>,
    staged_bytes: u64,
    eof: Option<RankEof>,
    path: Option<String>,
    memory: Rope,
}

/// The striped target engine: the manager QP carries all control traffic
/// (REQ announcements in, ACKs out), `lanes` worker QPs pull chunks
/// concurrently, and a single stager re-assembles each rank's stream in
/// sequence order, appends it to the store, and fires per-rank readiness.
#[allow(clippy::too_many_arguments)]
fn target_multi_lane(
    ctx: &Ctx,
    hca: &Hca,
    cfg: PoolConfig,
    rendezvous: &PoolRendezvous,
    store: Arc<dyn CkptStore>,
    file_prefix: &str,
    hooks: TargetHooks,
) -> Result<TargetResult, PullAbort> {
    let Some(src_addr) = rendezvous.wait(ctx) else {
        return Err(PullAbort::new("rendezvous"));
    };
    let _staging = hca.register_mr(ctx, cfg.pool_bytes);
    let qp = hca.create_qp();
    if qp.connect(ctx, src_addr).is_err() {
        return Err(PullAbort::new("wire"));
    }
    if qp.send(ctx, TAG_HELLO, Box::new(qp.addr()), 64).is_err() {
        return Err(PullAbort::new("wire"));
    }

    let handle = ctx.handle();
    let shared = Arc::new(LaneShared {
        images: Mutex::new(HashMap::new()),
        bytes_pulled: AtomicU64::new(0),
        abort: Mutex::new(None),
        abort_ev: Event::new(&handle, "pool-lane-abort"),
        ranks_staged: Semaphore::new(&handle, 0),
    });
    let work_q: Queue<LaneWork> = Queue::new(&handle);
    let stage_q: Queue<StageItem> = Queue::new(&handle);

    let lanes = cfg.lane_count();
    for lane in 0..lanes {
        let work_q = work_q.clone();
        let stage_q = stage_q.clone();
        let shared = Arc::clone(&shared);
        let hca = hca.clone();
        let ph = ctx.spawn_daemon(&format!("pool-lane{lane}"), move |ctx| {
            // Each lane owns a QP: striping pulls over parallel QPs
            // overlaps wire time with the stager's I/O (the lanes share
            // the port's bandwidth, so this pipelines rather than
            // multiplies throughput).
            let lqp = hca.create_qp();
            if lqp.connect(ctx, src_addr).is_err() {
                shared.fail(PullAbort::at("wire", None, lane));
                return;
            }
            loop {
                match work_q.pop(ctx) {
                    LaneWork::Pull(req) => {
                        match pull_chunk(ctx, &lqp, &cfg, &req, lane, &shared.bytes_pulled) {
                            Ok(slices) => {
                                ctx.instant_with("pool", "chunk_pull", || {
                                    vec![
                                        ("rank", req.rank.into()),
                                        ("slot", req.slot.into()),
                                        ("lane", lane.into()),
                                        ("bytes", req.len.into()),
                                    ]
                                });
                                stage_q.push(StageItem::Chunk {
                                    rank: req.rank,
                                    seq: req.seq,
                                    slot: req.slot,
                                    len: req.len,
                                    slices,
                                });
                            }
                            Err(abort) => {
                                stage_q.push(StageItem::Fail(abort));
                                return;
                            }
                        }
                    }
                    LaneWork::Stop => return,
                }
            }
        });
        if let Some(track) = &hooks.on_spawn {
            track(ph);
        }
    }

    // The stager: re-assembles per-rank streams in seq order, stages them
    // on the store, acknowledges slots, and fires per-rank readiness.
    let stager = {
        let stage_q = stage_q.clone();
        let shared = Arc::clone(&shared);
        let store = Arc::clone(&store);
        let qp = qp.clone();
        let on_ready = hooks.on_rank_ready.clone();
        let prefix = file_prefix.to_string();
        ctx.spawn_daemon("pool-stager", move |ctx| {
            let mut asm: BTreeMap<u32, RankAssembly> = BTreeMap::new();
            loop {
                match stage_q.pop(ctx) {
                    StageItem::Chunk {
                        rank,
                        seq,
                        slot,
                        len,
                        slices,
                    } => {
                        let a = asm.entry(rank).or_default();
                        a.pending.insert(seq, (slot, len, slices));
                        // Drain the in-order prefix. Store appends cost
                        // simulated time, so re-check the map each round.
                        while let Some((slot, len, slices)) = asm.get_mut(&rank).and_then(|a| {
                            let next = a.next_seq;
                            a.pending.remove(&next)
                        }) {
                            match cfg.restart_mode {
                                RestartMode::FileBased => {
                                    let path = {
                                        let a = asm.entry(rank).or_default();
                                        a.path
                                            .get_or_insert_with(|| {
                                                let p = format!("{prefix}.{rank}");
                                                p
                                            })
                                            .clone()
                                    };
                                    if store.len(&path).is_none() {
                                        store.create(ctx, &path);
                                    }
                                    let mut failed = None;
                                    for s in slices {
                                        if let Err(e) = store.try_append(ctx, &path, s, false) {
                                            failed = Some(e);
                                            break;
                                        }
                                    }
                                    if let Some(e) = failed {
                                        ctx.instant_with("pool", "stage_write_failed", || {
                                            vec![
                                                ("rank", rank.into()),
                                                ("error", e.to_string().into()),
                                            ]
                                        });
                                        shared.fail(PullAbort::at("store", Some(rank), 0));
                                        return;
                                    }
                                }
                                RestartMode::MemoryBased => {
                                    asm.entry(rank).or_default().memory.extend(slices);
                                }
                            }
                            if qp
                                .send(ctx, TAG_ACK, Box::new(AckMsg { slot }), 64)
                                .is_err()
                            {
                                shared.fail(PullAbort::at("wire", Some(rank), 0));
                                return;
                            }
                            let a = asm.entry(rank).or_default();
                            a.staged_bytes += len;
                            a.next_seq += 1;
                        }
                        if let Err(abort) =
                            finalize_ready_rank(ctx, &cfg, &mut asm, rank, &shared, &on_ready)
                        {
                            shared.fail(abort);
                            return;
                        }
                    }
                    StageItem::Eof(eof) => {
                        let rank = eof.rank;
                        asm.entry(rank).or_default().eof = Some(eof);
                        if let Err(abort) =
                            finalize_ready_rank(ctx, &cfg, &mut asm, rank, &shared, &on_ready)
                        {
                            shared.fail(abort);
                            return;
                        }
                    }
                    StageItem::Fail(abort) => {
                        shared.fail(abort);
                        return;
                    }
                    StageItem::Stop => return,
                }
            }
        })
    };
    if let Some(track) = &hooks.on_spawn {
        track(stager);
    }

    let stop_workers = || {
        for _ in 0..lanes {
            work_q.push(LaneWork::Stop);
        }
        stage_q.push(StageItem::Stop);
    };
    let abort_return = |a: PullAbort| {
        stop_workers();
        Err(a.pulled(shared.bytes_pulled.load(Ordering::Relaxed)))
    };

    // Manager loop: forward REQs to the lanes, forward EOFs to the
    // stager, and on DONE wait until every announced rank is staged.
    let mut eofs_seen = 0u64;
    loop {
        if let Some(a) = shared.take_abort() {
            return abort_return(a);
        }
        let msg = match qp.try_recv() {
            Some(Ok(m)) => m,
            Some(Err(_)) => {
                return abort_return(PullAbort::new("wire"));
            }
            None => {
                shared.abort_ev.wait_timeout(ctx, LANE_POLL);
                continue;
            }
        };
        match msg.tag {
            TAG_REQ => {
                let Ok(req) = msg.body.downcast::<ChunkReq>() else {
                    return abort_return(PullAbort::new("protocol"));
                };
                work_q.push(LaneWork::Pull(*req));
            }
            TAG_EOF => {
                let Ok(eof) = msg.body.downcast::<RankEof>() else {
                    return abort_return(PullAbort::new("protocol"));
                };
                eofs_seen += 1;
                stage_q.push(StageItem::Eof(*eof));
            }
            TAG_DONE => {
                // The source sends DONE after the last EOF; chunks may
                // still be in flight on the lanes. Wait for every
                // announced rank to finish staging (or an abort).
                let mut staged = 0u64;
                while staged < eofs_seen {
                    if let Some(a) = shared.take_abort() {
                        return abort_return(a);
                    }
                    if shared.ranks_staged.try_acquire(1) {
                        staged += 1;
                        continue;
                    }
                    shared.abort_ev.wait_timeout(ctx, LANE_POLL);
                }
                if qp.send(ctx, TAG_DONE_ACK, Box::new(()), 64).is_err() {
                    return abort_return(PullAbort::new("wire"));
                }
                break;
            }
            other => {
                ctx.instant_with("pool", "unexpected_tag", || {
                    vec![("side", "target".into()), ("tag", other.into())]
                });
                return abort_return(PullAbort::new("protocol"));
            }
        }
    }
    stop_workers();
    let images = std::mem::take(&mut *shared.images.lock());
    Ok(TargetResult {
        images,
        bytes_pulled: shared.bytes_pulled.load(Ordering::Relaxed),
    })
}

/// If `rank` has both its EOF and all announced bytes staged, publish its
/// [`AssembledImage`], fire the readiness hook, and release a staged
/// permit. A byte count past the announced total is a protocol error.
fn finalize_ready_rank(
    ctx: &Ctx,
    cfg: &PoolConfig,
    asm: &mut BTreeMap<u32, RankAssembly>,
    rank: u32,
    shared: &LaneShared,
    on_ready: &Option<RankReadyHook>,
) -> Result<(), PullAbort> {
    let Some(a) = asm.get_mut(&rank) else {
        return Ok(());
    };
    let Some(eof) = &a.eof else { return Ok(()) };
    if a.staged_bytes < eof.total_bytes {
        return Ok(());
    }
    if a.staged_bytes > eof.total_bytes {
        ctx.instant_with("pool", "stream_incomplete", || {
            vec![
                ("rank", rank.into()),
                ("expected", eof.total_bytes.into()),
                ("staged", a.staged_bytes.into()),
            ]
        });
        return Err(PullAbort::at("incomplete", Some(rank), 0));
    }
    let a = asm.remove(&rank).unwrap_or_default();
    let eof = match a.eof {
        Some(e) => e,
        None => return Ok(()),
    };
    let image = AssembledImage {
        path: a.path.unwrap_or_default(),
        bytes: eof.total_bytes,
        expected_checksum: eof.image_checksum,
        slices: match cfg.restart_mode {
            RestartMode::FileBased => None,
            RestartMode::MemoryBased => Some(a.memory),
        },
    };
    if let Some(hook) = on_ready {
        // jmlint: allow(hot_alloc) — rope-backed image: clone is a refcount bump
        hook(ctx, rank, image.clone());
    }
    shared.images.lock().insert(rank, image);
    shared.ranks_staged.release(1);
    Ok(())
}
