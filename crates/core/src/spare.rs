//! The cluster-wide hot-spare pool.
//!
//! One pool per [`Cluster`](crate::cluster::Cluster), shared by every job
//! launched on it. A migration attempt *leases* a node (removing it from
//! the free list under one lock acquisition, so two jobs can never claim
//! the same spare), then settles the lease exactly one way:
//!
//! * [`SparePool::consume`] — the attempt succeeded; the node now hosts
//!   ranks and leaves the pool for good. The vacated source node is *not*
//!   returned here: reclamation is a fleet-level decision (the node is
//!   usually sick — that is why the job left it), made by an orchestrator
//!   via [`SparePool::reclaim`] once the node is repaired.
//! * [`SparePool::release_front`] — the attempt aborted but the spare
//!   survived; it goes back to the *front* of the free list so the retry
//!   reuses it (preserving the single-job retry order the tier-1 tests
//!   pin down).
//! * [`SparePool::discard`] — the spare died mid-attempt; it never
//!   returns.
//!
//! Leases are keyed by job id, and every settle call asserts the caller
//! actually holds the lease — the runtime-side half of the spare-pool
//! invariant `protoverify::fleet` proves over the abstract model: no node
//! leased to two jobs at once, and every settled attempt accounts for
//! exactly one node.

use ibfabric::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lifetime counters of one pool. Monotonic; snapshot via
/// [`SparePool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparePoolStats {
    /// Leases granted.
    pub leases: u64,
    /// Lease requests denied because the free list was empty.
    pub denials: u64,
    /// Leases settled by a successful migration (node left the pool).
    pub consumed: u64,
    /// Leases settled by an abort with the spare surviving.
    pub returned: u64,
    /// Leases settled by the spare dying mid-attempt.
    pub discarded: u64,
    /// Nodes reclaimed into the free list by an orchestrator.
    pub reclaimed: u64,
}

struct PoolState {
    /// Free nodes; the front is the next lease (FIFO in node-id order at
    /// build time, matching the pre-pool `Vec<NodeId>` semantics).
    free: Vec<NodeId>,
    /// Outstanding leases: node → job id holding it.
    leased: BTreeMap<NodeId, u64>,
    stats: SparePoolStats,
}

/// The shared spare pool. Cloning shares the pool.
#[derive(Clone)]
pub struct SparePool {
    inner: Arc<Mutex<PoolState>>,
}

impl SparePool {
    /// A pool whose free list starts as `nodes`, in order.
    pub fn new(nodes: Vec<NodeId>) -> SparePool {
        SparePool {
            inner: Arc::new(Mutex::new(PoolState {
                free: nodes,
                leased: BTreeMap::new(),
                stats: SparePoolStats::default(),
            })),
        }
    }

    /// Number of free (leasable) nodes right now.
    pub fn available(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Snapshot of the free list, front (next lease) first.
    pub fn free_nodes(&self) -> Vec<NodeId> {
        self.inner.lock().free.clone()
    }

    /// Outstanding leases as `(node, job)` pairs in node-id order.
    pub fn leases(&self) -> Vec<(NodeId, u64)> {
        self.inner
            .lock()
            .leased
            .iter()
            .map(|(n, j)| (*n, *j))
            .collect()
    }

    /// The job holding a lease on `node`, if any.
    pub fn leased_to(&self, node: NodeId) -> Option<u64> {
        self.inner.lock().leased.get(&node).copied()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SparePoolStats {
        self.inner.lock().stats
    }

    /// Lease the front free node to `job`. `None` (recorded as a denial)
    /// when the free list is empty — the caller degrades or queues.
    pub fn lease(&self, job: u64) -> Option<NodeId> {
        let mut st = self.inner.lock();
        if st.free.is_empty() {
            st.stats.denials += 1;
            return None;
        }
        let node = st.free.remove(0);
        let prev = st.leased.insert(node, job);
        assert!(
            prev.is_none(),
            "spare pool corrupt: {node} was free while leased to job {prev:?}"
        );
        st.stats.leases += 1;
        Some(node)
    }

    /// Settle a lease: the migration succeeded, `node` now hosts ranks
    /// and permanently leaves the pool.
    pub fn consume(&self, node: NodeId, job: u64) {
        let mut st = self.inner.lock();
        st.settle(node, job, "consume");
        st.stats.consumed += 1;
    }

    /// Settle a lease: the attempt aborted but `node` survived; it goes
    /// back to the front of the free list for the retry.
    pub fn release_front(&self, node: NodeId, job: u64) {
        let mut st = self.inner.lock();
        st.settle(node, job, "release");
        st.free.insert(0, node);
        st.stats.returned += 1;
    }

    /// Settle a lease: `node` died mid-attempt and never returns.
    pub fn discard(&self, node: NodeId, job: u64) {
        let mut st = self.inner.lock();
        st.settle(node, job, "discard");
        st.stats.discarded += 1;
    }

    /// Return a repaired (or vacated-and-verified) node to the back of
    /// the free list. Orchestrator-level: the pool itself never reclaims.
    pub fn reclaim(&self, node: NodeId) {
        let mut st = self.inner.lock();
        assert!(
            !st.free.contains(&node),
            "spare pool corrupt: reclaiming {node} which is already free"
        );
        assert!(
            !st.leased.contains_key(&node),
            "spare pool corrupt: reclaiming {node} which is leased"
        );
        st.free.push(node);
        st.stats.reclaimed += 1;
    }
}

impl PoolState {
    fn settle(&mut self, node: NodeId, job: u64, op: &str) {
        match self.leased.remove(&node) {
            Some(holder) if holder == job => {}
            Some(holder) => panic!(
                "spare pool corrupt: job {job} tried to {op} {node}, \
                 which job {holder} holds"
            ),
            None => panic!("spare pool corrupt: job {job} tried to {op} unleased {node}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|i| NodeId(*i)).collect()
    }

    #[test]
    fn lease_is_fifo_and_release_goes_to_front() {
        let pool = SparePool::new(nodes(&[9, 10, 11]));
        assert_eq!(pool.lease(1), Some(NodeId(9)));
        assert_eq!(pool.lease(2), Some(NodeId(10)));
        assert_eq!(pool.leased_to(NodeId(9)), Some(1));
        pool.release_front(NodeId(9), 1);
        // The survivor is reused before the untouched tail.
        assert_eq!(pool.lease(1), Some(NodeId(9)));
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn exhaustion_denies_and_counts() {
        let pool = SparePool::new(nodes(&[5]));
        assert_eq!(pool.lease(1), Some(NodeId(5)));
        assert_eq!(pool.lease(2), None);
        assert_eq!(pool.stats().denials, 1);
        pool.consume(NodeId(5), 1);
        assert_eq!(pool.lease(2), None);
        pool.reclaim(NodeId(5));
        assert_eq!(pool.lease(2), Some(NodeId(5)));
    }

    #[test]
    #[should_panic(expected = "which job 1 holds")]
    fn cross_job_settle_is_trapped() {
        let pool = SparePool::new(nodes(&[5]));
        pool.lease(1);
        pool.consume(NodeId(5), 2);
    }

    #[test]
    #[should_panic(expected = "unleased")]
    fn double_release_is_trapped() {
        let pool = SparePool::new(nodes(&[5]));
        pool.lease(1);
        pool.release_front(NodeId(5), 1);
        pool.release_front(NodeId(5), 1);
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn reclaim_of_free_node_is_trapped() {
        let pool = SparePool::new(nodes(&[5]));
        pool.reclaim(NodeId(5));
    }
}
