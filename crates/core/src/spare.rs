//! The cluster-wide hot-spare pool.
//!
//! One pool per [`Cluster`](crate::cluster::Cluster), shared by every job
//! launched on it. A migration attempt *leases* a node (removing it from
//! the free list under one lock acquisition, so two jobs can never claim
//! the same spare), then settles the lease exactly one way:
//!
//! * [`SparePool::consume`] — the attempt succeeded; the node now hosts
//!   ranks and leaves the pool for good. The vacated source node is *not*
//!   returned here: reclamation is a fleet-level decision (the node is
//!   usually sick — that is why the job left it), made by an orchestrator
//!   via [`SparePool::reclaim`] once the node is repaired.
//! * [`SparePool::release_front`] — the attempt aborted but the spare
//!   survived; it goes back to the *front* of the free list so the retry
//!   reuses it (preserving the single-job retry order the tier-1 tests
//!   pin down).
//! * [`SparePool::discard`] — the spare died mid-attempt; it never
//!   returns.
//!
//! Leases are keyed by job id, and every settle call asserts the caller
//! actually holds the lease — the runtime-side half of the spare-pool
//! invariant `protoverify::fleet` proves over the abstract model: no node
//! leased to two jobs at once, and every settled attempt accounts for
//! exactly one node.
//!
//! ## Fencing epochs
//!
//! A crash-recoverable coordinator adds a second failure mode: a *zombie*.
//! The standby that takes over cannot prove the old Job Manager is dead —
//! only that it stopped journalling — so every pool operation carries the
//! caller's *fencing epoch* and each job has a monotonic fence floor.
//! [`SparePool::fence`] raises the floor and adopts the job's outstanding
//! leases into the new epoch; any later settle presented under a lower
//! epoch is **soft-rejected** (counted in
//! [`SparePoolStats::fenced_rejects`], lease untouched) rather than
//! trapped, because a late write from a deposed coordinator is an expected
//! race, not corruption. Epoch 0 is the legacy single-coordinator path:
//! no fence is ever raised, and the panicking settle semantics are
//! unchanged.

use ibfabric::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lifetime counters of one pool. Monotonic; snapshot via
/// [`SparePool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparePoolStats {
    /// Leases granted.
    pub leases: u64,
    /// Lease requests denied because the free list was empty.
    pub denials: u64,
    /// Leases settled by a successful migration (node left the pool).
    pub consumed: u64,
    /// Leases settled by an abort with the spare surviving.
    pub returned: u64,
    /// Leases settled by the spare dying mid-attempt.
    pub discarded: u64,
    /// Nodes reclaimed into the free list by an orchestrator.
    pub reclaimed: u64,
    /// Pool operations rejected because the caller presented a fencing
    /// epoch below the job's fence floor (a deposed coordinator's late
    /// write).
    pub fenced_rejects: u64,
}

#[derive(Debug, Clone, Copy)]
struct Lease {
    job: u64,
    epoch: u64,
}

struct PoolState {
    /// Free nodes; the front is the next lease (FIFO in node-id order at
    /// build time, matching the pre-pool `Vec<NodeId>` semantics).
    free: Vec<NodeId>,
    /// Outstanding leases: node → holder (job id + fencing epoch).
    leased: BTreeMap<NodeId, Lease>,
    /// Per-job fence floor: settles under a lower epoch are rejected.
    fences: BTreeMap<u64, u64>,
    stats: SparePoolStats,
}

/// The shared spare pool. Cloning shares the pool.
#[derive(Clone)]
pub struct SparePool {
    inner: Arc<Mutex<PoolState>>,
}

impl SparePool {
    /// A pool whose free list starts as `nodes`, in order.
    pub fn new(nodes: Vec<NodeId>) -> SparePool {
        SparePool {
            inner: Arc::new(Mutex::new(PoolState {
                free: nodes,
                leased: BTreeMap::new(),
                fences: BTreeMap::new(),
                stats: SparePoolStats::default(),
            })),
        }
    }

    /// Number of free (leasable) nodes right now.
    pub fn available(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Snapshot of the free list, front (next lease) first.
    pub fn free_nodes(&self) -> Vec<NodeId> {
        self.inner.lock().free.clone()
    }

    /// Outstanding leases as `(node, job)` pairs in node-id order.
    pub fn leases(&self) -> Vec<(NodeId, u64)> {
        self.inner
            .lock()
            .leased
            .iter()
            .map(|(n, l)| (*n, l.job))
            .collect()
    }

    /// The job holding a lease on `node`, if any.
    pub fn leased_to(&self, node: NodeId) -> Option<u64> {
        self.inner.lock().leased.get(&node).map(|l| l.job)
    }

    /// The fencing epoch a lease on `node` was granted (or adopted) under.
    pub fn lease_epoch(&self, node: NodeId) -> Option<u64> {
        self.inner.lock().leased.get(&node).map(|l| l.epoch)
    }

    /// The fence floor currently in force for `job` (0 if never fenced).
    pub fn fence_of(&self, job: u64) -> u64 {
        self.inner.lock().fences.get(&job).copied().unwrap_or(0)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SparePoolStats {
        self.inner.lock().stats
    }

    /// Lease the front free node to `job`. `None` (recorded as a denial)
    /// when the free list is empty — the caller degrades or queues.
    /// Legacy epoch-0 path; see [`SparePool::lease_at`].
    pub fn lease(&self, job: u64) -> Option<NodeId> {
        self.lease_at(job, 0)
    }

    /// Lease the front free node to `job`, stamping the lease with the
    /// caller's fencing `epoch`. A deposed coordinator (epoch below the
    /// job's fence floor) is refused without touching the free list.
    pub fn lease_at(&self, job: u64, epoch: u64) -> Option<NodeId> {
        let mut st = self.inner.lock();
        if st.fenced(job, epoch) {
            return None;
        }
        if st.free.is_empty() {
            st.stats.denials += 1;
            return None;
        }
        let node = st.free.remove(0);
        let prev = st.leased.insert(node, Lease { job, epoch });
        assert!(
            prev.is_none(),
            "spare pool corrupt: {node} was free while leased to job {:?}",
            prev.map(|l| l.job)
        );
        st.stats.leases += 1;
        Some(node)
    }

    /// Raise `job`'s fence floor to `epoch` (monotonic) and adopt the
    /// job's outstanding leases into the new epoch — the takeover step
    /// that makes the old coordinator's late settles rejectable while the
    /// new one inherits the in-flight lease. Returns the number of leases
    /// adopted.
    pub fn fence(&self, job: u64, epoch: u64) -> usize {
        let mut st = self.inner.lock();
        let floor = st.fences.entry(job).or_insert(0);
        *floor = (*floor).max(epoch);
        let mut adopted = 0;
        for lease in st.leased.values_mut().filter(|l| l.job == job) {
            lease.epoch = epoch;
            adopted += 1;
        }
        adopted
    }

    /// Settle a lease: the migration succeeded, `node` now hosts ranks
    /// and permanently leaves the pool. Legacy epoch-0 path.
    pub fn consume(&self, node: NodeId, job: u64) {
        self.consume_at(node, job, 0);
    }

    /// [`SparePool::consume`] under a fencing epoch. Returns `false`
    /// (lease untouched, rejection counted) when `epoch` is below the
    /// job's fence floor.
    pub fn consume_at(&self, node: NodeId, job: u64, epoch: u64) -> bool {
        let mut st = self.inner.lock();
        if !st.settle(node, job, epoch, "consume") {
            return false;
        }
        st.stats.consumed += 1;
        true
    }

    /// Settle a lease: the attempt aborted but `node` survived; it goes
    /// back to the front of the free list for the retry. Legacy epoch-0
    /// path.
    pub fn release_front(&self, node: NodeId, job: u64) {
        self.release_front_at(node, job, 0);
    }

    /// [`SparePool::release_front`] under a fencing epoch. Returns
    /// `false` (lease untouched, rejection counted) when `epoch` is below
    /// the job's fence floor.
    pub fn release_front_at(&self, node: NodeId, job: u64, epoch: u64) -> bool {
        let mut st = self.inner.lock();
        if !st.settle(node, job, epoch, "release") {
            return false;
        }
        st.free.insert(0, node);
        st.stats.returned += 1;
        true
    }

    /// Settle a lease: `node` died mid-attempt and never returns. Legacy
    /// epoch-0 path.
    pub fn discard(&self, node: NodeId, job: u64) {
        self.discard_at(node, job, 0);
    }

    /// [`SparePool::discard`] under a fencing epoch. Returns `false`
    /// (lease untouched, rejection counted) when `epoch` is below the
    /// job's fence floor.
    pub fn discard_at(&self, node: NodeId, job: u64, epoch: u64) -> bool {
        let mut st = self.inner.lock();
        if !st.settle(node, job, epoch, "discard") {
            return false;
        }
        st.stats.discarded += 1;
        true
    }

    /// Return a repaired (or vacated-and-verified) node to the back of
    /// the free list. Orchestrator-level: the pool itself never reclaims.
    pub fn reclaim(&self, node: NodeId) {
        let mut st = self.inner.lock();
        assert!(
            !st.free.contains(&node),
            "spare pool corrupt: reclaiming {node} which is already free"
        );
        assert!(
            !st.leased.contains_key(&node),
            "spare pool corrupt: reclaiming {node} which is leased"
        );
        st.free.push(node);
        st.stats.reclaimed += 1;
    }
}

impl PoolState {
    /// Is `epoch` below `job`'s fence floor? Counts the rejection.
    fn fenced(&mut self, job: u64, epoch: u64) -> bool {
        let floor = self.fences.get(&job).copied().unwrap_or(0);
        if epoch < floor {
            self.stats.fenced_rejects += 1;
            return true;
        }
        false
    }

    /// Remove `node`'s lease on behalf of `(job, epoch)`. A stale epoch
    /// is an expected zombie write: soft-reject, leave the lease for the
    /// live coordinator. Wrong job or no lease is genuine corruption and
    /// still traps.
    fn settle(&mut self, node: NodeId, job: u64, epoch: u64, op: &str) -> bool {
        if self.fenced(job, epoch) {
            return false;
        }
        match self.leased.remove(&node) {
            Some(holder) if holder.job == job => true,
            Some(holder) => panic!(
                "spare pool corrupt: job {job} tried to {op} {node}, \
                 which job {} holds",
                holder.job
            ),
            None => panic!("spare pool corrupt: job {job} tried to {op} unleased {node}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|i| NodeId(*i)).collect()
    }

    #[test]
    fn lease_is_fifo_and_release_goes_to_front() {
        let pool = SparePool::new(nodes(&[9, 10, 11]));
        assert_eq!(pool.lease(1), Some(NodeId(9)));
        assert_eq!(pool.lease(2), Some(NodeId(10)));
        assert_eq!(pool.leased_to(NodeId(9)), Some(1));
        pool.release_front(NodeId(9), 1);
        // The survivor is reused before the untouched tail.
        assert_eq!(pool.lease(1), Some(NodeId(9)));
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn exhaustion_denies_and_counts() {
        let pool = SparePool::new(nodes(&[5]));
        assert_eq!(pool.lease(1), Some(NodeId(5)));
        assert_eq!(pool.lease(2), None);
        assert_eq!(pool.stats().denials, 1);
        pool.consume(NodeId(5), 1);
        assert_eq!(pool.lease(2), None);
        pool.reclaim(NodeId(5));
        assert_eq!(pool.lease(2), Some(NodeId(5)));
    }

    #[test]
    #[should_panic(expected = "which job 1 holds")]
    fn cross_job_settle_is_trapped() {
        let pool = SparePool::new(nodes(&[5]));
        pool.lease(1);
        pool.consume(NodeId(5), 2);
    }

    #[test]
    #[should_panic(expected = "unleased")]
    fn double_release_is_trapped() {
        let pool = SparePool::new(nodes(&[5]));
        pool.lease(1);
        pool.release_front(NodeId(5), 1);
        pool.release_front(NodeId(5), 1);
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn reclaim_of_free_node_is_trapped() {
        let pool = SparePool::new(nodes(&[5]));
        pool.reclaim(NodeId(5));
    }

    #[test]
    fn fence_rejects_stale_settles_and_adopts_lease() {
        let pool = SparePool::new(nodes(&[5, 6]));
        // Epoch-1 coordinator leases, then a standby fences at epoch 2.
        assert_eq!(pool.lease_at(1, 1), Some(NodeId(5)));
        assert_eq!(pool.lease_epoch(NodeId(5)), Some(1));
        assert_eq!(pool.fence(1, 2), 1);
        assert_eq!(pool.fence_of(1), 2);
        assert_eq!(pool.lease_epoch(NodeId(5)), Some(2));
        // The zombie's late writes bounce off without touching the lease.
        assert!(!pool.consume_at(NodeId(5), 1, 1));
        assert!(!pool.release_front_at(NodeId(5), 1, 1));
        assert_eq!(pool.lease_at(1, 1), None);
        assert_eq!(pool.stats().fenced_rejects, 3);
        assert_eq!(pool.leased_to(NodeId(5)), Some(1));
        // The new epoch settles normally; accounting stays balanced.
        assert!(pool.consume_at(NodeId(5), 1, 2));
        let st = pool.stats();
        assert_eq!(st.leases, st.consumed + st.returned + st.discarded);
        // Other jobs are unaffected by job 1's fence.
        assert_eq!(pool.lease(2), Some(NodeId(6)));
        pool.release_front(NodeId(6), 2);
    }

    #[test]
    fn fence_is_monotonic() {
        let pool = SparePool::new(nodes(&[5]));
        pool.fence(1, 3);
        pool.fence(1, 2); // lowering attempt is ignored
        assert_eq!(pool.fence_of(1), 3);
        assert_eq!(pool.lease_at(1, 2), None);
        assert_eq!(pool.lease_at(1, 3), Some(NodeId(5)));
        assert!(pool.discard_at(NodeId(5), 1, 4));
    }
}
