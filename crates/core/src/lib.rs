//! # jobmig-core — the RDMA-based job migration framework
//!
//! The paper's contribution, implemented end to end on the simulated
//! cluster substrates of this workspace:
//!
//! * [`cluster`] — the testbed: compute nodes (each with an HCA, a GigE
//!   port, a local ext3 disk, a memory bus for BLCR page walks), hot-spare
//!   nodes, a login node, an optional PVFS deployment, and the FTB agent
//!   tree.
//! * [`bufpool`] — the RDMA-based process migration engine of §III-B:
//!   checkpoint writes from all processes on the source node are
//!   aggregated into a user-level buffer pool (default 10 MB pool / 1 MB
//!   chunks); the target buffer manager pulls filled chunks with RDMA Read
//!   and reassembles per-process checkpoint images.
//! * [`runtime`] — the Job Manager / Node Launch Agent hierarchy and the
//!   four-phase migration protocol of §III-A (Job Stall → Job Migration →
//!   Restart → Resume), driven by `FTB_MIGRATE` / `FTB_MIGRATE_PIIC` /
//!   `FTB_RESTART` events over the FTB backplane.
//! * [`cr_baseline`] — MVAPICH2's coordinated Checkpoint/Restart framework
//!   (checkpoints to local ext3 or PVFS), the comparison baseline of §IV-C.
//! * [`calib`] — every timing constant, with its provenance.
//! * [`report`] — phase-decomposed reports matching the paper's figures.
//!
//! ## Quick start
//!
//! ```
//! use jobmig_core::prelude::*;
//!
//! let mut sim = simkit::Simulation::new(7);
//! let cluster = Cluster::build(&sim.handle(), ClusterSpec::small_test());
//! let wl = npbsim::Workload::new(npbsim::NpbApp::Lu, npbsim::NpbClass::A, 4);
//! let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2 /*ppn*/));
//! rt.control().migrate_after(simkit::dur::secs(2), MigrationRequest::new());
//! // drive until the application completes (the cluster hosts perpetual
//! // daemons — FTB heartbeats — so run to an event, not to quiescence)
//! sim.run_until_set(rt.completion(), simkit::SimTime::MAX).unwrap();
//! let report = rt.migration_reports().pop().expect("one migration");
//! assert!(report.total() < simkit::dur::secs(30));
//! ```

pub mod bufpool;
pub mod calib;
pub mod cluster;
pub mod cr_baseline;
pub mod msgs;
pub mod report;
pub mod runtime;
pub mod spare;
pub mod wal;

/// Common imports for examples and tests.
pub mod prelude {
    pub use crate::bufpool::{
        PoolConfig, RestartMode, TransferSession, TransferSessionBuilder, Transport,
    };
    pub use crate::cluster::{Cluster, ClusterSpec};
    pub use crate::cr_baseline::{CrRunner, CrStore};
    pub use crate::report::{
        CrReport, CrStoreKind, MigrationOutcome, MigrationReport, OutcomeCounts,
    };
    pub use crate::runtime::{
        AppBody, CheckpointRequest, Control, JobRuntime, JobSpec, MigrationRequest,
        MigrationTuning, Placement,
    };
    pub use crate::spare::{SparePool, SparePoolStats};
    pub use crate::wal::{
        decode_log, encode_log, CycleJournal, InFlight, WalEntry, WalRecord, WalVerifyError,
    };
    pub use faultplane::{
        FaultPlan, FaultPlane, FaultSpec, MigPhase, NetSel, StoreFault, WalPoint,
    };
}
