//! Phase-decomposed measurement reports matching the paper's figures.

use ibfabric::NodeId;
use std::fmt;
use std::time::Duration;

/// How a migration trigger ultimately ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationOutcome {
    /// Completed on the first attempt.
    Migrated,
    /// Completed, but only after at least one aborted attempt (phase
    /// timeout or spare death) was retried on another spare.
    MigratedAfterRetry,
    /// Could not migrate (no spare left, or every attempt failed); the
    /// framework degraded to a coordinated checkpoint to storage so the
    /// job remains recoverable.
    FellBackToCr,
    /// No recovery path remained. Defensive terminal state: the current
    /// degradation ladder always ends in a local-disk checkpoint, so this
    /// is never expected in practice.
    Lost,
    /// The Job Manager died mid-cycle and the standby coordinator carried
    /// the in-flight cycle to completion from the WAL journal.
    ResumedByStandby,
    /// The Job Manager died mid-cycle before the commit point; the
    /// standby coordinator rolled the cycle back to the source.
    RolledBackByStandby,
}

impl MigrationOutcome {
    /// Stable lower-snake name (used in traces).
    pub fn name(&self) -> &'static str {
        match self {
            MigrationOutcome::Migrated => "migrated",
            MigrationOutcome::MigratedAfterRetry => "migrated_after_retry",
            MigrationOutcome::FellBackToCr => "fell_back_to_cr",
            MigrationOutcome::Lost => "lost",
            MigrationOutcome::ResumedByStandby => "resumed_by_standby",
            MigrationOutcome::RolledBackByStandby => "rolled_back_by_standby",
        }
    }
}

impl fmt::Display for MigrationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-outcome migration counters (the typed replacement for the
/// removed single failed-trigger count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// First-attempt successes.
    pub migrated: u64,
    /// Successes that needed at least one retry.
    pub migrated_after_retry: u64,
    /// Triggers degraded to the CR baseline.
    pub fell_back_to_cr: u64,
    /// Triggers with no recovery path (defensive; expected 0).
    pub lost: u64,
    /// Cycles completed by the standby after a coordinator crash.
    pub resumed_by_standby: u64,
    /// Cycles rolled back by the standby after a coordinator crash.
    pub rolled_back_by_standby: u64,
}

impl OutcomeCounts {
    /// Total triggers accounted for.
    pub fn total(&self) -> u64 {
        self.migrated
            + self.migrated_after_retry
            + self.fell_back_to_cr
            + self.lost
            + self.resumed_by_standby
            + self.rolled_back_by_standby
    }

    /// Bump the counter for `outcome`.
    pub(crate) fn record(&mut self, outcome: MigrationOutcome) {
        match outcome {
            MigrationOutcome::Migrated => self.migrated += 1,
            MigrationOutcome::MigratedAfterRetry => self.migrated_after_retry += 1,
            MigrationOutcome::FellBackToCr => self.fell_back_to_cr += 1,
            MigrationOutcome::Lost => self.lost += 1,
            MigrationOutcome::ResumedByStandby => self.resumed_by_standby += 1,
            MigrationOutcome::RolledBackByStandby => self.rolled_back_by_standby += 1,
        }
    }
}

/// One completed migration cycle, decomposed as in Figures 4/6/7.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Cycle sequence number.
    pub cycle: u64,
    /// Health-deteriorating node the processes left.
    pub source: NodeId,
    /// Spare node they moved to.
    pub target: NodeId,
    /// Phase 0 — iterative pre-copy wall time (live migration only; zero
    /// for stop-and-copy). The job keeps running for all of it, so it is
    /// deliberately *excluded* from [`MigrationReport::total`]: pre-copy
    /// trades overlapped transfer time for barrier-held downtime.
    pub precopy: Duration,
    /// Completed pre-copy rounds (0 for stop-and-copy cycles).
    pub precopy_rounds: u32,
    /// Phase 1 — Job Stall: coordination, drain, endpoint teardown.
    pub stall: Duration,
    /// Phase 2 — Job Migration: aggregated checkpoint + RDMA transfer.
    pub migrate: Duration,
    /// Phase 3 — Restart on the spare node (file-based BLCR restart).
    pub restart: Duration,
    /// Phase 4 — Resume: migration barrier, endpoint rebuild, reopen.
    pub resume: Duration,
    /// Processes moved.
    pub ranks_moved: usize,
    /// Checkpoint stream bytes moved over RDMA (Table I).
    pub bytes_moved: u64,
    /// How the trigger ended (phase durations describe the successful
    /// attempt, or are zero for a CR fallback).
    pub outcome: MigrationOutcome,
    /// Attempts consumed, counting the successful (or final) one.
    pub attempts: u32,
}

impl MigrationReport {
    /// Barrier-held duration: the four phases the job spends suspended.
    /// Pre-copy rounds run while the application computes and are not
    /// included — compare [`MigrationReport::wall`].
    pub fn total(&self) -> Duration {
        self.stall + self.migrate + self.restart + self.resume
    }

    /// Barrier-held duration under its live-migration name: what the
    /// application actually loses to the cycle.
    pub fn downtime(&self) -> Duration {
        self.total()
    }

    /// Trigger-to-resume wall time including the overlapped pre-copy
    /// rounds.
    pub fn wall(&self) -> Duration {
        self.precopy + self.total()
    }
}

impl fmt::Display for MigrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.precopy_rounds > 0 {
            write!(
                f,
                "precopy {:>8.1?} ({} rounds, overlapped)  ",
                self.precopy, self.precopy_rounds
            )?;
        }
        write!(
            f,
            "migration #{} {}→{}: stall {:>8.1?}  migrate {:>8.1?}  restart {:>8.1?}  resume {:>8.1?}  total {:>8.1?}  ({} ranks, {:.1} MB, {} in {} attempt{})",
            self.cycle,
            self.source,
            self.target,
            self.stall,
            self.migrate,
            self.restart,
            self.resume,
            self.total(),
            self.ranks_moved,
            self.bytes_moved as f64 / 1e6,
            self.outcome,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
        )
    }
}

/// Where a coordinated checkpoint was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrStoreKind {
    /// Each node's local ext3 filesystem.
    LocalExt3,
    /// The shared PVFS deployment.
    Pvfs,
}

impl fmt::Display for CrStoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrStoreKind::LocalExt3 => write!(f, "ext3"),
            CrStoreKind::Pvfs => write!(f, "PVFS"),
        }
    }
}

/// One coordinated Checkpoint/Restart cycle (the Figure 7 baseline).
#[derive(Debug, Clone)]
pub struct CrReport {
    /// Checkpoint cycle number.
    pub cycle: u64,
    /// Storage target.
    pub store: CrStoreKind,
    /// Job Stall (same machinery as migration Phase 1).
    pub stall: Duration,
    /// Checkpoint: every process dumps its image to storage.
    pub checkpoint: Duration,
    /// Resume: endpoint rebuild and reopen.
    pub resume: Duration,
    /// Restart from the files (populated by a later restart run; `None`
    /// until then — the paper notes this phase is optional for CR).
    pub restart: Option<Duration>,
    /// Bytes dumped (Table I).
    pub bytes_written: u64,
}

impl CrReport {
    /// Checkpoint-only duration (stall + dump + resume).
    pub fn checkpoint_cycle(&self) -> Duration {
        self.stall + self.checkpoint + self.resume
    }

    /// Full failure-handling cycle, if a restart was measured.
    pub fn total_with_restart(&self) -> Option<Duration> {
        self.restart.map(|r| self.checkpoint_cycle() + r)
    }
}

impl fmt::Display for CrReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CR({}) #{}: stall {:>8.1?}  checkpoint {:>8.1?}  resume {:>8.1?}  restart {}  ({:.1} MB)",
            self.store,
            self.cycle,
            self.stall,
            self.checkpoint,
            self.resume,
            match self.restart {
                Some(r) => format!("{r:>8.1?}"),
                None => "   (not run)".to_string(),
            },
            self.bytes_written as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = MigrationReport {
            cycle: 1,
            source: NodeId(1),
            target: NodeId(9),
            precopy: Duration::from_millis(2400),
            precopy_rounds: 3,
            stall: Duration::from_millis(30),
            migrate: Duration::from_millis(450),
            restart: Duration::from_millis(4500),
            resume: Duration::from_millis(1100),
            ranks_moved: 8,
            bytes_moved: 170_400_000,
            outcome: MigrationOutcome::Migrated,
            attempts: 1,
        };
        assert_eq!(m.total(), Duration::from_millis(6080));
        assert_eq!(m.downtime(), m.total(), "precopy never counts as downtime");
        assert_eq!(m.wall(), Duration::from_millis(8480));
        let c = CrReport {
            cycle: 1,
            store: CrStoreKind::LocalExt3,
            stall: Duration::from_millis(30),
            checkpoint: Duration::from_millis(6400),
            resume: Duration::from_millis(1100),
            restart: Some(Duration::from_millis(5300)),
            bytes_written: 1_363_200_000,
        };
        assert_eq!(c.checkpoint_cycle(), Duration::from_millis(7530));
        assert_eq!(c.total_with_restart(), Some(Duration::from_millis(12830)));
        // Display renders without panicking
        let _ = format!("{m}\n{c}");
    }

    #[test]
    fn outcome_counts_accumulate() {
        let mut o = OutcomeCounts::default();
        o.record(MigrationOutcome::Migrated);
        o.record(MigrationOutcome::MigratedAfterRetry);
        o.record(MigrationOutcome::MigratedAfterRetry);
        o.record(MigrationOutcome::FellBackToCr);
        assert_eq!(o.migrated, 1);
        assert_eq!(o.migrated_after_retry, 2);
        assert_eq!(o.fell_back_to_cr, 1);
        assert_eq!(o.lost, 0);
        assert_eq!(o.total(), 4);
        assert_eq!(
            MigrationOutcome::FellBackToCr.to_string(),
            "fell_back_to_cr"
        );
    }
}
