//! The coordinated Checkpoint/Restart baseline (paper §IV-C).
//!
//! MVAPICH2's classic CR framework: on `FTB_CHECKPOINT` every rank
//! suspends/drains (same Phase 1 machinery as migration), dumps its whole
//! image through BLCR to storage — each node's local ext3 or the shared
//! PVFS deployment — and resumes. Restart (the part migration renders
//! optional) re-loads every image from storage after a simulated failure,
//! rolling the job back to the checkpoint's consistent cut.

use crate::calib;
use crate::msgs::*;
use crate::report::{CrReport, CrStoreKind};
use crate::runtime::{unwrap_meta, CkptCycle, JobRuntime};
use blcrsim::StoreSource;
use ftb::{FtbClient, FtbEvent, Severity};
use parking_lot::Mutex;
use simkit::{Countdown, Ctx, Queue};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Re-export: which storage a checkpoint targets.
pub type CrStore = CrStoreKind;

/// Convenience runner for scripted experiments (examples/benches).
pub struct CrRunner;

/// JM-side orchestration of one coordinated checkpoint.
pub(crate) fn run_checkpoint(
    ctx: &Ctx,
    rt: &JobRuntime,
    ftb: &FtbClient,
    sub: &Queue<FtbEvent>,
    store: CrStoreKind,
) {
    let inner = &rt.inner;
    if store == CrStoreKind::Pvfs && inner.cluster.pvfs().is_none() {
        panic!("checkpoint to PVFS requested but the cluster has no PVFS deployment");
    }
    let id = rt.next_cycle_id();
    let handle = inner.cluster.handle();
    let n = inner.spec.nranks as u64;
    let cycle = Arc::new(CkptCycle {
        id,
        store,
        stall_done: Countdown::new(handle, "ckpt-stall", n),
        cut: Mutex::new(None),
        ckpt_done: Countdown::new(handle, "ckpt-done", n),
        resumed: Countdown::new(handle, "ckpt-resumed", n),
        bytes: AtomicU64::new(0),
        checksums: Mutex::new(HashMap::new()),
    });
    inner.ckpt_cycles.lock().insert(id, cycle.clone());

    let phase_args = move || -> simkit::Args { vec![("cycle", id.into())] };
    let t0 = ctx.now();
    let ph = ctx.span_with("phase", "cr_stall", phase_args);
    ftb.publish(
        ctx,
        FtbEvent::with_payload(
            MPI_SPACE,
            FTB_CHECKPOINT,
            Severity::Warning,
            inner.cluster.login(),
            CheckpointMsg { cycle: id, store },
        ),
    );
    // Phase: Job Stall.
    super_wait_acks(ctx, sub, id, inner.spec.nranks);
    cycle.stall_done.wait(ctx);
    ph.end();
    let t1 = ctx.now();
    *cycle.cut.lock() = Some(t1);
    // Phase: Checkpoint.
    let ph = ctx.span_with("phase", "cr_checkpoint", phase_args);
    cycle.ckpt_done.wait(ctx);
    ph.end();
    let t2 = ctx.now();
    // Phase: Resume.
    let ph = ctx.span_with("phase", "cr_resume", phase_args);
    cycle.resumed.wait(ctx);
    ph.end();
    let t3 = ctx.now();

    inner.cr_reports.lock().push(CrReport {
        cycle: id,
        store,
        stall: t1 - t0,
        checkpoint: t2 - t1,
        resume: t3 - t2,
        restart: None,
        bytes_written: cycle.bytes.load(Ordering::Relaxed),
    });
}

fn super_wait_acks(ctx: &Ctx, sub: &Queue<FtbEvent>, cycle: u64, n: u32) {
    let mut seen = std::collections::HashSet::new();
    while seen.len() < n as usize {
        let ev = sub.pop(ctx);
        if ev.name == FTB_SUSPEND_ACK {
            if let Some(a) = ev.payload_as::<SuspendAckMsg>() {
                if a.cycle == cycle {
                    seen.insert(a.rank);
                }
            }
        }
    }
}

/// JM-side restart from checkpoint `cycle_id`: simulates the failure path
/// (all processes die), then reloads every rank from its checkpoint file
/// and resumes the job from the rolled-back state. Records the measured
/// restart duration into the matching [`CrReport`].
pub(crate) fn run_restart(ctx: &Ctx, rt: &JobRuntime, cycle_id: u64) {
    let inner = &rt.inner;
    let Some(cycle) = rt.ckpt_cycle(cycle_id) else {
        ctx.instant_with("log", "cr_restart_unknown_cycle", || {
            vec![("cycle", cycle_id.into())]
        });
        return;
    };
    let Some(cut) = *cycle.cut.lock() else {
        // The checkpoint cycle never reached its consistent cut; there is
        // nothing to roll back to.
        ctx.instant_with("log", "cr_restart_no_cut", || {
            vec![("cycle", cycle_id.into())]
        });
        return;
    };
    let nranks = inner.spec.nranks;

    // The failure: every process dies; connection state evaporates.
    for rank in 0..nranks {
        rt.kill_app(rank);
        let cr = inner.job.cr(rank);
        cr.close_gate();
        cr.teardown(ctx);
    }
    // A restarted job starts cold: no page cache survives resubmission.
    inner.cluster.drop_all_caches();
    // Roll the matching layer back to the checkpoint's consistent cut.
    inner.job.purge_rollback_all(cut);

    let t0 = ctx.now();
    let ph = ctx.span_with("phase", "cr_restart", move || {
        vec![("cycle", cycle_id.into())]
    });
    let done = Countdown::new(&ctx.handle(), "cr-restart-workers", nranks as u64);
    for rank in 0..nranks {
        let rt2 = rt.clone();
        let cycle2 = cycle.clone();
        let done2 = done.clone();
        ctx.spawn_daemon(&format!("cr-restart-r{rank}"), move |ctx| {
            let inner = &rt2.inner;
            let bad = |why: String| {
                ctx.instant_with("log", "cr_restart_rank_failed", || {
                    vec![("rank", rank.into()), ("error", why.clone().into())]
                });
            };
            let node = inner.job.rank_node(rank);
            let store = rt2.store_for(cycle2.store, node);
            let mut src = StoreSource::new(store, format!("ckpt.{}.{}", cycle2.id, rank));
            let image =
                match inner
                    .cluster
                    .node(node)
                    .blcr
                    .restart(ctx, &mut src, &calib::restart_costs())
                {
                    Ok(img) => img,
                    Err(e) => {
                        bad(format!("checkpoint image parse: {e}"));
                        done2.arrive();
                        return;
                    }
                };
            let expected = cycle2.checksums.lock().get(&rank).copied();
            if expected != Some(image.checksum()) {
                bad(format!(
                    "checkpoint integrity violated: got {:#x}, want {expected:?}",
                    image.checksum()
                ));
                done2.arrive();
                return;
            }
            let meta = match unwrap_meta(&image) {
                Ok(m) => m,
                Err(e) => {
                    bad(e.to_string());
                    done2.arrive();
                    return;
                }
            };
            inner.job.cr(rank).restore_meta(meta);
            rt2.spawn_app(rank);
            done2.arrive();
        });
    }
    done.wait(ctx);
    ph.end();
    let restart = ctx.now() - t0;

    // Bring communication back (endpoint rebuild is accounted in the
    // checkpoint cycle's Resume phase; avoid double counting here).
    for rank in 0..nranks {
        let cr = inner.job.cr(rank);
        cr.rebuild_endpoints(ctx, false);
        cr.reopen();
    }

    let mut reports = inner.cr_reports.lock();
    if let Some(rep) = reports.iter_mut().find(|r| r.cycle == cycle_id) {
        rep.restart = Some(restart);
    }
}
