//! The write-ahead cycle journal: crash-recoverable coordination.
//!
//! The Job Manager orchestrates the whole stall → migrate → restart →
//! resume cycle, which makes it the one component whose loss the PR 2
//! fault plane could not model: a coordinator that dies mid-cycle leaves
//! a half-restarted job, a dangling spare lease, and nobody to roll
//! anything back. This module closes that hole with the classic recipe —
//! a **write-ahead log**: every state-changing step of a migration cycle
//! appends a typed, checksummed [`WalRecord`] *before* the side effect it
//! announces executes.
//!
//! The journal is held on the launch node (the paper's Job Manager and
//! our standby both run there), so a coordinator crash never loses it.
//! Three things read it:
//!
//! * [`FaultPlane::take_coordinator_crash`] is polled after **every**
//!   append — the [`faultplane::WalPoint`] fault alphabet can kill the
//!   coordinator between any two records, in the exact window where the
//!   record is durable but its side effect has not happened;
//! * the standby coordinator's takeover path calls [`CycleJournal::in_flight`]
//!   to decide *resume-from-point* (cycle passed its [`WalRecord::CommitPoint`],
//!   or the data path is still progressing) versus *rollback*;
//! * telemetry: every append emits a `wal`-category instant, replay emits
//!   `wal_replay`, so an exported trace shows journal and takeover
//!   activity on the same timeline as the phases.
//!
//! The commit point is the record appended once every rank has restarted
//! on the target (`RestartDone` in protocol terms): before it, the source
//! images are still authoritative and rollback is always safe; after it,
//! the target is authoritative and the only correct recovery is to finish
//! the resume.

use faultplane::{FaultPlane, MigPhase};
use ibfabric::NodeId;
use parking_lot::Mutex;
use simkit::SimHandle;
use std::fmt;
use std::sync::Arc;

/// One typed journal record: a state-changing step of a migration cycle,
/// written *before* the step executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A migration attempt is starting for `cycle` (`attempt` is 1-based).
    CycleStart {
        /// Cycle sequence number.
        cycle: u64,
        /// Node the ranks are leaving.
        source: NodeId,
        /// 1-based attempt index.
        attempt: u32,
    },
    /// A spare lease is about to be acquired (or was just granted —
    /// the record carries the granted node).
    LeaseAcquire {
        /// Cycle sequence number.
        cycle: u64,
        /// The leased spare.
        node: NodeId,
        /// Fencing epoch the lease was granted under.
        epoch: u64,
    },
    /// The cycle is entering `phase` (the `FTB` publish / barrier wait
    /// the phase opens with has not happened yet).
    PhaseEnter {
        /// Cycle sequence number.
        cycle: u64,
        /// The phase being entered.
        phase: MigPhase,
    },
    /// One live pre-copy round finished: `bytes` of (full or delta) image
    /// data landed on the target while the job kept running. Appended
    /// *after* the round completes — recovery can count finished rounds
    /// but must treat a round with no record as never having happened.
    PrecopyRound {
        /// Cycle sequence number.
        cycle: u64,
        /// Round number (0 = full-image round).
        round: u32,
        /// Stream bytes the round moved.
        bytes: u64,
    },
    /// Rank `rank`'s image finished streaming and verified on the target.
    RankImageReady {
        /// Cycle sequence number.
        cycle: u64,
        /// Global rank id.
        rank: u32,
    },
    /// The spawn tree is about to be rewired source → target and
    /// `FTB_RESTART` published.
    NlaRewire {
        /// Cycle sequence number.
        cycle: u64,
        /// The restart target.
        target: NodeId,
    },
    /// Rank `rank` restarted from its image on the target.
    RankRestarted {
        /// Cycle sequence number.
        cycle: u64,
        /// Global rank id.
        rank: u32,
    },
    /// **The commit point**: every rank has restarted on the target; the
    /// target is now authoritative and recovery must roll *forward*.
    CommitPoint {
        /// Cycle sequence number.
        cycle: u64,
    },
    /// The lease is about to be settled as consumed (successful cycle).
    LeaseCommit {
        /// Cycle sequence number.
        cycle: u64,
        /// The consumed spare.
        node: NodeId,
        /// Fencing epoch presented to the pool.
        epoch: u64,
    },
    /// `abort_cycle` is about to roll the cycle back to the source.
    Rollback {
        /// Cycle sequence number.
        cycle: u64,
    },
    /// The cycle reached a terminal outcome; nothing is in flight.
    CycleEnd {
        /// Cycle sequence number.
        cycle: u64,
    },
}

/// Stable lower-snake phase name matching the cycle table's
/// `CyclePhase::name()` strings — the trace bus and the conformance
/// observer speak these.
fn phase_name(phase: MigPhase) -> &'static str {
    match phase {
        MigPhase::Precopy => "precopy",
        MigPhase::Stall => "stall",
        MigPhase::Migrate => "migrate",
        MigPhase::Restart => "restart",
        MigPhase::Resume => "resume",
    }
}

impl WalRecord {
    /// Stable lower-snake record name (used in traces and tests).
    pub fn name(&self) -> &'static str {
        match self {
            WalRecord::CycleStart { .. } => "cycle_start",
            WalRecord::LeaseAcquire { .. } => "lease_acquire",
            WalRecord::PhaseEnter { .. } => "phase_enter",
            WalRecord::PrecopyRound { .. } => "precopy_round",
            WalRecord::RankImageReady { .. } => "rank_image_ready",
            WalRecord::NlaRewire { .. } => "nla_rewire",
            WalRecord::RankRestarted { .. } => "rank_restarted",
            WalRecord::CommitPoint { .. } => "commit_point",
            WalRecord::LeaseCommit { .. } => "lease_commit",
            WalRecord::Rollback { .. } => "rollback",
            WalRecord::CycleEnd { .. } => "cycle_end",
        }
    }

    /// The cycle this record belongs to.
    pub fn cycle(&self) -> u64 {
        match *self {
            WalRecord::CycleStart { cycle, .. }
            | WalRecord::LeaseAcquire { cycle, .. }
            | WalRecord::PhaseEnter { cycle, .. }
            | WalRecord::PrecopyRound { cycle, .. }
            | WalRecord::RankImageReady { cycle, .. }
            | WalRecord::NlaRewire { cycle, .. }
            | WalRecord::RankRestarted { cycle, .. }
            | WalRecord::CommitPoint { cycle }
            | WalRecord::LeaseCommit { cycle, .. }
            | WalRecord::Rollback { cycle }
            | WalRecord::CycleEnd { cycle } => cycle,
        }
    }

    /// Canonical byte encoding the checksum covers: a tag byte followed
    /// by every field little-endian. Order is part of the format (§14).
    fn encode(&self, buf: &mut Vec<u8>) {
        let put_u64 = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        match *self {
            WalRecord::CycleStart {
                cycle,
                source,
                attempt,
            } => {
                buf.push(1);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(source.0));
                put_u64(buf, u64::from(attempt));
            }
            WalRecord::LeaseAcquire { cycle, node, epoch } => {
                buf.push(2);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(node.0));
                put_u64(buf, epoch);
            }
            WalRecord::PhaseEnter { cycle, phase } => {
                buf.push(3);
                put_u64(buf, cycle);
                buf.push(match phase {
                    MigPhase::Stall => 1,
                    MigPhase::Migrate => 2,
                    MigPhase::Restart => 3,
                    MigPhase::Resume => 4,
                    MigPhase::Precopy => 5,
                });
            }
            WalRecord::PrecopyRound {
                cycle,
                round,
                bytes,
            } => {
                buf.push(11);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(round));
                put_u64(buf, bytes);
            }
            WalRecord::RankImageReady { cycle, rank } => {
                buf.push(4);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(rank));
            }
            WalRecord::NlaRewire { cycle, target } => {
                buf.push(5);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(target.0));
            }
            WalRecord::RankRestarted { cycle, rank } => {
                buf.push(6);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(rank));
            }
            WalRecord::CommitPoint { cycle } => {
                buf.push(7);
                put_u64(buf, cycle);
            }
            WalRecord::LeaseCommit { cycle, node, epoch } => {
                buf.push(8);
                put_u64(buf, cycle);
                put_u64(buf, u64::from(node.0));
                put_u64(buf, epoch);
            }
            WalRecord::Rollback { cycle } => {
                buf.push(9);
                put_u64(buf, cycle);
            }
            WalRecord::CycleEnd { cycle } => {
                buf.push(10);
                put_u64(buf, cycle);
            }
        }
    }

    /// Decode one canonical encoding produced by [`WalRecord::encode`].
    /// `None` means the bytes are not a well-formed record (bad tag,
    /// short fields, trailing garbage).
    fn decode(buf: &[u8]) -> Option<WalRecord> {
        fn u64_at(buf: &[u8], at: usize) -> Option<u64> {
            Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
        }
        let tag = *buf.first()?;
        let rec = match tag {
            1 => WalRecord::CycleStart {
                cycle: u64_at(buf, 1)?,
                source: NodeId(u32::try_from(u64_at(buf, 9)?).ok()?),
                attempt: u32::try_from(u64_at(buf, 17)?).ok()?,
            },
            2 => WalRecord::LeaseAcquire {
                cycle: u64_at(buf, 1)?,
                node: NodeId(u32::try_from(u64_at(buf, 9)?).ok()?),
                epoch: u64_at(buf, 17)?,
            },
            3 => WalRecord::PhaseEnter {
                cycle: u64_at(buf, 1)?,
                phase: match buf.get(9)? {
                    1 => MigPhase::Stall,
                    2 => MigPhase::Migrate,
                    3 => MigPhase::Restart,
                    4 => MigPhase::Resume,
                    5 => MigPhase::Precopy,
                    _ => return None,
                },
            },
            4 => WalRecord::RankImageReady {
                cycle: u64_at(buf, 1)?,
                rank: u32::try_from(u64_at(buf, 9)?).ok()?,
            },
            5 => WalRecord::NlaRewire {
                cycle: u64_at(buf, 1)?,
                target: NodeId(u32::try_from(u64_at(buf, 9)?).ok()?),
            },
            6 => WalRecord::RankRestarted {
                cycle: u64_at(buf, 1)?,
                rank: u32::try_from(u64_at(buf, 9)?).ok()?,
            },
            7 => WalRecord::CommitPoint {
                cycle: u64_at(buf, 1)?,
            },
            8 => WalRecord::LeaseCommit {
                cycle: u64_at(buf, 1)?,
                node: NodeId(u32::try_from(u64_at(buf, 9)?).ok()?),
                epoch: u64_at(buf, 17)?,
            },
            9 => WalRecord::Rollback {
                cycle: u64_at(buf, 1)?,
            },
            10 => WalRecord::CycleEnd {
                cycle: u64_at(buf, 1)?,
            },
            11 => WalRecord::PrecopyRound {
                cycle: u64_at(buf, 1)?,
                round: u32::try_from(u64_at(buf, 9)?).ok()?,
                bytes: u64_at(buf, 17)?,
            },
            _ => return None,
        };
        // The encoding is canonical: trailing bytes mean the frame's
        // length field lied, which a checksum over the true payload
        // would not catch.
        let mut canon = Vec::with_capacity(buf.len());
        rec.encode(&mut canon);
        (canon.len() == buf.len()).then_some(rec)
    }
}

impl fmt::Display for WalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (cycle {})", self.name(), self.cycle())
    }
}

/// One framed journal entry: sequence number, record, FNV-1a checksum
/// over `seq ‖ encode(record)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// 1-based append sequence over the job's whole journal.
    pub seq: u64,
    /// The typed record.
    pub record: WalRecord,
    /// FNV-1a 64 over the canonical encoding.
    pub checksum: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frame(seq: u64, record: &WalRecord) -> WalEntry {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(&seq.to_le_bytes());
    record.encode(&mut buf);
    WalEntry {
        seq,
        record: record.clone(),
        checksum: fnv1a(&buf),
    }
}

impl WalEntry {
    /// Re-derive the checksum and compare — `false` means the entry was
    /// corrupted after append.
    pub fn verify(&self) -> bool {
        frame(self.seq, &self.record).checksum == self.checksum
    }

    /// Serialize the entry to its on-disk frame: `seq` (u64 LE),
    /// `checksum` (u64 LE), payload length (u32 LE), payload
    /// ([`WalRecord::encode`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        self.record.encode(&mut payload);
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// A journal that fails verification. Every way a serialized or
/// in-memory log can be bad maps to one typed variant — corruption is a
/// *condition* recovery code branches on, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalVerifyError {
    /// An entry's checksum does not match its content.
    Corrupt {
        /// Sequence number of the corrupt entry.
        seq: u64,
    },
    /// An entry's sequence number breaks the dense 1-based chain.
    OutOfOrder {
        /// Sequence number found.
        seq: u64,
        /// Sequence number the chain requires at that position.
        expected: u64,
    },
    /// A serialized log ends mid-frame: the final record was cut short
    /// (torn write).
    TruncatedTail {
        /// Byte offset where the truncated frame starts.
        offset: usize,
    },
    /// A frame's payload is not a well-formed record encoding.
    BadRecord {
        /// Sequence number of the malformed entry.
        seq: u64,
    },
}

impl fmt::Display for WalVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WalVerifyError::Corrupt { seq } => write!(f, "checksum mismatch at seq {seq}"),
            WalVerifyError::OutOfOrder { seq, expected } => {
                write!(f, "out-of-order seq {seq} (chain requires {expected})")
            }
            WalVerifyError::TruncatedTail { offset } => {
                write!(f, "truncated tail record at byte offset {offset}")
            }
            WalVerifyError::BadRecord { seq } => write!(f, "malformed record at seq {seq}"),
        }
    }
}

impl std::error::Error for WalVerifyError {}

/// Verify an entry chain: dense 1-based sequence numbers and intact
/// checksums. Shared by [`CycleJournal::verify`] (in-memory) and
/// [`decode_log`] (serialized).
fn verify_chain(entries: &[WalEntry]) -> Result<(), WalVerifyError> {
    for (i, e) in entries.iter().enumerate() {
        let expected = i as u64 + 1;
        if e.seq != expected {
            return Err(WalVerifyError::OutOfOrder {
                seq: e.seq,
                expected,
            });
        }
        if !e.verify() {
            return Err(WalVerifyError::Corrupt { seq: e.seq });
        }
    }
    Ok(())
}

/// Serialize a snapshot of journal entries to one contiguous byte log
/// (concatenated [`WalEntry::to_bytes`] frames).
pub fn encode_log(entries: &[WalEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        out.extend_from_slice(&e.to_bytes());
    }
    out
}

/// Decode and fully verify a serialized log: frame structure, record
/// encoding, checksum chain, and sequence order. Every failure mode is a
/// typed [`WalVerifyError`]; malformed input never panics.
pub fn decode_log(bytes: &[u8]) -> Result<Vec<WalEntry>, WalVerifyError> {
    let mut entries = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let frame_start = at;
        let truncated = WalVerifyError::TruncatedTail {
            offset: frame_start,
        };
        let header = bytes.get(at..at + 20).ok_or(truncated)?;
        let seq = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        at += 20;
        let payload = bytes.get(at..at + len).ok_or(truncated)?;
        at += len;
        let record = WalRecord::decode(payload).ok_or(WalVerifyError::BadRecord { seq })?;
        entries.push(WalEntry {
            seq,
            record,
            checksum,
        });
    }
    verify_chain(&entries)?;
    Ok(entries)
}

/// What the journal tail says about the newest cycle, computed by
/// [`CycleJournal::in_flight`] during takeover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// The in-flight cycle id.
    pub cycle: u64,
    /// Attempt index from the `CycleStart` record.
    pub attempt: u32,
    /// Source node from the `CycleStart` record.
    pub source: NodeId,
    /// Outstanding lease (node, epoch). Stays populated across a
    /// `LeaseCommit` record: the record lands *before* the pool settle,
    /// so a crash at that boundary leaves the settle pending and recovery
    /// must re-execute it (`CycleEnd` is what proves the cycle fully
    /// settled).
    pub lease: Option<(NodeId, u64)>,
    /// Whether a `LeaseCommit` record was appended (the settle may or may
    /// not have executed — see [`InFlight::lease`]).
    pub lease_committed: bool,
    /// Restart target from the `NlaRewire` record, if the cycle got
    /// that far.
    pub target: Option<NodeId>,
    /// Deepest phase entered.
    pub phase: Option<MigPhase>,
    /// Whether the spawn tree was already rewired source → target.
    pub rewired: bool,
    /// Whether the cycle passed its commit point (recovery must roll
    /// forward).
    pub committed: bool,
    /// Whether a rollback had already started (recovery finishes it).
    pub rolling_back: bool,
    /// Ranks whose images verified on the target.
    pub images_ready: Vec<u32>,
    /// Ranks already restarted on the target.
    pub restarted: Vec<u32>,
    /// Completed live pre-copy rounds (0 for stop-and-copy cycles). A
    /// crash inside [`MigPhase::Precopy`] is recovered by abandoning the
    /// pre-copy — the job never stopped running on the source, so
    /// rollback costs nothing but the streamed bytes.
    pub precopy_rounds: u32,
}

struct JournalState {
    entries: Vec<WalEntry>,
    /// Phase context for crash targeting: the phase of the last
    /// `PhaseEnter` (records before the first phase count as Stall).
    phase: MigPhase,
}

struct JournalInner {
    handle: SimHandle,
    state: Mutex<JournalState>,
    plane: Mutex<Option<FaultPlane>>,
    /// Invoked when a scheduled coordinator crash fires; installed by the
    /// runtime to kill the Job Manager proc and wake the standby.
    crash_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

/// The shared write-ahead cycle journal of one job. Cloning shares the
/// journal (Job Manager, NLA-side appenders, and the standby all hold
/// the same one).
#[derive(Clone)]
pub struct CycleJournal {
    inner: Arc<JournalInner>,
}

impl CycleJournal {
    /// An empty journal bound to the simulation's trace bus.
    pub fn new(handle: &SimHandle) -> CycleJournal {
        CycleJournal {
            inner: Arc::new(JournalInner {
                handle: handle.clone(),
                state: Mutex::new(JournalState {
                    entries: Vec::new(),
                    phase: MigPhase::Stall,
                }),
                plane: Mutex::new(None),
                crash_hook: Mutex::new(None),
            }),
        }
    }

    /// Arm the journal against a fault plane: every append will poll
    /// [`FaultPlane::take_coordinator_crash`].
    pub fn install_fault_plane(&self, plane: FaultPlane) {
        *self.inner.plane.lock() = Some(plane);
    }

    /// Install the crash hook a scheduled coordinator crash executes
    /// (kill the Job Manager, signal the standby).
    pub fn set_crash_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.inner.crash_hook.lock() = Some(Box::new(hook));
    }

    /// Append `record` ahead of its side effect. Returns the assigned
    /// sequence number.
    ///
    /// If the fault plane scheduled a coordinator crash at this boundary,
    /// the crash hook runs *here* — after the record is durable, before
    /// the caller can execute the side effect. A Job Manager calling this
    /// from its own proc must follow the append with `ctx.check_killed()`
    /// so the self-inflicted kill unwinds immediately.
    pub fn append(&self, record: WalRecord) -> u64 {
        let (seq, phase, phase_first) = {
            let mut st = self.inner.state.lock();
            let seq = st.entries.len() as u64 + 1;
            let phase_first = matches!(record, WalRecord::PhaseEnter { .. });
            if let WalRecord::PhaseEnter { phase, .. } = record {
                st.phase = phase;
            }
            let phase = st.phase;
            st.entries.push(frame(seq, &record));
            (seq, phase, phase_first)
        };
        self.inner.handle.instant_with("wal", "wal_append", || {
            let mut args = vec![
                ("seq", seq.into()),
                ("record", record.name().into()),
                ("cycle", record.cycle().into()),
            ];
            // The conformance observer's WAL automaton orders the
            // phase_enter records; give it the phase by name.
            if let WalRecord::PhaseEnter { phase, .. } = record {
                args.push(("phase", phase_name(phase).into()));
            }
            args
        });
        let crash = self
            .inner
            .plane
            .lock()
            .as_ref()
            .map(|p| p.take_coordinator_crash(seq, phase, phase_first))
            .unwrap_or(false);
        if crash {
            let hook = self.inner.crash_hook.lock();
            if let Some(hook) = hook.as_ref() {
                hook();
            }
        }
        seq
    }

    /// Number of entries appended so far.
    pub fn len(&self) -> usize {
        self.inner.state.lock().entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every entry, in append order.
    pub fn entries(&self) -> Vec<WalEntry> {
        self.inner.state.lock().entries.clone()
    }

    /// Verify the whole entry chain: dense 1-based sequence numbers and
    /// intact checksums. The first defect comes back as a typed
    /// [`WalVerifyError`].
    pub fn verify(&self) -> Result<(), WalVerifyError> {
        verify_chain(&self.inner.state.lock().entries)
    }

    /// Serialize a snapshot of the journal (see [`encode_log`] /
    /// [`decode_log`] for the byte format and the verifying reader).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        encode_log(&self.inner.state.lock().entries)
    }

    /// Replay the tail since the last `CycleEnd` and report the in-flight
    /// cycle, if any — the standby's first step during takeover. Emits a
    /// `wal_replay` instant covering the records replayed.
    pub fn in_flight(&self) -> Option<InFlight> {
        let st = self.inner.state.lock();
        let tail_start = st
            .entries
            .iter()
            .rposition(|e| matches!(e.record, WalRecord::CycleEnd { .. }))
            .map(|p| p + 1)
            .unwrap_or(0);
        let tail = &st.entries[tail_start..];
        let start = tail.iter().find_map(|e| match e.record {
            WalRecord::CycleStart {
                cycle,
                source,
                attempt,
            } => Some((cycle, source, attempt)),
            _ => None,
        })?;
        let (cycle, source, attempt) = start;
        let mut fl = InFlight {
            cycle,
            attempt,
            source,
            lease: None,
            lease_committed: false,
            target: None,
            phase: None,
            rewired: false,
            committed: false,
            rolling_back: false,
            images_ready: Vec::new(),
            restarted: Vec::new(),
            precopy_rounds: 0,
        };
        let mut replayed = 0u64;
        for e in tail.iter().filter(|e| e.record.cycle() == cycle) {
            replayed += 1;
            match e.record {
                WalRecord::LeaseAcquire { node, epoch, .. } => fl.lease = Some((node, epoch)),
                WalRecord::PhaseEnter { phase, .. } => fl.phase = Some(phase),
                WalRecord::PrecopyRound { round, .. } => fl.precopy_rounds = round + 1,
                WalRecord::RankImageReady { rank, .. } => fl.images_ready.push(rank),
                WalRecord::NlaRewire { target, .. } => {
                    fl.target = Some(target);
                    fl.rewired = true;
                }
                WalRecord::RankRestarted { rank, .. } => fl.restarted.push(rank),
                WalRecord::CommitPoint { .. } => fl.committed = true,
                WalRecord::LeaseCommit { node, epoch, .. } => {
                    fl.lease = Some((node, epoch));
                    fl.lease_committed = true;
                }
                WalRecord::Rollback { .. } => fl.rolling_back = true,
                WalRecord::CycleStart { .. } | WalRecord::CycleEnd { .. } => {}
            }
        }
        self.inner.handle.instant_with("wal", "wal_replay", || {
            vec![("cycle", cycle.into()), ("records", replayed.into())]
        });
        Some(fl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultplane::{FaultPlan, FaultSpec, WalPoint};
    use simkit::Simulation;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn journal() -> CycleJournal {
        let sim = Simulation::new(1);
        CycleJournal::new(&sim.handle())
    }

    #[test]
    fn checksums_verify_and_catch_tampering() {
        let j = journal();
        j.append(WalRecord::CycleStart {
            cycle: 1,
            source: NodeId(3),
            attempt: 1,
        });
        j.append(WalRecord::PhaseEnter {
            cycle: 1,
            phase: MigPhase::Stall,
        });
        assert_eq!(j.verify(), Ok(()));
        let mut entries = j.entries();
        // Same seq + different record must not collide.
        assert_ne!(entries[0].checksum, entries[1].checksum);
        entries[1].record = WalRecord::PhaseEnter {
            cycle: 1,
            phase: MigPhase::Migrate,
        };
        assert!(!entries[1].verify());
    }

    #[test]
    fn tail_analysis_tracks_commit_point_and_lease() {
        let j = journal();
        // A completed earlier cycle is skipped by the tail scan.
        j.append(WalRecord::CycleStart {
            cycle: 1,
            source: NodeId(2),
            attempt: 1,
        });
        j.append(WalRecord::CycleEnd { cycle: 1 });
        assert_eq!(j.in_flight(), None);
        // A fresh cycle: pre-commit, lease outstanding.
        j.append(WalRecord::CycleStart {
            cycle: 2,
            source: NodeId(2),
            attempt: 1,
        });
        j.append(WalRecord::LeaseAcquire {
            cycle: 2,
            node: NodeId(9),
            epoch: 1,
        });
        j.append(WalRecord::PhaseEnter {
            cycle: 2,
            phase: MigPhase::Migrate,
        });
        j.append(WalRecord::RankImageReady { cycle: 2, rank: 0 });
        let fl = j.in_flight().expect("cycle 2 in flight");
        assert_eq!(fl.cycle, 2);
        assert_eq!(fl.lease, Some((NodeId(9), 1)));
        assert!(!fl.committed && !fl.rewired);
        assert_eq!(fl.images_ready, vec![0]);
        // Past the commit point the analysis flips to roll-forward.
        j.append(WalRecord::NlaRewire {
            cycle: 2,
            target: NodeId(9),
        });
        j.append(WalRecord::RankRestarted { cycle: 2, rank: 0 });
        j.append(WalRecord::CommitPoint { cycle: 2 });
        let fl = j.in_flight().expect("still in flight");
        assert!(fl.committed && fl.rewired);
        assert_eq!(fl.target, Some(NodeId(9)));
        assert_eq!(fl.restarted, vec![0]);
        j.append(WalRecord::LeaseCommit {
            cycle: 2,
            node: NodeId(9),
            epoch: 1,
        });
        // A LeaseCommit record alone does not prove the settle executed:
        // the lease stays visible (flagged committed) until CycleEnd.
        let fl = j.in_flight().expect("settle may still be pending");
        assert!(fl.lease_committed);
        assert_eq!(fl.lease, Some((NodeId(9), 1)));
        j.append(WalRecord::CycleEnd { cycle: 2 });
        assert_eq!(j.in_flight(), None);
        assert_eq!(j.verify(), Ok(()));
    }

    #[test]
    fn scheduled_crash_fires_hook_at_exact_boundary() {
        let sim = Simulation::new(1);
        let j = CycleJournal::new(&sim.handle());
        let plan = FaultPlan::new(7).with(FaultSpec::CoordinatorCrash {
            at: WalPoint::Seq(2),
        });
        j.install_fault_plane(faultplane::FaultPlane::new(&sim.handle(), &plan));
        let fired = Arc::new(AtomicU32::new(0));
        let f = fired.clone();
        j.set_crash_hook(move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        j.append(WalRecord::CycleStart {
            cycle: 1,
            source: NodeId(2),
            attempt: 1,
        });
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        j.append(WalRecord::PhaseEnter {
            cycle: 1,
            phase: MigPhase::Stall,
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        j.append(WalRecord::PhaseEnter {
            cycle: 1,
            phase: MigPhase::Migrate,
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1, "consumed once");
    }

    /// A journal with a few records of every shape, for the
    /// serialization edge-case tests.
    fn populated() -> CycleJournal {
        let j = journal();
        j.append(WalRecord::CycleStart {
            cycle: 1,
            source: NodeId(2),
            attempt: 1,
        });
        j.append(WalRecord::LeaseAcquire {
            cycle: 1,
            node: NodeId(9),
            epoch: 0,
        });
        j.append(WalRecord::PhaseEnter {
            cycle: 1,
            phase: MigPhase::Migrate,
        });
        j.append(WalRecord::RankImageReady { cycle: 1, rank: 3 });
        j.append(WalRecord::CycleEnd { cycle: 1 });
        j
    }

    #[test]
    fn serialized_log_round_trips() {
        let j = populated();
        let bytes = j.snapshot_bytes();
        let back = decode_log(&bytes).expect("intact log decodes");
        assert_eq!(back, j.entries());
    }

    #[test]
    fn truncated_tail_record_is_a_typed_error() {
        let j = populated();
        let bytes = j.snapshot_bytes();
        // Cut the final frame short at every possible byte boundary:
        // each torn write must decode to TruncatedTail, never panic.
        let tail_start = encode_log(&j.entries()[..j.entries().len() - 1]).len();
        for cut in tail_start + 1..bytes.len() {
            match decode_log(&bytes[..cut]) {
                Err(WalVerifyError::TruncatedTail { offset }) => {
                    assert_eq!(offset, tail_start, "cut at {cut}")
                }
                other => panic!("cut at {cut}: expected TruncatedTail, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_checksum_byte_is_a_typed_error() {
        let j = populated();
        let clean = j.snapshot_bytes();
        // Flip one bit in every byte of the log in turn. Whatever the
        // byte encodes — seq, checksum, length, payload — the reader
        // must answer with a typed error or a differing entry, not a
        // panic. Flips confined to an entry's payload or checksum field
        // must surface as Corrupt/BadRecord for that entry.
        let first_len = j.entries()[0].to_bytes().len();
        for at in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            let _ = decode_log(&bytes); // must not panic, any result
        }
        // Precisely: a payload flip in entry 1 is caught by its checksum.
        let mut bytes = clean.clone();
        bytes[first_len - 1] ^= 0x01; // last payload byte of entry 1
        match decode_log(&bytes) {
            Err(WalVerifyError::Corrupt { seq: 1 }) | Err(WalVerifyError::BadRecord { seq: 1 }) => {
            }
            other => panic!("expected Corrupt/BadRecord at seq 1, got {other:?}"),
        }
        // And a flip in the stored checksum itself is Corrupt, too.
        let mut bytes = clean;
        bytes[8] ^= 0x01; // checksum field of entry 1
        assert_eq!(decode_log(&bytes), Err(WalVerifyError::Corrupt { seq: 1 }));
    }

    #[test]
    fn out_of_order_seq_is_a_typed_error() {
        let j = populated();
        let mut entries = j.entries();
        entries.swap(1, 2);
        let bytes = encode_log(&entries);
        assert_eq!(
            decode_log(&bytes),
            Err(WalVerifyError::OutOfOrder {
                seq: 3,
                expected: 2
            })
        );
        // The in-memory verifier reports the same defect.
        assert_eq!(
            verify_chain(&entries),
            Err(WalVerifyError::OutOfOrder {
                seq: 3,
                expected: 2
            })
        );
        assert_eq!(j.verify(), Ok(()));
    }
}
