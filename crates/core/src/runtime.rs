//! The job runtime: Job Manager, Node Launch Agents, per-rank C/R
//! threads, and the four-phase migration protocol of §III-A.
//!
//! Process anatomy of a running job (all simulated processes):
//!
//! * **Job Manager** (login node): launches the NLA tree, owns the trigger
//!   queue, orchestrates migrations and coordinated checkpoints, measures
//!   phase times from protocol messages.
//! * **NLA** (every compute + spare node): spawns/kills local MPI
//!   processes; on `FTB_MIGRATE` runs the source or target buffer manager
//!   side; on `FTB_RESTART` restarts the migrated processes from their
//!   assembled images.
//! * **App thread** (per rank): runs the [`AppBody`]; killed on the source
//!   node during Phase 2 and re-spawned from the image on the target.
//! * **C/R thread** (per rank): MVAPICH2's checkpoint thread — reacts to
//!   `FTB_MIGRATE`/`FTB_CHECKPOINT`, suspends and drains communication,
//!   checkpoints through the buffer pool (source ranks) or to storage
//!   (CR baseline), and executes Phase 4 (migration barrier, endpoint
//!   rebuild, resume).

use crate::bufpool::{
    AssembledImage, PoolConfig, PoolRendezvous, RestartMode, SourcePool, TargetHooks,
    TransferSession, Transport,
};
use crate::calib;
use crate::cluster::Cluster;
use crate::cr_baseline;
use crate::msgs::*;
use crate::report::{CrReport, CrStoreKind, MigrationOutcome, MigrationReport, OutcomeCounts};
use crate::spare::SparePool;
use crate::wal::{CycleJournal, InFlight, WalRecord};
use blcrsim::{ProcessImage, StoreSource};
use bytes::Bytes;
use faultplane::{FaultPlane, MigPhase};
use ftb::{EventFilter, FtbClient, FtbEvent, Severity};
use ibfabric::NodeId;
use mpisim::{CrMeta, MpiConfig, MpiJob, MpiRank};
use parking_lot::Mutex;
use protoverify::{
    nla_next, rank_next, CycleEvent, CycleStepper, GuardCtx, MigrationSpec, NlaEvent, RankEvent,
    RankLife, StepError,
};
use simkit::{Countdown, Ctx, Event, ProcHandle, Queue, Semaphore, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The application code a rank runs. Must be written re-entrantly: on a
/// restart it is re-invoked and resumes from the rank's restored
/// application state (see `mpisim`'s replay-safety docs).
pub trait AppBody: Send + Sync + 'static {
    /// Run rank `rank` to completion.
    fn run(&self, ctx: &Ctx, rank: &mut MpiRank);
}

impl<F> AppBody for F
where
    F: Fn(&Ctx, &mut MpiRank) + Send + Sync + 'static,
{
    fn run(&self, ctx: &Ctx, rank: &mut MpiRank) {
        self(ctx, rank)
    }
}

/// Everything needed to launch a job.
#[derive(Clone)]
pub struct JobSpec {
    /// Number of MPI ranks.
    pub nranks: u32,
    /// Processes per node.
    pub ppn: u32,
    /// The application.
    pub app: Arc<dyn AppBody>,
    /// MPI library tunables.
    pub mpi: MpiConfig,
    /// Migration buffer pool geometry.
    pub pool: PoolConfig,
    /// Workload seed (segment contents, determinism).
    pub seed: u64,
    /// Automatically migrate away from nodes that publish
    /// `HEALTH_PREDICT`/`HEALTH_CRITICAL` events.
    pub auto_migrate_on_health: bool,
    /// Self-healing policy: per-phase deadlines, retry budget, backoff.
    pub recovery: calib::RecoveryConfig,
    /// Run a standby coordinator on the login node: if the Job Manager
    /// dies mid-cycle (the `CoordinatorCrash` fault), the standby fences
    /// the deposed epoch and recovers the in-flight cycle from the WAL
    /// journal (resume-from-point or rollback). Off by default — the
    /// journal itself is always on and free of scheduling effects.
    pub standby: bool,
}

impl JobSpec {
    /// A spec running the given NPB workload.
    pub fn npb(workload: npbsim::Workload, ppn: u32) -> JobSpec {
        let nranks = workload.np;
        let seed = 42;
        let w = workload;
        JobSpec {
            nranks,
            ppn,
            app: Arc::new(move |ctx: &Ctx, rank: &mut MpiRank| {
                npbsim::run_rank(ctx, rank, &w, seed);
            }),
            mpi: MpiConfig::default(),
            pool: PoolConfig::default(),
            seed,
            auto_migrate_on_health: false,
            recovery: calib::recovery(),
            standby: false,
        }
    }

    /// A spec running arbitrary application code.
    pub fn custom(nranks: u32, ppn: u32, app: impl AppBody) -> JobSpec {
        JobSpec {
            nranks,
            ppn,
            app: Arc::new(app),
            mpi: MpiConfig::default(),
            pool: PoolConfig::default(),
            seed: 42,
            auto_migrate_on_health: false,
            recovery: calib::recovery(),
            standby: false,
        }
    }
}

/// Every tunable of one migration in a single struct: the buffer-pool /
/// data-path geometry ([`PoolConfig`]) and the self-healing policy
/// ([`calib::RecoveryConfig`]) that used to be configured separately.
/// Reachable per-request through [`MigrationRequest::tuning`] and job-wide
/// through [`JobSpec::pool`] / [`JobSpec::recovery`].
///
/// ```ignore
/// rt.control().migrate(
///     MigrationRequest::new().tuning(MigrationTuning::pipelined()),
/// );
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationTuning {
    /// Buffer pool geometry and data-path options.
    pub pool: PoolConfig,
    /// Per-phase deadlines, retry budget, backoff.
    pub recovery: calib::RecoveryConfig,
}

impl MigrationTuning {
    /// The paper's engine: sequential pulls, whole-pull restart barrier.
    pub fn barrier() -> Self {
        Self::default()
    }

    /// The pipelined data path: two RDMA lanes, per-rank restart overlap,
    /// and restart admission bounded to two concurrent cold reads (the
    /// sweet spot on the paper testbed's ext3 disk — see EXPERIMENTS.md).
    pub fn pipelined() -> Self {
        let mut t = Self::default();
        t.pool.lanes = 2;
        t.pool.overlap = true;
        t.pool.restart_admission = 2;
        t
    }

    /// Iterative pre-copy live migration on top of the pipelined data
    /// path: round 0 streams the full image over the striped lanes while
    /// the ranks keep running, later rounds stream only dirtied segments,
    /// and the convergence controller (downtime-budget policy by default)
    /// decides when to suspend for a short residual stop-and-copy.
    pub fn live() -> Self {
        let mut t = Self::pipelined();
        t.pool.live = Some(livemig::LiveConfig::default());
        t
    }

    /// Set the live pre-copy configuration (`None` = stop-and-copy).
    pub fn live_config(mut self, cfg: Option<livemig::LiveConfig>) -> Self {
        self.pool.live = cfg;
        self
    }

    /// Set the parallel RDMA pull lane count.
    pub fn lanes(mut self, lanes: u32) -> Self {
        self.pool.lanes = lanes.max(1);
        self
    }

    /// Toggle per-rank restart overlap.
    pub fn overlap(mut self, on: bool) -> Self {
        self.pool.overlap = on;
        self
    }

    /// Bound concurrent restarts in overlap mode (0 = unbounded).
    pub fn restart_admission(mut self, n: u32) -> Self {
        self.pool.restart_admission = n;
        self
    }

    /// Set the chunk wire transport.
    pub fn transport(mut self, t: Transport) -> Self {
        self.pool.transport = t;
        self
    }

    /// Set the Phase 3 restart strategy.
    pub fn restart_mode(mut self, m: RestartMode) -> Self {
        self.pool.restart_mode = m;
        self
    }

    /// Replace the whole pool geometry.
    pub fn pool(mut self, p: PoolConfig) -> Self {
        self.pool = p;
        self
    }

    /// Replace the self-healing policy.
    pub fn recovery(mut self, r: calib::RecoveryConfig) -> Self {
        self.recovery = r;
        self
    }
}

/// A typed migration request — the paper's user-level Migration Trigger
/// with per-request knobs.
///
/// Defaults mirror the launched [`JobSpec`]: source auto-selected (first
/// migration-ready node hosting ranks), transport/restart-mode/pool
/// geometry taken from [`JobSpec::pool`]. Builder methods override any of
/// them for this one cycle without touching the job-wide configuration.
///
/// ```ignore
/// rt.control().migrate(
///     MigrationRequest::new()
///         .from_node(NodeId(3))
///         .transport(Transport::RdmaRead)
///         .restart_mode(RestartMode::MemoryBased),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct MigrationRequest {
    pub(crate) source: Option<NodeId>,
    pub(crate) transport: Option<Transport>,
    pub(crate) restart_mode: Option<RestartMode>,
    pub(crate) pool: Option<PoolConfig>,
    pub(crate) recovery: Option<calib::RecoveryConfig>,
    pub(crate) label: Option<String>,
}

impl MigrationRequest {
    /// A request with every knob at its job default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Migrate the ranks of this specific node (default: first
    /// migration-ready node hosting ranks, in node-id order).
    pub fn from_node(mut self, node: NodeId) -> Self {
        self.source = Some(node);
        self
    }

    /// Override the chunk wire transport for this cycle.
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = Some(t);
        self
    }

    /// Override the Phase 3 restart strategy for this cycle.
    pub fn restart_mode(mut self, m: RestartMode) -> Self {
        self.restart_mode = Some(m);
        self
    }

    /// Override the whole buffer-pool geometry for this cycle.
    pub fn pool(mut self, p: PoolConfig) -> Self {
        self.pool = Some(p);
        self
    }

    /// Override every migration tunable at once (pool geometry, data-path
    /// options, and the self-healing policy) for this cycle.
    pub fn tuning(mut self, t: MigrationTuning) -> Self {
        self.pool = Some(t.pool);
        self.recovery = Some(t.recovery);
        self
    }

    /// Attach a diagnostic label; it rides the cycle's `"phase"` telemetry
    /// spans as a `label` argument.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The pool configuration this request resolves to on top of `base`.
    pub(crate) fn effective_pool(&self, base: PoolConfig) -> PoolConfig {
        let mut p = self.pool.unwrap_or(base);
        if let Some(t) = self.transport {
            p.transport = t;
        }
        if let Some(m) = self.restart_mode {
            p.restart_mode = m;
        }
        p
    }

    /// The self-healing policy this request resolves to on top of `base`.
    pub(crate) fn effective_recovery(&self, base: calib::RecoveryConfig) -> calib::RecoveryConfig {
        self.recovery.unwrap_or(base)
    }
}

/// A typed coordinated-checkpoint request.
#[derive(Debug, Clone)]
pub struct CheckpointRequest {
    pub(crate) store: CrStoreKind,
}

impl CheckpointRequest {
    /// Checkpoint to `store`.
    pub fn to(store: CrStoreKind) -> Self {
        CheckpointRequest { store }
    }

    /// Checkpoint to each node's local ext3 filesystem.
    pub fn local() -> Self {
        Self::to(CrStoreKind::LocalExt3)
    }

    /// Checkpoint to the shared PVFS deployment.
    pub fn pvfs() -> Self {
        Self::to(CrStoreKind::Pvfs)
    }
}

/// The typed control plane of a running job: submits migration,
/// checkpoint, and restart requests to the Job Manager's trigger queue.
/// Obtained from [`JobRuntime::control`]; cloning shares the runtime.
#[derive(Clone)]
pub struct Control {
    rt: JobRuntime,
}

impl Control {
    /// Request a migration.
    pub fn migrate(&self, req: MigrationRequest) {
        self.rt.inner.triggers.push(Trigger::Migrate { req });
    }

    /// Fire a migration request after `d` of virtual time.
    pub fn migrate_after(&self, d: Duration, req: MigrationRequest) {
        let ctl = self.clone();
        self.rt
            .inner
            .cluster
            .handle()
            .spawn_daemon("migration-trigger", move |ctx| {
                ctx.sleep(d);
                ctl.migrate(req);
            });
    }

    /// Request a coordinated checkpoint of the whole job.
    pub fn checkpoint(&self, req: CheckpointRequest) {
        self.rt.inner.triggers.push(Trigger::Checkpoint { req });
    }

    /// Request a restart-from-checkpoint of cycle `cycle` (simulates the
    /// failure/recovery path whose cost Figure 7 reports as "Restart").
    pub fn restart_from_checkpoint(&self, cycle: u64) {
        self.rt
            .inner
            .triggers
            .push(Trigger::RestartFromCkpt { cycle });
    }
}

pub(crate) enum Trigger {
    Migrate { req: MigrationRequest },
    Checkpoint { req: CheckpointRequest },
    RestartFromCkpt { cycle: u64 },
}

/// Shared state of one migration cycle.
pub(crate) struct MigCycle {
    pub id: u64,
    pub source: NodeId,
    pub target: NodeId,
    pub ranks: Vec<u32>,
    /// Pool configuration in effect for this cycle (job default plus
    /// per-request overrides).
    pub pool: PoolConfig,
    pub stall_done: Countdown,
    pub rendezvous: PoolRendezvous,
    source_pool: Mutex<Option<Arc<SourcePool>>>,
    source_pool_ready: Event,
    pub piic: Event,
    pub piic_bytes: Mutex<u64>,
    pub images: Mutex<HashMap<u32, AssembledImage>>,
    pub images_ready: Event,
    /// Per-rank image readiness, set by the target pull the moment that
    /// rank's stream is fully staged and verified — the pipelined restart
    /// path starts a rank's restart on its own event instead of the
    /// whole-pull `images_ready` barrier. `BTreeMap` keeps any iteration
    /// deterministic.
    pub rank_ready: BTreeMap<u32, Event>,
    pub restart_done: Event,
    pub barrier: Countdown,
    pub resumed: Countdown,
    /// Abort gate plus the set of ranks that entered the protocol.
    gate: Mutex<CycleGate>,
    /// Checkpoint metadata captured by source ranks before their app
    /// incarnation was killed. Presence of a rank here means its app is
    /// dead and must be resurrected from this state on abort.
    captured_meta: Mutex<HashMap<u32, CrMeta>>,
    /// Worker processes owned by this cycle (pool managers, ack loop,
    /// restart workers) — killed wholesale on abort.
    procs: Mutex<Vec<ProcHandle>>,
    /// Claim flag for the Phase 3 `FTB_RESTART` reaction: the standby
    /// re-publishes the restart broadcast when the WAL cannot prove the
    /// original went out, so the target NLA must react to exactly one of
    /// the (at most two) publishes.
    restart_claim: Mutex<bool>,
    /// Iterative pre-copy state (`None` for stop-and-copy cycles — and
    /// for every retry attempt: only the first attempt runs live, since a
    /// retry's pre-copied state died with the abandoned target).
    pub live: Option<LiveState>,
}

/// Shared state of a live cycle's pre-copy rounds, bridging the Job
/// Manager (round loop, convergence decisions), the source NLA (capture +
/// stream), the target NLA (pull + merge), and the Phase 3 restart (merge
/// the cutover residual).
pub(crate) struct LiveState {
    /// Live tunables in effect for this cycle.
    pub cfg: livemig::LiveConfig,
    /// Rendezvous of the round currently streaming; replaced by the Job
    /// Manager before each `FTB_PRECOPY` publish (each round is its own
    /// [`TransferSession`]).
    round_rv: Mutex<Option<PoolRendezvous>>,
    /// Target-side per-rank merge state, carried across rounds and
    /// consumed by the cutover restart.
    pub accums: Mutex<HashMap<u32, livemig::ImageAccumulator>>,
    /// Set when the controller cuts over: source ranks stream only the
    /// residual delta and the target restarts from accumulator + residual.
    cutover: AtomicBool,
    /// Pre-copy wire bytes across all completed rounds.
    pub precopied: AtomicU64,
    /// Completed pre-copy rounds.
    pub rounds: AtomicU32,
}

impl LiveState {
    fn new(cfg: livemig::LiveConfig) -> Self {
        LiveState {
            cfg,
            round_rv: Mutex::new(None),
            accums: Mutex::new(HashMap::new()),
            cutover: AtomicBool::new(false),
            precopied: AtomicU64::new(0),
            rounds: AtomicU32::new(0),
        }
    }

    /// Install the rendezvous for the next round (Job Manager, before the
    /// `FTB_PRECOPY` publish).
    fn begin_round(&self, rv: PoolRendezvous) {
        *self.round_rv.lock() = Some(rv);
    }

    /// The current round's rendezvous (NLA reaction side).
    fn round_rendezvous(&self) -> Option<PoolRendezvous> {
        self.round_rv.lock().clone()
    }

    /// Whether the controller has cut over to the residual round.
    pub fn cut_over(&self) -> bool {
        self.cutover.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct CycleGate {
    aborted: bool,
    entered: HashSet<u32>,
}

impl MigCycle {
    fn set_source_pool(&self, p: Arc<SourcePool>) {
        *self.source_pool.lock() = Some(p);
        self.source_pool_ready.set();
    }

    /// Wait for the source pool to be stood up. `None` only if the ready
    /// event fired without a pool in place (a defect in the pool setup) —
    /// callers bail out and let the Phase 2 deadline recover the cycle.
    fn wait_source_pool(&self, ctx: &Ctx) -> Option<Arc<SourcePool>> {
        self.source_pool_ready.wait(ctx);
        self.source_pool.lock().clone()
    }

    /// A C/R thread checks in before acting on this cycle's events. Once
    /// the cycle is aborted, late arrivals are turned away (they never
    /// suspended, so they need no recovery).
    fn enter(&self, rank: u32) -> bool {
        let mut g = self.gate.lock();
        if g.aborted {
            return false;
        }
        g.entered.insert(rank);
        true
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.gate.lock().aborted
    }

    /// Register a cycle-owned worker process; if the cycle is already
    /// aborted the worker is killed on the spot.
    pub(crate) fn track(&self, ph: ProcHandle) {
        if self.gate.lock().aborted {
            ph.kill();
        } else {
            self.procs.lock().push(ph);
        }
    }

    /// First caller wins the right to run the Phase 3 restart reaction;
    /// a duplicate `FTB_RESTART` (original + standby re-publish) is a
    /// no-op for everyone else.
    fn claim_restart(&self) -> bool {
        let mut claimed = self.restart_claim.lock();
        !std::mem::replace(&mut *claimed, true)
    }
}

/// Shared state of one coordinated-checkpoint cycle.
pub(crate) struct CkptCycle {
    pub id: u64,
    pub store: CrStoreKind,
    pub stall_done: Countdown,
    pub cut: Mutex<Option<SimTime>>,
    pub ckpt_done: Countdown,
    pub resumed: Countdown,
    pub bytes: AtomicU64,
    pub checksums: Mutex<HashMap<u32, u64>>,
}

pub(crate) struct NlaShared {
    pub node: NodeId,
    pub state: Mutex<NlaState>,
    pub ranks: Mutex<Vec<u32>>,
}

/// A trivial model of the mpispawn tree the Job Manager adjusts in
/// Phase 3 (login root, one NLA level).
pub(crate) struct SpawnTree {
    pub root: NodeId,
    pub nodes: Vec<NodeId>,
}

impl SpawnTree {
    fn snapshot(&self) -> (NodeId, Vec<NodeId>) {
        (self.root, self.nodes.clone())
    }

    fn replace(&mut self, old: NodeId, new: NodeId) {
        for n in &mut self.nodes {
            if *n == old {
                *n = new;
            }
        }
    }
}

/// The current coordinator generation: the live Job Manager's process
/// handle plus the event a scheduled [`faultplane::FaultSpec::CoordinatorCrash`]
/// sets when it kills that process. The journal's crash hook fires
/// through here; the standby waits on the generation's `dead` event and
/// installs a fresh generation after every takeover.
pub(crate) struct CoordSignal {
    gen: Mutex<CoordGen>,
}

struct CoordGen {
    proc: Option<ProcHandle>,
    dead: Event,
}

impl CoordSignal {
    fn new(dead: Event) -> CoordSignal {
        CoordSignal {
            gen: Mutex::new(CoordGen { proc: None, dead }),
        }
    }

    /// Install the live coordinator process for the current generation.
    fn arm(&self, proc: ProcHandle, dead: Event) {
        *self.gen.lock() = CoordGen {
            proc: Some(proc),
            dead,
        };
    }

    /// Execute a scheduled coordinator crash: kill the registered
    /// coordinator (if any — a crash landing while the standby itself is
    /// coordinating is a no-op) and signal the standby. Taking the handle
    /// makes a second fire within one generation inert.
    fn fire(&self) {
        let mut g = self.gen.lock();
        if let Some(ph) = g.proc.take() {
            ph.kill();
        }
        g.dead.set();
    }

    /// The current generation's death event (what the standby waits on).
    fn dead(&self) -> Event {
        self.gen.lock().dead.clone()
    }
}

pub(crate) struct RtInner {
    pub cluster: Cluster,
    pub spec: JobSpec,
    pub job: MpiJob,
    /// This job's identity on the cluster. Cycle ids are drawn from the
    /// namespace `job_id << 32`, so cycles of concurrently-running jobs
    /// never collide and foreign FTB events miss every cycle lookup.
    pub job_id: u64,
    /// NLA registry, keyed by node id. A `BTreeMap` so that any iteration
    /// (source auto-selection, launch order) is in node-id order — the
    /// deterministic-replay guarantee forbids `HashMap` iteration here.
    pub nlas: Mutex<BTreeMap<NodeId, Arc<NlaShared>>>,
    /// The cluster's shared spare pool (leases are keyed by `job_id`).
    pub pool: SparePool,
    pub triggers: Queue<Trigger>,
    pub pending_sources: Mutex<HashSet<NodeId>>,
    pub next_cycle: Mutex<u64>,
    pub mig_cycles: Mutex<HashMap<u64, Arc<MigCycle>>>,
    pub ckpt_cycles: Mutex<HashMap<u64, Arc<CkptCycle>>>,
    pub mig_reports: Mutex<Vec<MigrationReport>>,
    pub cr_reports: Mutex<Vec<CrReport>>,
    pub app_threads: Mutex<HashMap<u32, ProcHandle>>,
    pub cr_threads: Mutex<HashMap<u32, ProcHandle>>,
    pub nla_procs: Mutex<HashMap<NodeId, ProcHandle>>,
    pub finished: Mutex<HashSet<u32>>,
    pub all_done: Event,
    pub spawn_tree: Mutex<SpawnTree>,
    pub outcomes: Mutex<OutcomeCounts>,
    /// Per-rank lifecycle position, advanced only through
    /// `protoverify::RANK_TABLE` (see [`JobRuntime::rank_apply`]).
    pub rank_life: Mutex<BTreeMap<u32, RankLife>>,
    /// The WAL-backed cycle journal (always on; crash injection and the
    /// standby read it).
    pub journal: CycleJournal,
    /// Coordinator fencing epoch. Starts at 0 (the legacy, never-fenced
    /// epoch); each standby takeover bumps it and fences the spare pool
    /// and FTB publishes of every deposed epoch.
    pub epoch: AtomicU64,
    /// Live-coordinator registration for crash injection / takeover.
    pub(crate) coord: Arc<CoordSignal>,
}

/// Where a job sits on the cluster: its identity and (optionally) an
/// explicit list of home nodes. Fleet orchestrators launching many jobs
/// side by side give each a distinct `job_id` and a disjoint node block;
/// the default placement reproduces the classic single-job launch.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    /// Job identity; must be unique among concurrently-running jobs on
    /// one cluster. Cycle ids (migration and checkpoint) are drawn from
    /// the namespace `job_id << 32`, and spare-pool leases are keyed by
    /// it.
    pub job_id: u64,
    /// Home nodes for the ranks, `ppn` per node in order. `None` places
    /// ranks on the cluster's compute nodes from the front.
    pub nodes: Option<Vec<NodeId>>,
}

impl Placement {
    /// Placement for `job_id` on the default (front) compute nodes.
    pub fn job(job_id: u64) -> Placement {
        Placement {
            job_id,
            nodes: None,
        }
    }

    /// Place the ranks on exactly `nodes`.
    pub fn on_nodes(mut self, nodes: Vec<NodeId>) -> Placement {
        self.nodes = Some(nodes);
        self
    }
}

/// A launched job: handles for triggering migrations/checkpoints and
/// reading reports. Cloning shares the runtime.
#[derive(Clone)]
pub struct JobRuntime {
    pub(crate) inner: Arc<RtInner>,
}

impl JobRuntime {
    /// Launch `spec` on `cluster`: places ranks block-wise (`ppn` per
    /// compute node), starts NLAs, app threads, C/R threads and the Job
    /// Manager. Endpoints are built untimed (startup cost is not part of
    /// any measured figure).
    pub fn launch(cluster: &Cluster, spec: JobSpec) -> JobRuntime {
        Self::launch_placed(cluster, spec, Placement::default())
    }

    /// [`JobRuntime::launch`] with an explicit [`Placement`] — the entry
    /// point for fleet orchestrators running several jobs on one cluster.
    pub fn launch_placed(cluster: &Cluster, spec: JobSpec, placement: Placement) -> JobRuntime {
        let handle = cluster.handle().clone();
        let spec_nranks = spec.nranks;
        let job_id = placement.job_id;
        let home: Vec<NodeId> = placement
            .nodes
            .unwrap_or_else(|| cluster.compute_nodes().to_vec());
        let nodes_needed = spec.nranks.div_ceil(spec.ppn);
        assert!(
            nodes_needed as usize <= home.len(),
            "need {nodes_needed} home nodes, have {}",
            home.len()
        );
        let job = MpiJob::new(
            &handle,
            cluster.fabric().clone(),
            spec.nranks,
            spec.mpi.clone(),
        );
        let mut nlas = BTreeMap::new();
        let mut used_nodes = Vec::new();
        for r in 0..spec.nranks {
            let node = home[(r / spec.ppn) as usize];
            job.init_rank(r, node, Bytes::new());
            let nla = nlas.entry(node).or_insert_with(|| {
                used_nodes.push(node);
                Arc::new(NlaShared {
                    node,
                    state: Mutex::new(NlaState::MigrationReady),
                    ranks: Mutex::new(Vec::new()),
                })
            });
            nla.ranks.lock().push(r);
        }
        // Spare-state NLAs on every node currently free in the shared
        // pool; nodes leased or reclaimed later are adopted on demand
        // (`adopt_spare`).
        for spare in cluster.spare_pool().free_nodes() {
            nlas.insert(
                spare,
                Arc::new(NlaShared {
                    node: spare,
                    state: Mutex::new(NlaState::MigrationSpare),
                    ranks: Mutex::new(Vec::new()),
                }),
            );
        }
        let journal = CycleJournal::new(&handle);
        if let Some(plane) = cluster.fault_plane() {
            journal.install_fault_plane(plane);
        }
        let coord = Arc::new(CoordSignal::new(Event::new(&handle, "coord-dead")));
        let rt = JobRuntime {
            inner: Arc::new(RtInner {
                cluster: cluster.clone(),
                spec,
                job,
                job_id,
                pool: cluster.spare_pool().clone(),
                nlas: Mutex::new(nlas),
                triggers: Queue::new(&handle),
                pending_sources: Mutex::new(HashSet::new()),
                next_cycle: Mutex::new((job_id << 32) + 1),
                mig_cycles: Mutex::new(HashMap::new()),
                ckpt_cycles: Mutex::new(HashMap::new()),
                mig_reports: Mutex::new(Vec::new()),
                cr_reports: Mutex::new(Vec::new()),
                app_threads: Mutex::new(HashMap::new()),
                cr_threads: Mutex::new(HashMap::new()),
                nla_procs: Mutex::new(HashMap::new()),
                finished: Mutex::new(HashSet::new()),
                all_done: Event::new(&handle, "job-complete"),
                spawn_tree: Mutex::new(SpawnTree {
                    root: cluster.login(),
                    nodes: Vec::new(),
                }),
                outcomes: Mutex::new(OutcomeCounts::default()),
                rank_life: Mutex::new((0..spec_nranks).map(|r| (r, RankLife::Running)).collect()),
                journal: journal.clone(),
                epoch: AtomicU64::new(0),
                coord: coord.clone(),
            }),
        };
        // A scheduled coordinator crash fires inside `CycleJournal::append`:
        // kill whichever coordinator is registered and wake the standby.
        journal.set_crash_hook(move || coord.fire());
        rt.inner.spawn_tree.lock().nodes = used_nodes.clone();

        // NLA daemons on every participating node (compute + spares).
        let all_nla_nodes: Vec<NodeId> = {
            let nlas = rt.inner.nlas.lock();
            let mut v: Vec<NodeId> = nlas.keys().copied().collect();
            v.sort();
            v
        };
        for node in all_nla_nodes {
            let rt2 = rt.clone();
            let ph = handle.spawn_daemon(&rt.proc_name("nla", &node.to_string()), move |ctx| {
                nla_proc(ctx, rt2, node)
            });
            rt.inner.nla_procs.lock().insert(node, ph);
        }
        // Job Manager on the login node.
        let rt2 = rt.clone();
        let jm = handle.spawn_daemon(&rt.proc_name("job-manager", ""), move |ctx| {
            jm_proc(ctx, rt2)
        });
        rt.inner.coord.arm(jm, rt.inner.coord.dead());
        // Standby coordinator (same login node in the paper's deployment;
        // here a separate daemon so the Job Manager's death leaves it up).
        if rt.inner.spec.standby {
            let rt2 = rt.clone();
            handle.spawn_daemon(&rt.proc_name("standby", ""), move |ctx| {
                standby_proc(ctx, rt2)
            });
        }
        // Health-event bridge.
        if rt.inner.spec.auto_migrate_on_health {
            let rt2 = rt.clone();
            handle.spawn_daemon(&rt.proc_name("health-bridge", ""), move |ctx| {
                health_bridge(ctx, rt2)
            });
        }
        rt
    }

    /// Daemon names: identical to the historical single-job names for
    /// job 0 (keeping existing traces byte-stable), prefixed with the
    /// job id otherwise.
    fn proc_name(&self, kind: &str, node: &str) -> String {
        let at = if node.is_empty() {
            String::new()
        } else {
            format!("@{node}")
        };
        if self.inner.job_id == 0 {
            format!("{kind}{at}")
        } else {
            format!("j{}-{kind}{at}", self.inner.job_id)
        }
    }

    /// The MPI job.
    pub fn job(&self) -> &MpiJob {
        &self.inner.job
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// The job spec.
    pub fn spec(&self) -> &JobSpec {
        &self.inner.spec
    }

    /// The typed control plane: migration/checkpoint/restart requests.
    pub fn control(&self) -> Control {
        Control { rt: self.clone() }
    }

    /// Completed migration reports, in order.
    pub fn migration_reports(&self) -> Vec<MigrationReport> {
        self.inner.mig_reports.lock().clone()
    }

    /// Completed checkpoint reports, in order.
    pub fn cr_reports(&self) -> Vec<CrReport> {
        self.inner.cr_reports.lock().clone()
    }

    /// Whether every rank's application body has finished.
    pub fn is_complete(&self) -> bool {
        self.inner.all_done.is_set()
    }

    /// Event set when the whole application completes.
    pub fn completion(&self) -> &Event {
        &self.inner.all_done
    }

    /// The NLA state of `node`.
    pub fn nla_state(&self, node: NodeId) -> Option<NlaState> {
        self.inner.nlas.lock().get(&node).map(|n| *n.state.lock())
    }

    /// Spare nodes still available in the cluster's shared pool.
    pub fn spares_left(&self) -> usize {
        self.inner.pool.available()
    }

    /// The job identity this runtime was launched under.
    pub fn job_id(&self) -> u64 {
        self.inner.job_id
    }

    /// Whether `node` currently hosts any of this job's ranks.
    pub fn hosts_ranks_on(&self, node: NodeId) -> bool {
        self.inner
            .nlas
            .lock()
            .get(&node)
            .map(|n| !n.ranks.lock().is_empty())
            .unwrap_or(false)
    }

    /// Nodes currently hosting at least one rank, in id order.
    pub fn rank_nodes(&self) -> Vec<NodeId> {
        self.inner
            .nlas
            .lock()
            .values()
            .filter(|n| !n.ranks.lock().is_empty())
            .map(|n| n.node)
            .collect()
    }

    /// Tear down the job's simulated processes (NLA daemons, C/R and app
    /// threads). For fleet orchestrators recycling a completed job's node
    /// block: the stale daemons would otherwise keep waking on every FTB
    /// event forever. Reports and outcome counters stay readable.
    pub fn shutdown(&self) {
        // Collect-and-sort before killing: the registries are HashMaps
        // and kill order must not depend on hash order.
        // jmlint: allow(hash_iter)
        let mut nlas: Vec<(NodeId, ProcHandle)> = self.inner.nla_procs.lock().drain().collect();
        nlas.sort_by_key(|(n, _)| *n);
        for (_, ph) in nlas {
            ph.kill();
        }
        for registry in [&self.inner.cr_threads, &self.inner.app_threads] {
            let mut procs: Vec<(u32, ProcHandle)> = registry.lock().drain().collect();
            procs.sort_by_key(|(r, _)| *r);
            for (_, ph) in procs {
                ph.kill();
            }
        }
    }

    /// Per-outcome migration counters: first-attempt successes, retried
    /// successes, CR fallbacks, and (defensively) lost triggers.
    pub fn migration_outcomes(&self) -> OutcomeCounts {
        *self.inner.outcomes.lock()
    }

    /// The job's WAL-backed cycle journal (always on).
    pub fn journal(&self) -> &CycleJournal {
        &self.inner.journal
    }

    /// The current coordinator fencing epoch: 0 until the first standby
    /// takeover, bumped once per takeover.
    pub fn fencing_epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// The current mpispawn tree: `(root, NLA nodes in launch order)`.
    /// Phase 3 replaces the migration source with the target here.
    pub fn spawn_tree(&self) -> (NodeId, Vec<NodeId>) {
        self.inner.spawn_tree.lock().snapshot()
    }

    /// Simulate an abrupt whole-job failure: every application process
    /// dies immediately and communication gates close. The job makes no
    /// further progress until [`Control::restart_from_checkpoint`]
    /// recovers it from a checkpoint.
    pub fn simulate_failure(&self) {
        for rank in 0..self.inner.spec.nranks {
            self.kill_app(rank);
            self.inner.job.cr(rank).close_gate();
        }
    }

    // ------------------------------------------------------------------
    // internal helpers
    // ------------------------------------------------------------------

    /// Look up a migration cycle by id. `None` for an unknown id (e.g. an
    /// FTB event from a cycle this runtime never started) — callers skip
    /// the event instead of panicking.
    pub(crate) fn mig_cycle(&self, id: u64) -> Option<Arc<MigCycle>> {
        self.inner.mig_cycles.lock().get(&id).cloned()
    }

    /// Look up a checkpoint cycle by id; `None` for an unknown id.
    pub(crate) fn ckpt_cycle(&self, id: u64) -> Option<Arc<CkptCycle>> {
        self.inner.ckpt_cycles.lock().get(&id).cloned()
    }

    pub(crate) fn next_cycle_id(&self) -> u64 {
        let mut c = self.inner.next_cycle.lock();
        let id = *c;
        *c += 1;
        id
    }

    /// Make a freshly leased pool node usable as this job's migration
    /// target. Nodes reclaimed into the shared pool after this job
    /// launched have no NLA here yet — register one in spare state and
    /// start its daemon; a node this job itself vacated earlier re-enters
    /// service by reprovisioning its inactive NLA. Returns `true` when a
    /// new daemon was spawned: the caller must then let a little virtual
    /// time pass so the daemon subscribes to the FTB before the attempt's
    /// `FTB_MIGRATE` is published.
    pub(crate) fn adopt_spare(&self, ctx: &Ctx, node: NodeId) -> bool {
        {
            let nlas = self.inner.nlas.lock();
            if let Some(nla) = nlas.get(&node) {
                let st = *nla.state.lock();
                match st {
                    NlaState::MigrationSpare => {}
                    NlaState::MigrationInactive => nla_apply(ctx, nla, NlaEvent::Reprovision),
                    NlaState::MigrationReady => panic!(
                        "spare pool corrupt: leased {node} still hosts ranks of job {}",
                        self.inner.job_id
                    ),
                }
                return false;
            }
        }
        let nla = Arc::new(NlaShared {
            node,
            state: Mutex::new(NlaState::MigrationSpare),
            ranks: Mutex::new(Vec::new()),
        });
        self.inner.nlas.lock().insert(node, nla);
        let rt2 = self.clone();
        let ph = self
            .inner
            .cluster
            .handle()
            .spawn_daemon(&self.proc_name("nla", &node.to_string()), move |ctx| {
                nla_proc(ctx, rt2, node)
            });
        self.inner.nla_procs.lock().insert(node, ph);
        true
    }

    pub(crate) fn spawn_app(&self, rank: u32) {
        let rt = self.clone();
        let ph = self
            .inner
            .cluster
            .handle()
            .spawn(&format!("app-r{rank}"), move |ctx| {
                let mut r = rt.inner.job.attach(rank);
                rt.inner.spec.app.run(ctx, &mut r);
                rt.rank_finished(rank);
            });
        self.inner.app_threads.lock().insert(rank, ph);
    }

    pub(crate) fn kill_app(&self, rank: u32) {
        if let Some(ph) = self.inner.app_threads.lock().get(&rank) {
            ph.kill();
        }
    }

    fn rank_finished(&self, rank: u32) {
        let mut f = self.inner.finished.lock();
        if f.insert(rank) && f.len() as u32 == self.inner.spec.nranks {
            self.inner.all_done.set();
        }
    }

    pub(crate) fn spawn_cr_thread(&self, rank: u32, resume: Option<Arc<MigCycle>>) {
        let rt = self.clone();
        let ph = self
            .inner
            .cluster
            .handle()
            .spawn_daemon(&format!("cr-r{rank}"), move |ctx| {
                cr_thread(ctx, rt, rank, resume)
            });
        self.inner.cr_threads.lock().insert(rank, ph);
    }

    /// The checkpoint store for `kind` as seen from `node`. A PVFS
    /// request on a cluster without a PVFS deployment falls back to the
    /// node-local filesystem (the request-level precondition check in
    /// `cr_baseline::run_checkpoint` rejects user-facing misconfiguration
    /// before any dump starts).
    pub(crate) fn store_for(
        &self,
        kind: CrStoreKind,
        node: NodeId,
    ) -> Arc<dyn storesim::CkptStore> {
        match kind {
            CrStoreKind::LocalExt3 => Arc::new(self.inner.cluster.node(node).fs.clone()),
            CrStoreKind::Pvfs => match self.inner.cluster.pvfs() {
                Some(pvfs) => Arc::new(pvfs.client(node)),
                None => Arc::new(self.inner.cluster.node(node).fs.clone()),
            },
        }
    }

    pub(crate) fn resume_overhead(&self) -> Duration {
        calib::RESUME_BASE + calib::RESUME_PER_RANK * self.inner.spec.nranks
    }

    /// The lifecycle position of `rank` per the `protoverify` rank table.
    pub fn rank_life(&self, rank: u32) -> Option<RankLife> {
        self.inner.rank_life.lock().get(&rank).copied()
    }

    /// Advance `rank`'s lifecycle through the declarative rank table. A
    /// missing row means the runtime fired an event the spec forbids in
    /// the rank's current state — a protocol bug, trapped loudly (the
    /// model checker proves the shipped table, so this cannot fire unless
    /// the runtime drifts from it).
    pub(crate) fn rank_apply(&self, ctx: &Ctx, rank: u32, ev: RankEvent) {
        let mut life = self.inner.rank_life.lock();
        let cur = life.get(&rank).copied().unwrap_or(RankLife::Running);
        match rank_next(cur, ev) {
            Some(next) => {
                ctx.instant_with("proto", "rank_transition", || {
                    vec![
                        ("rank", rank.into()),
                        ("from", cur.name().into()),
                        ("event", ev.name().into()),
                        ("to", next.name().into()),
                    ]
                });
                life.insert(rank, next);
            }
            None => panic!(
                "rank lifecycle violation: rank {rank} got {} while {}",
                ev.name(),
                cur.name()
            ),
        }
    }
}

/// Advance an NLA through the declarative NLA table (see
/// `protoverify::spec::NLA_TABLE`). Like [`JobRuntime::rank_apply`], a
/// missing row is a protocol bug and is trapped loudly.
pub(crate) fn nla_apply(ctx: &Ctx, nla: &NlaShared, ev: NlaEvent) {
    let mut st = nla.state.lock();
    match nla_next(*st, ev) {
        Some(next) => {
            ctx.instant_with("proto", "nla_transition", || {
                vec![
                    ("node", nla.node.0.into()),
                    ("from", st.to_string().into()),
                    ("event", ev.name().into()),
                    ("to", next.to_string().into()),
                ]
            });
            *st = next;
        }
        None => panic!(
            "NLA protocol violation: node {} got {} while {}",
            nla.node,
            ev.name(),
            *st
        ),
    }
}

/// Step the migration-cycle phase machine and emit the transition to the
/// trace. [`StepError::NoTransition`] means runtime and spec disagree — a
/// protocol bug trapped loudly; [`StepError::GuardRejected`] is returned
/// to the caller (it is normal control flow, e.g. a retry with the budget
/// exhausted).
fn proto_step(
    ctx: &Ctx,
    stepper: &mut CycleStepper<'_>,
    ev: CycleEvent,
    g: &GuardCtx,
) -> Result<(), StepError> {
    let from = stepper.phase();
    match stepper.step(ev, g) {
        Ok(t) => {
            let to = t.to;
            ctx.instant_with("proto", "cycle_transition", || {
                vec![
                    ("from", from.name().into()),
                    ("event", ev.name().into()),
                    ("to", to.name().into()),
                ]
            });
            Ok(())
        }
        Err(e @ StepError::GuardRejected { .. }) => Err(e),
        Err(e @ StepError::NoTransition { .. }) => {
            panic!("migration cycle protocol violation: {e}")
        }
    }
}

// ---------------------------------------------------------------------------
// checkpoint image metadata framing
// ---------------------------------------------------------------------------

/// Pack C/R metadata into the image's app-state field:
/// `[completed_ops u64 LE][application state bytes]`.
pub(crate) fn wrap_meta(meta: &CrMeta) -> Bytes {
    let mut v = Vec::with_capacity(8 + meta.app_state.len());
    v.extend_from_slice(&meta.completed_ops.to_le_bytes());
    v.extend_from_slice(&meta.app_state);
    Bytes::from(v)
}

/// The image's metadata framing was malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MetaError {
    /// Bytes present in the app-state field (need at least 8).
    pub len: usize,
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "image meta truncated: {} bytes, need >= 8", self.len)
    }
}

/// Reverse of [`wrap_meta`], recombining with the image's segments.
/// Fails (instead of panicking) on a truncated app-state field so that a
/// corrupted image surfaces as a recoverable restart error.
pub(crate) fn unwrap_meta(image: &ProcessImage) -> Result<CrMeta, MetaError> {
    let Some(head) = image.app_state.get(..8) else {
        return Err(MetaError {
            len: image.app_state.len(),
        });
    };
    let mut le = [0u8; 8];
    le.copy_from_slice(head);
    Ok(CrMeta {
        app_state: image.app_state.slice(8..),
        completed_ops: u64::from_le_bytes(le),
        segments: image.segments.clone(),
    })
}

/// Build the BLCR image of `rank` from captured metadata.
pub(crate) fn build_image(rank: u32, meta: &CrMeta) -> ProcessImage {
    let mut img = ProcessImage::new(rank as u64, wrap_meta(meta));
    img.segments = meta.segments.clone();
    img
}

// ---------------------------------------------------------------------------
// Job Manager
// ---------------------------------------------------------------------------

fn jm_proc(ctx: &Ctx, rt: JobRuntime) {
    let login = rt.inner.cluster.login();
    let ftb = FtbClient::connect(rt.inner.cluster.ftb(), login, "job-manager");
    let sub = ftb.subscribe(&ctx.handle(), EventFilter::space(MPI_SPACE));
    loop {
        match rt.inner.triggers.pop(ctx) {
            Trigger::Migrate { req } => run_migration(ctx, &rt, &ftb, &sub, req),
            Trigger::Checkpoint { req } => {
                cr_baseline::run_checkpoint(ctx, &rt, &ftb, &sub, req.store)
            }
            Trigger::RestartFromCkpt { cycle } => cr_baseline::run_restart(ctx, &rt, cycle),
        }
    }
}

/// Pop events from `sub` until one matches `name` and its cycle id, or
/// the virtual-time `deadline` passes (other traffic — acks from old
/// cycles, suspend acks — is skipped). Returns `false` on timeout.
fn wait_named_until(
    ctx: &Ctx,
    sub: &Queue<FtbEvent>,
    name: &str,
    cycle: u64,
    deadline: SimTime,
) -> bool {
    loop {
        let now = ctx.now();
        if now >= deadline {
            return false;
        }
        let Some(ev) = sub.pop_timeout(ctx, deadline - now) else {
            return false;
        };
        if ev.name != name {
            continue;
        }
        let matches = match ev.name.as_str() {
            FTB_MIGRATE_PIIC => ev.payload_as::<PiicMsg>().map(|m| m.cycle == cycle),
            FTB_RESTART_DONE => ev.payload_as::<RestartMsg>().map(|m| m.cycle == cycle),
            _ => Some(true),
        };
        if matches == Some(true) {
            return true;
        }
    }
}

/// Pop events from `sub` until the `FTB_PRECOPY_DONE` for this cycle and
/// round arrives, or the deadline passes (`None`). Acks from abandoned
/// rounds of the same cycle are skipped by the round match.
fn wait_precopy_done_until(
    ctx: &Ctx,
    sub: &Queue<FtbEvent>,
    cycle: u64,
    round: u32,
    deadline: SimTime,
) -> Option<PrecopyDoneMsg> {
    loop {
        let now = ctx.now();
        if now >= deadline {
            return None;
        }
        let ev = sub.pop_timeout(ctx, deadline - now)?;
        if ev.name != FTB_PRECOPY_DONE {
            continue;
        }
        if let Some(m) = ev.payload_as::<PrecopyDoneMsg>() {
            if m.cycle == cycle && m.round == round {
                return Some(*m);
            }
        }
    }
}

/// Count `FTB_SUSPEND_ACK`s for `cycle` until all `n` ranks have
/// acknowledged — the Phase 1 fan-in the paper's Job Stall time measures.
/// Returns `false` if the deadline passes first.
fn wait_suspend_acks_until(
    ctx: &Ctx,
    sub: &Queue<FtbEvent>,
    cycle: u64,
    n: u32,
    deadline: SimTime,
) -> bool {
    let mut seen = HashSet::new();
    while seen.len() < n as usize {
        let now = ctx.now();
        if now >= deadline {
            return false;
        }
        let Some(ev) = sub.pop_timeout(ctx, deadline - now) else {
            return false;
        };
        if ev.name == FTB_SUSPEND_ACK {
            if let Some(a) = ev.payload_as::<SuspendAckMsg>() {
                if a.cycle == cycle {
                    seen.insert(a.rank);
                }
            }
        }
    }
    true
}

/// Wait for `ev` with a virtual-time deadline.
fn wait_event_until(ctx: &Ctx, ev: &Event, deadline: SimTime) -> bool {
    if ev.is_set() {
        return true;
    }
    let now = ctx.now();
    if now >= deadline {
        return false;
    }
    ev.wait_timeout(ctx, deadline - now)
}

/// Wait for `cd` with a virtual-time deadline.
fn wait_countdown_until(ctx: &Ctx, cd: &Countdown, deadline: SimTime) -> bool {
    let now = ctx.now();
    if now >= deadline {
        return false;
    }
    cd.wait_timeout(ctx, deadline - now)
}

fn record_outcome(ctx: &Ctx, rt: &JobRuntime, outcome: MigrationOutcome) {
    rt.inner.outcomes.lock().record(outcome);
    ctx.instant_with("log", "migration_outcome", || {
        vec![("outcome", outcome.name().into())]
    });
}

fn run_migration(
    ctx: &Ctx,
    rt: &JobRuntime,
    ftb: &FtbClient,
    sub: &Queue<FtbEvent>,
    req: MigrationRequest,
) {
    let inner = &rt.inner;
    // Resolve the source node.
    let source = match req.source {
        Some(s) => s,
        None => {
            let nlas = inner.nlas.lock();
            let mut candidates: Vec<NodeId> = nlas
                .values()
                .filter(|n| {
                    *n.state.lock() == NlaState::MigrationReady && !n.ranks.lock().is_empty()
                })
                .map(|n| n.node)
                .collect();
            candidates.sort();
            match candidates.first() {
                Some(s) => *s,
                None => return,
            }
        }
    };
    let ranks = {
        let nlas = inner.nlas.lock();
        match nlas.get(&source) {
            Some(n) if *n.state.lock() == NlaState::MigrationReady => n.ranks.lock().clone(),
            _ => {
                inner.pending_sources.lock().remove(&source);
                return;
            }
        }
    };
    if ranks.is_empty() {
        inner.pending_sources.lock().remove(&source);
        return;
    }

    // Self-healing attempt loop: each attempt leases a spare from the
    // front of the cluster's shared pool; a spare that survives its
    // failed attempt is returned for reuse. When the retry budget or the
    // spare pool is exhausted, degrade to a coordinated checkpoint so the
    // job remains recoverable (§III-A's failure handling, hardened).
    //
    // Control flow is driven through the declarative cycle table: every
    // attempt starts by stepping `Trigger`/`Retry` (whose `RetryPath`
    // guard owns the "spare available AND budget left" decision), and the
    // degrade path below is reached exactly when that guard rejects.
    let rec = req.effective_recovery(inner.spec.recovery);
    let plane = inner.cluster.fault_plane();
    if let Some(p) = &plane {
        // The plane may have been installed after launch; (re)arm the
        // journal so scheduled coordinator crashes fire on appends.
        inner.journal.install_fault_plane(p.clone());
    }
    let spec = MigrationSpec::shipped();
    let mut stepper = CycleStepper::new(&spec);
    let mut attempt = 0u32;
    // Live pre-copy applies to the first attempt only: a retry's target
    // died with everything pre-copied onto it, and re-running rounds
    // against the retry budget would stretch an already-failing cycle —
    // retries go straight to the classic stop-and-copy path.
    let live_requested = req.effective_pool(inner.spec.pool).live.is_some();
    loop {
        let begin = if attempt == 0 {
            if live_requested {
                CycleEvent::LiveTrigger
            } else {
                CycleEvent::Trigger
            }
        } else {
            CycleEvent::Retry
        };
        let epoch = inner.epoch.load(Ordering::Relaxed);
        // Lease before stepping: with several jobs migrating concurrently
        // the pool may drain between a check and a take, so the guard's
        // "spare available" answer must come from one atomic pool
        // operation. `spares_left` reports the pre-lease count.
        let attempts_left = rec.max_attempts.saturating_sub(attempt);
        let lease = if attempts_left > 0 {
            inner.pool.lease_at(inner.job_id, epoch)
        } else {
            None
        };
        let g = GuardCtx {
            spares_left: match lease {
                Some(_) => inner.pool.available() as u32 + 1,
                None => 0,
            },
            attempts_left,
        };
        if proto_step(ctx, &mut stepper, begin, &g).is_err() {
            // RetryPath rejected: no spare or no budget — degrade below.
            if let Some(n) = lease {
                inner.pool.release_front_at(n, inner.job_id, epoch);
            }
            break;
        }
        let Some(target) = lease else {
            // Unreachable: the guard admits only with a lease in hand.
            break;
        };
        attempt += 1;
        if attempt > 1 {
            ctx.sleep(rec.backoff_delay(attempt));
        }
        if rt.adopt_spare(ctx, target) {
            // Freshly spawned NLA daemon: give it a moment of virtual
            // time to connect and subscribe before FTB_MIGRATE goes out.
            ctx.sleep(Duration::from_millis(1));
        }
        // WAL: the attempt and its lease binding are on record before any
        // protocol side effect. A coordinator crash scheduled at either
        // boundary kills us between the append and the side effect —
        // `check_killed` unwinds this proc on the spot.
        let id = rt.next_cycle_id();
        inner.journal.append(WalRecord::CycleStart {
            cycle: id,
            source,
            attempt,
        });
        ctx.check_killed();
        inner.journal.append(WalRecord::LeaseAcquire {
            cycle: id,
            node: target,
            epoch,
        });
        ctx.check_killed();
        match run_attempt(
            ctx,
            rt,
            ftb,
            sub,
            &req,
            id,
            source,
            &ranks,
            target,
            attempt,
            plane.as_ref(),
            &rec,
            &mut stepper,
        ) {
            Ok(times) => {
                inner.journal.append(WalRecord::LeaseCommit {
                    cycle: id,
                    node: target,
                    epoch,
                });
                ctx.check_killed();
                inner.pool.consume_at(target, inner.job_id, epoch);
                let outcome = if attempt == 1 {
                    MigrationOutcome::Migrated
                } else {
                    MigrationOutcome::MigratedAfterRetry
                };
                record_outcome(ctx, rt, outcome);
                inner.mig_reports.lock().push(MigrationReport {
                    cycle: times.cycle,
                    source,
                    target,
                    precopy: times.precopy,
                    precopy_rounds: times.precopy_rounds,
                    stall: times.stall,
                    migrate: times.migrate,
                    restart: times.restart,
                    resume: times.resume,
                    ranks_moved: ranks.len(),
                    bytes_moved: times.bytes,
                    outcome,
                    attempts: attempt,
                });
                inner.pending_sources.lock().remove(&source);
                inner.journal.append(WalRecord::CycleEnd { cycle: id });
                ctx.check_killed();
                return;
            }
            Err(()) => continue,
        }
    }

    // Degraded path: no spare (or every attempt failed). Checkpoint the
    // whole job to storage so it can be recovered off the ailing node.
    let g = GuardCtx {
        spares_left: inner.pool.available() as u32,
        attempts_left: rec.max_attempts.saturating_sub(attempt),
    };
    proto_step(ctx, &mut stepper, CycleEvent::Degrade, &g) // jmlint: allow(hot_unwrap) — spec invariant trap
        .expect("Degrade must be enabled when the retry guard rejects");
    let store = if inner.cluster.pvfs().is_some() {
        CrStoreKind::Pvfs
    } else {
        CrStoreKind::LocalExt3
    };
    ctx.instant_with("log", "migration_fallback_cr", || {
        vec![
            ("source", source.0.into()),
            ("attempts", attempt.into()),
            ("store", store.to_string().into()),
        ]
    });
    cr_baseline::run_checkpoint(ctx, rt, ftb, sub, store);
    record_outcome(ctx, rt, MigrationOutcome::FellBackToCr);
    let cr_cycle = inner.cr_reports.lock().last().map(|r| r.cycle).unwrap_or(0);
    inner.mig_reports.lock().push(MigrationReport {
        cycle: cr_cycle,
        source,
        target: source, // nothing moved
        precopy: Duration::ZERO,
        precopy_rounds: 0,
        stall: Duration::ZERO,
        migrate: Duration::ZERO,
        restart: Duration::ZERO,
        resume: Duration::ZERO,
        ranks_moved: 0,
        bytes_moved: 0,
        outcome: MigrationOutcome::FellBackToCr,
        attempts: attempt,
    });
    inner.pending_sources.lock().remove(&source);
}

/// Phase durations of one successful attempt.
struct AttemptTimes {
    cycle: u64,
    precopy: Duration,
    precopy_rounds: u32,
    stall: Duration,
    migrate: Duration,
    restart: Duration,
    resume: Duration,
    bytes: u64,
}

/// One migration attempt: the four-phase protocol of §III-A under
/// per-phase virtual-time deadlines, plus scheduled spare-crash checks.
/// On any failure the cycle is aborted (ranks rolled back to the source
/// and resumed) and `Err` is returned; a surviving spare goes back to the
/// front of the pool.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    ctx: &Ctx,
    rt: &JobRuntime,
    ftb: &FtbClient,
    sub: &Queue<FtbEvent>,
    req: &MigrationRequest,
    id: u64,
    source: NodeId,
    ranks: &[u32],
    target: NodeId,
    attempt: u32,
    plane: Option<&FaultPlane>,
    rec: &calib::RecoveryConfig,
    stepper: &mut CycleStepper<'_>,
) -> Result<AttemptTimes, ()> {
    let inner = &rt.inner;
    let epoch = inner.epoch.load(Ordering::Relaxed);
    let handle = inner.cluster.handle();
    let n = inner.spec.nranks as u64;
    let pool = req.effective_pool(inner.spec.pool);
    let live = pool.live.filter(|_| attempt == 1).map(LiveState::new);
    let cycle = Arc::new(MigCycle {
        id,
        source,
        target,
        ranks: ranks.to_vec(),
        pool,
        stall_done: Countdown::new(handle, "mig-stall", n),
        rendezvous: PoolRendezvous::new(handle),
        source_pool: Mutex::new(None),
        source_pool_ready: Event::new(handle, "srcpool"),
        piic: Event::new(handle, "piic"),
        piic_bytes: Mutex::new(0),
        images: Mutex::new(HashMap::new()),
        images_ready: Event::new(handle, "images-ready"),
        rank_ready: ranks
            .iter()
            .map(|&r| (r, Event::new(handle, "image-ready")))
            .collect(),
        restart_done: Event::new(handle, "restart-done"),
        barrier: Countdown::new(handle, "mig-barrier", n),
        resumed: Countdown::new(handle, "mig-resumed", n),
        gate: Mutex::new(CycleGate::default()),
        captured_meta: Mutex::new(HashMap::new()),
        procs: Mutex::new(Vec::new()),
        restart_claim: Mutex::new(false),
        live,
    });
    inner.mig_cycles.lock().insert(id, cycle.clone());

    let crash = |phase: MigPhase| {
        plane
            .map(|p| p.take_spare_crash(phase, attempt))
            .unwrap_or(false)
    };
    let mut tree_adjusted = false;
    // Every in-attempt row (phase completions, fault effects) carries
    // `Guard::Always`, so the guard context contents are irrelevant here.
    let always = GuardCtx {
        spares_left: 0,
        attempts_left: 0,
    };

    // Abort this attempt: `$event` is the cycle-table fault effect
    // ([`CycleEvent::PhaseTimeout`] or [`CycleEvent::SpareCrash`]) and
    // `$spare_alive` decides whether the lease settles as a return to
    // the pool's front (retry reuses it) or a discard (the spare died).
    macro_rules! fail {
        ($event:expr, $reason:expr, $spare_alive:expr) => {{
            inner.journal.append(WalRecord::Rollback { cycle: id });
            ctx.check_killed();
            let _ = proto_step(ctx, stepper, $event, &always);
            abort_cycle(ctx, rt, &cycle, $reason, tree_adjusted);
            if $spare_alive {
                inner.pool.release_front_at(target, inner.job_id, epoch);
            } else {
                inner.pool.discard_at(target, inner.job_id, epoch);
            }
            inner.journal.append(WalRecord::CycleEnd { cycle: id });
            ctx.check_killed();
            return Err(());
        }};
    }

    // Each protocol phase is wrapped in a `"phase"` span carrying the
    // cycle id, so the Figure 4 decomposition can be rebuilt from the
    // trace alone (`telemetry::Timeline`).
    let phase_args = |req: &MigrationRequest| {
        let label = req.label.clone();
        move || {
            let mut a: simkit::Args = vec![
                ("cycle", id.into()),
                ("source", source.0.into()),
                ("target", target.0.into()),
                ("attempt", attempt.into()),
            ];
            if let Some(l) = &label {
                a.push(("label", l.as_str().into()));
            }
            a
        }
    };

    // Phase 0 — iterative pre-copy (live cycles only). The ranks keep
    // running throughout: nothing here holds the barrier, so a failed or
    // diverging round costs only the bytes already streamed — the cycle
    // degrades to the classic stop-and-copy phases below instead of
    // aborting. Only the spare dying aborts from here (there is nothing
    // to roll back: no rank ever suspended).
    let pre0 = ctx.now();
    if let Some(live) = &cycle.live {
        if crash(MigPhase::Precopy) {
            kill_spare(ctx, rt, target);
            fail!(CycleEvent::SpareCrash, "spare_crash", false);
        }
        inner.journal.append(WalRecord::PhaseEnter {
            cycle: id,
            phase: MigPhase::Precopy,
        });
        ctx.check_killed();
        let ph = ctx.span_with("phase", "precopy", phase_args(req));
        // The controller is instantiated after round 0 completes, so its
        // bandwidth estimate comes from the measured full-image round
        // rather than a static calibration constant.
        let mut policy: Option<Box<dyn livemig::ConvergencePolicy>> = None;
        let mut round: u32 = 0;
        let mut fell_back = false;
        loop {
            // Each round is one self-contained TransferSession; a fresh
            // rendezvous keeps a straggler from a failed round from
            // pairing with the next round's pool.
            live.begin_round(PoolRendezvous::new(handle));
            let r0 = ctx.now();
            ftb.publish(
                ctx,
                FtbEvent::with_payload(
                    MPI_SPACE,
                    FTB_PRECOPY,
                    Severity::Info,
                    inner.cluster.login(),
                    PrecopyMsg {
                        source,
                        target,
                        cycle: id,
                        round,
                        epoch,
                    },
                ),
            );
            let done = wait_precopy_done_until(ctx, sub, id, round, r0 + rec.migrate_timeout);
            let Some(done) = done.filter(|d| d.ok) else {
                fell_back = true;
                break;
            };
            let dur = ctx.now() - r0;
            inner.journal.append(WalRecord::PrecopyRound {
                cycle: id,
                round,
                bytes: done.bytes,
            });
            ctx.check_killed();
            let _ = proto_step(ctx, stepper, CycleEvent::PrecopyRound, &always);
            live.precopied.fetch_add(done.bytes, Ordering::Relaxed);
            live.rounds.fetch_add(1, Ordering::Relaxed);
            // Residual pending right now: the size of the next round (or
            // of the cutover stop-and-copy, if the verdict is to stop).
            let pending: u64 = ranks.iter().map(|&r| inner.job.cr(r).dirty_bytes()).sum();
            let report = livemig::RoundReport {
                round,
                bytes: done.bytes,
                pages: done.pages,
                duration: dur,
                dirty_bytes_pending: pending,
            };
            let p = policy.get_or_insert_with(|| {
                let bw = done.bytes as f64 / dur.as_secs_f64().max(1e-9);
                // The fixed floor covers only what the cutover timing can
                // influence (tree adjust + per-process restart base); the
                // constant Phase 4 resume is paid whenever we stop, so it
                // has no place in the convergence decision.
                live.cfg
                    .controller(bw, calib::SPAWN_TREE_ADJUST + calib::restart_costs().base)
            });
            let verdict = p.decide(&report);
            ctx.instant_with("live", "round_verdict", || {
                vec![
                    ("cycle", id.into()),
                    ("round", round.into()),
                    ("bytes", done.bytes.into()),
                    ("pending", pending.into()),
                    ("verdict", format!("{verdict:?}").into()),
                ]
            });
            match verdict {
                livemig::Decision::Continue => round += 1,
                livemig::Decision::CutOver => {
                    live.cutover.store(true, Ordering::Relaxed);
                    let _ = proto_step(ctx, stepper, CycleEvent::Cutover, &always);
                    break;
                }
                livemig::Decision::Fallback => {
                    fell_back = true;
                    break;
                }
            }
        }
        if fell_back {
            // Divergence, a timed-out round, or a failed pull: abandon
            // the pre-copied state and run the classic full stop-and-copy
            // below. The dirty trackers are disarmed so source ranks
            // stream complete images.
            let _ = proto_step(ctx, stepper, CycleEvent::FallbackStopCopy, &always);
            live.accums.lock().clear();
            for &r in ranks {
                inner.job.cr(r).disarm_dirty();
            }
            ctx.instant_with("log", "live_fallback", || {
                vec![("cycle", id.into()), ("rounds", round.into())]
            });
        }
        ph.end();
    }
    let precopy_wall = ctx.now() - pre0;

    // Phase 1 — Job Stall.
    if crash(MigPhase::Stall) {
        kill_spare(ctx, rt, target);
        fail!(CycleEvent::SpareCrash, "spare_crash", false);
    }
    inner.journal.append(WalRecord::PhaseEnter {
        cycle: id,
        phase: MigPhase::Stall,
    });
    ctx.check_killed();
    let t0 = ctx.now();
    let ph = ctx.span_with("phase", "stall", phase_args(req));
    ftb.publish(
        ctx,
        FtbEvent::with_payload(
            MPI_SPACE,
            FTB_MIGRATE,
            Severity::Error,
            inner.cluster.login(),
            MigrateMsg {
                source,
                target,
                cycle: id,
                epoch,
            },
        ),
    );
    let deadline = t0 + rec.stall_timeout;
    let ok = wait_suspend_acks_until(ctx, sub, id, inner.spec.nranks, deadline)
        && wait_countdown_until(ctx, &cycle.stall_done, deadline);
    ph.end();
    if !ok {
        fail!(CycleEvent::PhaseTimeout, "stall_timeout", true);
    }
    let _ = proto_step(ctx, stepper, CycleEvent::StallDone, &always);
    let t1 = ctx.now();

    // Phase 2 — Job Migration.
    if crash(MigPhase::Migrate) {
        kill_spare(ctx, rt, target);
        fail!(CycleEvent::SpareCrash, "spare_crash", false);
    }
    inner.journal.append(WalRecord::PhaseEnter {
        cycle: id,
        phase: MigPhase::Migrate,
    });
    ctx.check_killed();
    let ph = ctx.span_with("phase", "migrate", phase_args(req));
    // Pipelined data path: Phase 3 is kicked off *now*, overlapping the
    // pull — the spawn tree is adjusted and FTB_RESTART goes out while
    // chunks are still streaming, and the target's restart workers start
    // per rank on its `image_ready` event. The cycle-table event order
    // (MigrateDone before RestartDone) is unchanged: PIIC still closes
    // Phase 2 below, and Phase 3's *tail* beyond that point is what the
    // report attributes to restart. The overlapping `"phase"` spans are
    // rendered by `telemetry::Timeline` (sum vs wall).
    let restart_ph = if cycle.pool.overlap {
        inner
            .journal
            .append(WalRecord::NlaRewire { cycle: id, target });
        ctx.check_killed();
        ctx.sleep(calib::SPAWN_TREE_ADJUST);
        inner.spawn_tree.lock().replace(source, target);
        tree_adjusted = true;
        // Moved into `restart_ph` and ended at Phase 3's `ph.end()`.
        let p = ctx.span_with("phase", "restart", phase_args(req)); // jmlint: allow(span_exit)
        ftb.publish(
            ctx,
            FtbEvent::with_payload(
                MPI_SPACE,
                FTB_RESTART,
                Severity::Error,
                inner.cluster.login(),
                RestartMsg {
                    cycle: id,
                    target,
                    ranks: ranks.to_vec(),
                    epoch,
                },
            ),
        );
        Some(p)
    } else {
        None
    };
    let deadline = t1 + rec.migrate_timeout;
    let ok = wait_named_until(ctx, sub, FTB_MIGRATE_PIIC, id, deadline)
        && wait_event_until(ctx, &cycle.piic, deadline);
    ph.end();
    if !ok {
        fail!(CycleEvent::PhaseTimeout, "migrate_timeout", true);
    }
    let _ = proto_step(ctx, stepper, CycleEvent::MigrateDone, &always);
    let t2 = ctx.now();

    // Phase 3 — Restart on the spare (already underway in overlap mode).
    if crash(MigPhase::Restart) {
        kill_spare(ctx, rt, target);
        fail!(CycleEvent::SpareCrash, "spare_crash", false);
    }
    inner.journal.append(WalRecord::PhaseEnter {
        cycle: id,
        phase: MigPhase::Restart,
    });
    ctx.check_killed();
    let ph = match restart_ph {
        Some(p) => p,
        None => {
            // Moved out as `ph` and ended at Phase 3's `ph.end()`.
            let p = ctx.span_with("phase", "restart", phase_args(req)); // jmlint: allow(span_exit)
            inner
                .journal
                .append(WalRecord::NlaRewire { cycle: id, target });
            ctx.check_killed();
            ctx.sleep(calib::SPAWN_TREE_ADJUST);
            inner.spawn_tree.lock().replace(source, target);
            tree_adjusted = true;
            ftb.publish(
                ctx,
                FtbEvent::with_payload(
                    MPI_SPACE,
                    FTB_RESTART,
                    Severity::Error,
                    inner.cluster.login(),
                    RestartMsg {
                        cycle: id,
                        target,
                        ranks: ranks.to_vec(),
                        epoch,
                    },
                ),
            );
            p
        }
    };
    // The restart deadline runs from Phase 3's protocol start (t2): in
    // overlap mode the work began earlier, so the deadline only bounds
    // the tail that remains once the pull has drained.
    let deadline = t2 + rec.restart_timeout;
    let ok = wait_named_until(ctx, sub, FTB_RESTART_DONE, id, deadline)
        && wait_event_until(ctx, &cycle.restart_done, deadline);
    ph.end();
    if !ok {
        fail!(CycleEvent::PhaseTimeout, "restart_timeout", true);
    }
    let _ = proto_step(ctx, stepper, CycleEvent::RestartDone, &always);
    // The commit point: every rank restarted on the target — from here
    // the target is authoritative and recovery must roll forward.
    inner.journal.append(WalRecord::CommitPoint { cycle: id });
    ctx.check_killed();
    let t3 = ctx.now();

    // Phase 4 — Resume.
    if crash(MigPhase::Resume) {
        kill_spare(ctx, rt, target);
        fail!(CycleEvent::SpareCrash, "spare_crash", false);
    }
    inner.journal.append(WalRecord::PhaseEnter {
        cycle: id,
        phase: MigPhase::Resume,
    });
    ctx.check_killed();
    let ph = ctx.span_with("phase", "resume", phase_args(req));
    let deadline = t3 + rec.resume_timeout;
    let ok = wait_countdown_until(ctx, &cycle.resumed, deadline);
    ph.end();
    if !ok {
        fail!(CycleEvent::PhaseTimeout, "resume_timeout", true);
    }
    let _ = proto_step(ctx, stepper, CycleEvent::ResumeDone, &always);
    let t4 = ctx.now();

    let live_bytes = cycle
        .live
        .as_ref()
        .map_or(0, |l| l.precopied.load(Ordering::Relaxed));
    let bytes = *cycle.piic_bytes.lock() + live_bytes;
    Ok(AttemptTimes {
        cycle: id,
        precopy: precopy_wall,
        precopy_rounds: cycle
            .live
            .as_ref()
            .map_or(0, |l| l.rounds.load(Ordering::Relaxed)),
        stall: t1 - t0,
        migrate: t2 - t1,
        restart: t3 - t2,
        resume: t4 - t3,
        bytes,
    })
}

/// Simulate the abrupt death of spare node `node`: its NLA process, NLA
/// bookkeeping, and FTB agent all disappear. The caller aborts the cycle
/// afterwards; nothing is ever respawned on the dead node.
fn kill_spare(ctx: &Ctx, rt: &JobRuntime, node: NodeId) {
    ctx.instant_with("log", "spare_node_dead", || vec![("node", node.0.into())]);
    let inner = &rt.inner;
    if let Some(ph) = inner.nla_procs.lock().remove(&node) {
        ph.kill();
    }
    inner.nlas.lock().remove(&node);
    inner.cluster.ftb().kill_agent(node);
}

/// Abort a migration cycle mid-flight and roll the job back to a running
/// state on the source node.
///
/// Every rank that *entered* the cycle (suspended) is recovered: its C/R
/// thread is killed and respawned straight into Phase 4 (tolerant
/// barrier, endpoint rebuild, reopen); if its app incarnation died after
/// the Phase 2 metadata capture, the app is resurrected from that
/// captured state — on the source node, even if a Phase 3 restart had
/// already placed it on the target. Ranks that never entered are left
/// untouched (the gate turns them away from the stale events).
fn abort_cycle(
    ctx: &Ctx,
    rt: &JobRuntime,
    cycle: &Arc<MigCycle>,
    reason: &str,
    tree_adjusted: bool,
) {
    let inner = &rt.inner;
    ctx.instant_with("log", "cycle_abort", || {
        vec![
            ("cycle", cycle.id.into()),
            ("reason", reason.to_string().into()),
        ]
    });
    // Close the entry gate and snapshot who is inside the protocol.
    let entered: HashSet<u32> = {
        let mut g = cycle.gate.lock();
        g.aborted = true;
        g.entered.clone()
    };
    // Kill the cycle's worker processes (buffer-pool managers, the ack
    // loop, restart workers).
    for ph in cycle.procs.lock().drain(..) {
        ph.kill();
    }
    // A live cycle's dirty trackers are abandoned with the cycle: the
    // ranks roll back to (or never left) the source incarnation, which by
    // definition holds every write — nothing pre-copied is needed again.
    if cycle.live.is_some() {
        for &rank in &cycle.ranks {
            inner.job.cr(rank).disarm_dirty();
        }
    }
    let metas = cycle.captured_meta.lock().clone();
    let mut recover: Vec<u32> = Vec::new();
    for &rank in &cycle.ranks {
        if !entered.contains(&rank) {
            continue;
        }
        if let Some(ph) = inner.cr_threads.lock().get(&rank) {
            ph.kill();
        }
        if inner.job.rank_node(rank) == cycle.target {
            // A Phase 3 restart already placed this rank on the (now
            // abandoned) target; pull it back.
            rt.kill_app(rank);
            inner.job.set_rank_node(rank, cycle.source);
        }
        recover.push(rank);
    }
    // Release every non-source rank still parked on cycle primitives.
    // The barrier is force-completed because not all ranks necessarily
    // entered; `images_ready` is deliberately left unset (its only
    // consumers were just killed).
    cycle.stall_done.force_complete();
    cycle.barrier.force_complete();
    cycle.restart_done.set();
    // Resurrect the cycle's ranks and rejoin them through Phase 4.
    for rank in recover {
        if let Some(meta) = metas.get(&rank) {
            rt.rank_apply(ctx, rank, RankEvent::Resurrect);
            inner.job.cr(rank).restore_meta(meta.clone());
            inner.job.purge_stale_rts_from(rank);
            rt.spawn_app(rank);
        }
        rt.spawn_cr_thread(rank, Some(cycle.clone()));
    }
    // The source NLA goes back to hosting its ranks; a surviving target
    // NLA goes back to being a clean spare. Both moves go through the
    // declarative NLA table (legal from either side of the PIIC /
    // restart-complete boundaries).
    if let Some(nla) = inner.nlas.lock().get(&cycle.source) {
        nla_apply(ctx, nla, NlaEvent::RollbackSource);
        *nla.ranks.lock() = cycle.ranks.clone();
    }
    if let Some(nla) = inner.nlas.lock().get(&cycle.target) {
        nla_apply(ctx, nla, NlaEvent::RollbackTarget);
        nla.ranks.lock().clear();
    }
    if tree_adjusted {
        inner.spawn_tree.lock().replace(cycle.target, cycle.source);
    }
}

fn health_bridge(ctx: &Ctx, rt: JobRuntime) {
    let login = rt.inner.cluster.login();
    let client = FtbClient::connect(rt.inner.cluster.ftb(), login, "health-bridge");
    let sub = client.subscribe(
        &ctx.handle(),
        EventFilter {
            space: Some(healthmon::HEALTH_SPACE.to_string()),
            name: None,
            min_severity: Some(Severity::Error),
        },
    );
    loop {
        let ev = sub.pop(ctx);
        let Some(alert) = ev.payload_as::<healthmon::HealthAlert>() else {
            continue;
        };
        let node = alert.node;
        let hosts_ranks = {
            let nlas = rt.inner.nlas.lock();
            nlas.get(&node)
                .map(|n| *n.state.lock() == NlaState::MigrationReady && !n.ranks.lock().is_empty())
                .unwrap_or(false)
        };
        if hosts_ranks && rt.inner.pending_sources.lock().insert(node) {
            rt.inner.triggers.push(Trigger::Migrate {
                req: MigrationRequest::new().from_node(node).label("health-auto"),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Standby coordinator
// ---------------------------------------------------------------------------

/// The standby coordinator: waits for the live Job Manager's death
/// signal, fences the deposed epoch, recovers the in-flight cycle from
/// the WAL journal, then respawns a fresh Job Manager generation and
/// goes back to standing by (so chained coordinator crashes in later
/// cycles are survivable too).
fn standby_proc(ctx: &Ctx, rt: JobRuntime) {
    let login = rt.inner.cluster.login();
    let ftb = FtbClient::connect(rt.inner.cluster.ftb(), login, "standby");
    loop {
        let dead = rt.inner.coord.dead();
        dead.wait(ctx);
        // Failure-detector confirmation window before acting.
        ctx.sleep(calib::TAKEOVER_DETECT);
        takeover(ctx, &rt, &ftb);
        // Respawn the Job Manager under the new epoch and re-arm the
        // crash signal for the next generation.
        let epoch = rt.fencing_epoch();
        let handle = rt.inner.cluster.handle();
        let rt2 = rt.clone();
        let name = format!("{}-g{epoch}", rt.proc_name("job-manager", ""));
        let jm = handle.spawn_daemon(&name, move |ctx| jm_proc(ctx, rt2));
        rt.inner.coord.arm(jm, Event::new(handle, "coord-dead"));
    }
}

/// One takeover: bump the fencing epoch, fence the spare pool, replay the
/// journal tail, and either finish the in-flight cycle (resume-from-point
/// / roll-forward past the commit point) or roll it back to the source.
fn takeover(ctx: &Ctx, rt: &JobRuntime, ftb: &FtbClient) {
    let inner = &rt.inner;
    let epoch = inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
    let adopted = inner.pool.fence(inner.job_id, epoch) as u64;
    let fl = inner.journal.in_flight();
    let in_flight_cycle = fl.as_ref().map(|f| f.cycle).unwrap_or(0);
    ctx.instant_with("wal", "takeover", || {
        vec![
            ("epoch", epoch.into()),
            ("adopted_leases", adopted.into()),
            ("cycle", in_flight_cycle.into()),
        ]
    });
    // Reconcile the pool against the journal: the lease is acquired just
    // before the cycle's first record, so a crash at the `CycleStart`
    // boundary leaves a lease the tail cannot yet see. Any lease of ours
    // the journal does not account for is returned to the pool (the
    // pool, having survived the crash, is the lease's source of truth).
    let accounted = fl.as_ref().and_then(|f| f.lease.map(|(n, _)| n));
    for (node, job) in inner.pool.leases() {
        if job == inner.job_id && Some(node) != accounted {
            inner.pool.release_front_at(node, inner.job_id, epoch);
        }
    }
    let Some(fl) = fl else {
        // Clean journal tail: the coordinator died between cycles.
        return;
    };
    let rec = inner.spec.recovery;
    let Some(cycle) = rt.mig_cycle(fl.cycle) else {
        // The crash landed between the CycleStart/LeaseAcquire records
        // and the cycle's construction: no side effect is visible
        // anywhere. Settle the lease and close the cycle on the record.
        if let Some((node, _)) = fl.lease {
            inner.pool.release_front_at(node, inner.job_id, epoch);
        }
        inner
            .journal
            .append(WalRecord::Rollback { cycle: fl.cycle });
        settle_standby_outcome(
            ctx,
            rt,
            &fl,
            fl.source,
            0,
            0,
            MigrationOutcome::RolledBackByStandby,
        );
        return;
    };
    if fl.rolling_back {
        // The dead coordinator had decided to abort but died before
        // executing it (crashes only fire at append boundaries, and the
        // Rollback record precedes `abort_cycle`). Finish the rollback.
        standby_rollback(ctx, rt, &cycle, &fl, epoch, fl.rewired);
        return;
    }
    if fl.committed {
        roll_forward(ctx, rt, &cycle, &fl, epoch, &rec);
        return;
    }
    // Pre-commit. If the cycle never became visible to the job (the
    // deepest record is the Stall phase entry, which precedes the
    // FTB_MIGRATE publish — or any Precopy record, during which the job
    // was still running untouched on the source), nothing suspended:
    // rollback is a cheap settle. A takeover mid-pre-copy deliberately
    // abandons the rounds rather than resuming them: the accumulated
    // target state lived in the dead coordinator's cycle bookkeeping, and
    // the source incarnation still holds every byte. Otherwise the data
    // path is still progressing on its own — resume from the journal's
    // point with fresh deadlines, re-executing only the pending
    // coordinator side effects, and roll back if any fresh deadline
    // passes.
    let visible = fl
        .phase
        .map(|p| !matches!(p, MigPhase::Stall | MigPhase::Precopy))
        .unwrap_or(false);
    if !visible {
        standby_rollback(ctx, rt, &cycle, &fl, epoch, fl.rewired);
        return;
    }
    let mut adjusted = fl.rewired;
    // Phase 2 tail: the source NLA publishes PIIC on its own.
    if !wait_event_until(ctx, &cycle.piic, ctx.now() + rec.migrate_timeout) {
        standby_rollback(ctx, rt, &cycle, &fl, epoch, adjusted);
        return;
    }
    // Phase 3: the WAL cannot prove the restart broadcast went out (a
    // crash at the NlaRewire boundary leaves the record durable but the
    // publish unexecuted), so re-execute idempotently: the spawn-tree
    // replace is a no-op when already done and the cycle's claim guard
    // makes a duplicate FTB_RESTART inert.
    if !cycle.restart_done.is_set() {
        if !fl.rewired {
            inner.journal.append(WalRecord::NlaRewire {
                cycle: fl.cycle,
                target: cycle.target,
            });
        }
        ctx.sleep(calib::SPAWN_TREE_ADJUST);
        inner.spawn_tree.lock().replace(fl.source, cycle.target);
        adjusted = true;
        ftb.publish(
            ctx,
            FtbEvent::with_payload(
                MPI_SPACE,
                FTB_RESTART,
                Severity::Error,
                inner.cluster.login(),
                RestartMsg {
                    cycle: fl.cycle,
                    target: cycle.target,
                    ranks: cycle.ranks.clone(),
                    epoch,
                },
            ),
        );
    }
    if !wait_event_until(ctx, &cycle.restart_done, ctx.now() + rec.restart_timeout) {
        standby_rollback(ctx, rt, &cycle, &fl, epoch, adjusted);
        return;
    }
    inner
        .journal
        .append(WalRecord::CommitPoint { cycle: fl.cycle });
    roll_forward(ctx, rt, &cycle, &fl, epoch, &rec);
}

/// Post-commit recovery: every rank restarted on the target, so the only
/// correct direction is forward — wait out Phase 4 (the ranks drive it
/// themselves), settle the lease as consumed, and account the cycle.
fn roll_forward(
    ctx: &Ctx,
    rt: &JobRuntime,
    cycle: &Arc<MigCycle>,
    fl: &InFlight,
    epoch: u64,
    rec: &calib::RecoveryConfig,
) {
    let inner = &rt.inner;
    if !wait_countdown_until(ctx, &cycle.resumed, ctx.now() + rec.resume_timeout) {
        // Defensive: a committed cycle cannot be rolled back and its
        // resume did not land — account the trigger as lost rather than
        // hang the takeover (expected never; Phase 4 needs no
        // coordinator).
        settle_standby_outcome(ctx, rt, fl, cycle.target, 0, 0, MigrationOutcome::Lost);
        return;
    }
    if let Some((node, _)) = fl.lease {
        if !fl.lease_committed {
            inner.journal.append(WalRecord::LeaseCommit {
                cycle: fl.cycle,
                node,
                epoch,
            });
        }
        inner.pool.consume_at(node, inner.job_id, epoch);
    }
    let bytes = *cycle.piic_bytes.lock();
    settle_standby_outcome(
        ctx,
        rt,
        fl,
        cycle.target,
        cycle.ranks.len(),
        bytes,
        MigrationOutcome::ResumedByStandby,
    );
}

/// Pre-commit recovery: finish (or initiate) the rollback the journal
/// demands — abort the cycle, return the spare to the pool's front under
/// the new epoch, and account the trigger.
fn standby_rollback(
    ctx: &Ctx,
    rt: &JobRuntime,
    cycle: &Arc<MigCycle>,
    fl: &InFlight,
    epoch: u64,
    tree_adjusted: bool,
) {
    let inner = &rt.inner;
    if !fl.rolling_back {
        inner
            .journal
            .append(WalRecord::Rollback { cycle: fl.cycle });
    }
    abort_cycle(ctx, rt, cycle, "coordinator_crash", tree_adjusted);
    if let Some((node, _)) = fl.lease {
        inner.pool.release_front_at(node, inner.job_id, epoch);
    }
    settle_standby_outcome(
        ctx,
        rt,
        fl,
        cycle.target,
        0,
        0,
        MigrationOutcome::RolledBackByStandby,
    );
}

/// Common tail of every standby recovery path: outcome counter, report
/// (phase durations are zero — the dead coordinator's phase clocks died
/// with it), pending-source cleanup, and the closing `CycleEnd` record.
fn settle_standby_outcome(
    ctx: &Ctx,
    rt: &JobRuntime,
    fl: &InFlight,
    target: NodeId,
    ranks_moved: usize,
    bytes_moved: u64,
    outcome: MigrationOutcome,
) {
    let inner = &rt.inner;
    record_outcome(ctx, rt, outcome);
    inner.mig_reports.lock().push(MigrationReport {
        cycle: fl.cycle,
        source: fl.source,
        target,
        precopy: Duration::ZERO,
        precopy_rounds: fl.precopy_rounds,
        stall: Duration::ZERO,
        migrate: Duration::ZERO,
        restart: Duration::ZERO,
        resume: Duration::ZERO,
        ranks_moved,
        bytes_moved,
        outcome,
        attempts: fl.attempt,
    });
    inner.pending_sources.lock().remove(&fl.source);
    inner
        .journal
        .append(WalRecord::CycleEnd { cycle: fl.cycle });
}

// ---------------------------------------------------------------------------
// Node Launch Agent
// ---------------------------------------------------------------------------

fn nla_proc(ctx: &Ctx, rt: JobRuntime, node: NodeId) {
    let inner = &rt.inner;
    let nla = inner.nlas.lock()[&node].clone();
    // Startup: launch local MPI processes (fork/exec cost per rank),
    // build endpoints untimed, start app + C/R threads.
    let local_ranks = nla.ranks.lock().clone();
    for rank in &local_ranks {
        ctx.sleep(calib::NLA_SPAWN);
        let cr = inner.job.cr(*rank);
        cr.rebuild_endpoints(ctx, false);
        cr.reopen();
        rt.spawn_app(*rank);
        rt.spawn_cr_thread(*rank, None);
    }

    let ftb = FtbClient::connect(inner.cluster.ftb(), node, &format!("nla@{node}"));
    let sub = ftb.subscribe(&ctx.handle(), EventFilter::space(MPI_SPACE));
    // Protocol work runs in spawned children registered with the cycle,
    // so an abort can kill them without taking down the NLA itself.
    loop {
        let ev = sub.pop(ctx);
        match ev.name.as_str() {
            FTB_MIGRATE => {
                let Some(m) = ev.payload_as::<MigrateMsg>() else {
                    continue;
                };
                let m = *m;
                if m.epoch < rt.fencing_epoch() {
                    // Fenced: published under a deposed coordinator epoch.
                    ctx.instant_with("wal", "fenced_publish", || {
                        vec![
                            ("name", FTB_MIGRATE.into()),
                            ("cycle", m.cycle.into()),
                            ("epoch", m.epoch.into()),
                        ]
                    });
                    continue;
                }
                let Some(cycle) = rt.mig_cycle(m.cycle) else {
                    continue;
                };
                if m.source == node {
                    let rt2 = rt.clone();
                    let nla2 = nla.clone();
                    let ftb2 = ftb.clone();
                    let ph = ctx.spawn_daemon(&format!("mig{}-src@{node}", m.cycle), move |ctx| {
                        let Some(cycle) = rt2.mig_cycle(m.cycle) else {
                            return;
                        };
                        if cycle.is_aborted() {
                            return;
                        }
                        source_side_phase2(ctx, &rt2, &nla2, &ftb2, m);
                    });
                    cycle.track(ph);
                } else if m.target == node {
                    let rt2 = rt.clone();
                    let ph = ctx.spawn_daemon(&format!("mig{}-pull@{node}", m.cycle), move |ctx| {
                        let Some(cycle) = rt2.mig_cycle(m.cycle) else {
                            return;
                        };
                        if cycle.is_aborted() {
                            return;
                        }
                        target_side_pull(ctx, &rt2, m);
                    });
                    cycle.track(ph);
                }
            }
            FTB_PRECOPY => {
                let Some(m) = ev.payload_as::<PrecopyMsg>() else {
                    continue;
                };
                let m = *m;
                if m.epoch < rt.fencing_epoch() {
                    ctx.instant_with("wal", "fenced_publish", || {
                        vec![
                            ("name", FTB_PRECOPY.into()),
                            ("cycle", m.cycle.into()),
                            ("epoch", m.epoch.into()),
                        ]
                    });
                    continue;
                }
                let Some(cycle) = rt.mig_cycle(m.cycle) else {
                    continue;
                };
                if m.source == node {
                    let rt2 = rt.clone();
                    let nla2 = nla.clone();
                    let ph = ctx.spawn_daemon(
                        &format!("mig{}-pre{}-src@{node}", m.cycle, m.round),
                        move |ctx| {
                            let Some(cycle) = rt2.mig_cycle(m.cycle) else {
                                return;
                            };
                            if cycle.is_aborted() {
                                return;
                            }
                            source_side_precopy(ctx, &rt2, &nla2, m);
                        },
                    );
                    cycle.track(ph);
                } else if m.target == node {
                    let rt2 = rt.clone();
                    let ftb2 = ftb.clone();
                    let ph = ctx.spawn_daemon(
                        &format!("mig{}-pre{}-pull@{node}", m.cycle, m.round),
                        move |ctx| {
                            let Some(cycle) = rt2.mig_cycle(m.cycle) else {
                                return;
                            };
                            if cycle.is_aborted() {
                                return;
                            }
                            target_side_precopy(ctx, &rt2, &ftb2, m);
                        },
                    );
                    cycle.track(ph);
                }
            }
            FTB_RESTART => {
                let Some(r) = ev.payload_as::<RestartMsg>() else {
                    continue;
                };
                if r.epoch < rt.fencing_epoch() {
                    let (cycle, epoch) = (r.cycle, r.epoch);
                    ctx.instant_with("wal", "fenced_publish", || {
                        vec![
                            ("name", FTB_RESTART.into()),
                            ("cycle", cycle.into()),
                            ("epoch", epoch.into()),
                        ]
                    });
                    continue;
                }
                if r.target == node {
                    let r = r.clone();
                    let rt2 = rt.clone();
                    let nla2 = nla.clone();
                    let ftb2 = ftb.clone();
                    let Some(cycle) = rt.mig_cycle(r.cycle) else {
                        continue;
                    };
                    if !cycle.claim_restart() {
                        // Duplicate broadcast (original + standby
                        // re-publish); the first reaction owns Phase 3.
                        continue;
                    }
                    let ph =
                        ctx.spawn_daemon(&format!("mig{}-restart@{node}", r.cycle), move |ctx| {
                            let Some(cycle) = rt2.mig_cycle(r.cycle) else {
                                return;
                            };
                            if cycle.is_aborted() {
                                return;
                            }
                            target_side_restart(ctx, &rt2, &nla2, &ftb2, r);
                        });
                    cycle.track(ph);
                }
            }
            _ => {}
        }
    }
}

/// Source NLA, one pre-copy round: capture each local rank's state while
/// it keeps running and stream it through a fresh per-round buffer pool —
/// the full image at round 0 (arming dirty tracking first, so no write
/// after the capture can be lost), a dirty-segment delta afterwards.
fn source_side_precopy(ctx: &Ctx, rt: &JobRuntime, nla: &Arc<NlaShared>, m: PrecopyMsg) {
    let inner = &rt.inner;
    let Some(cycle) = rt.mig_cycle(m.cycle) else {
        return;
    };
    let Some(live) = &cycle.live else {
        return;
    };
    let Some(rv) = live.round_rendezvous() else {
        return;
    };
    let ranks = nla.ranks.lock().clone();
    let hca = inner.cluster.fabric().attach(m.source);
    let (pool, ackloop) =
        TransferSession::from_config(cycle.pool).source(ctx, &hca, ranks.len() as u32, &rv);
    cycle.track(ackloop);
    let blcr = &inner.cluster.node(m.source).blcr;
    for rank in ranks {
        let cr = inner.job.cr(rank);
        let image = if m.round == 0 {
            // Arm *before* capturing: a write landing during the capture
            // is re-sent in round 1 — duplicated, never lost.
            cr.arm_dirty(live.cfg.page);
            let meta = cr.capture_meta();
            build_image(rank, &meta)
        } else {
            match cr.take_dirty() {
                Some(snap) => {
                    let meta = cr.capture_meta();
                    livemig::delta::encode(
                        rank as u64,
                        &wrap_meta(&meta),
                        &meta.segments,
                        &snap,
                        m.round,
                    )
                }
                None => {
                    // Tracking vanished (rank restored elsewhere?): stream
                    // the full image — correct, if not fast.
                    let meta = cr.capture_meta();
                    build_image(rank, &meta)
                }
            }
        };
        let mut sink = pool.sink(ctx, rank, image.checksum());
        if blcr.try_checkpoint(ctx, &image, &mut sink).is_err() {
            // Incomplete stream: the target's pull stalls and the round
            // deadline degrades the cycle to stop-and-copy.
            ctx.instant_with("ckpt", "precopy_dump_failed", || {
                vec![
                    ("rank", rank.into()),
                    ("cycle", m.cycle.into()),
                    ("round", m.round.into()),
                ]
            });
        }
    }
}

/// Target NLA, one pre-copy round: pull the round's streams, then merge
/// each rank's payload into its [`livemig::ImageAccumulator`] (paying
/// parse + populate cost for exactly the pulled bytes — all overlapped
/// with the running application) and report the round to the Job Manager.
fn target_side_precopy(ctx: &Ctx, rt: &JobRuntime, ftb: &FtbClient, m: PrecopyMsg) {
    let inner = &rt.inner;
    let Some(cycle) = rt.mig_cycle(m.cycle) else {
        return;
    };
    let Some(live) = &cycle.live else {
        return;
    };
    let Some(rv) = live.round_rendezvous() else {
        return;
    };
    let hca = inner.cluster.fabric().attach(m.target);
    let res = inner.cluster.node(m.target);
    let store: Arc<dyn storesim::CkptStore> = Arc::new(res.fs.clone());
    let hooks = TargetHooks {
        on_rank_ready: None,
        on_spawn: Some(Arc::new({
            let cycle = cycle.clone();
            move |ph| cycle.track(ph)
        })),
    };
    let report = |ok: bool, bytes: u64, pages: u64| {
        ftb.publish(
            ctx,
            FtbEvent::with_payload(
                MPI_SPACE,
                FTB_PRECOPY_DONE,
                Severity::Info,
                m.target,
                PrecopyDoneMsg {
                    cycle: m.cycle,
                    round: m.round,
                    ok,
                    bytes,
                    pages,
                },
            ),
        );
    };
    let result = match TransferSession::from_config(cycle.pool).target_with(
        ctx,
        &hca,
        &rv,
        store,
        &format!("mig.{}.pre{}", m.cycle, m.round),
        hooks,
    ) {
        Ok(r) => r,
        Err(abort) => {
            ctx.instant_with("pool", "precopy_pull_aborted", || {
                vec![
                    ("cycle", m.cycle.into()),
                    ("round", m.round.into()),
                    ("reason", abort.reason.into()),
                ]
            });
            report(false, abort.bytes_pulled, 0);
            return;
        }
    };
    // Collect-and-sort: the session's image map is a HashMap and merge
    // order must not depend on hash order.
    // jmlint: allow(hash_iter)
    let mut staged: Vec<(u32, AssembledImage)> = result.images.into_iter().collect();
    staged.sort_by_key(|(rank, _)| *rank);
    let mut pages = 0u64;
    let mut ok = true;
    for (rank, info) in staged {
        let parsed = match info.slices {
            Some(slices) => res.blcr.restart(
                ctx,
                &mut blcrsim::MemSource::new(slices),
                &calib::restart_costs(),
            ),
            None => {
                let store: Arc<dyn storesim::CkptStore> = Arc::new(res.fs.clone());
                let mut src = StoreSource::new(store, info.path.clone());
                res.blcr.restart(ctx, &mut src, &calib::restart_costs())
            }
        };
        let Ok(img) = parsed else {
            ok = false;
            continue;
        };
        if img.checksum() != info.expected_checksum {
            // A corrupt round payload never reaches the accumulator; the
            // controller falls back to classic stop-and-copy.
            ok = false;
            continue;
        }
        let mut accums = live.accums.lock();
        match livemig::delta::decode(&img) {
            Ok(Some(d)) => {
                pages += d
                    .runs
                    .iter()
                    .map(|r| r.data.len.div_ceil(d.page.max(1)))
                    .sum::<u64>();
                if accums.entry(rank).or_default().apply(&d).is_err() {
                    ok = false;
                }
            }
            Ok(None) => accums.entry(rank).or_default().seed_full(img),
            Err(_) => ok = false,
        }
    }
    report(ok, result.bytes_pulled, pages);
}

/// Source NLA, Phase 2: stand up the buffer manager, wait until every
/// local image has been pulled and acknowledged, publish PIIC, go
/// inactive.
fn source_side_phase2(
    ctx: &Ctx,
    rt: &JobRuntime,
    nla: &Arc<NlaShared>,
    ftb: &FtbClient,
    m: MigrateMsg,
) {
    let inner = &rt.inner;
    let Some(cycle) = rt.mig_cycle(m.cycle) else {
        return;
    };
    let nlocal = nla.ranks.lock().len() as u32;
    let hca = inner.cluster.fabric().attach(m.source);
    let (pool, ackloop) =
        TransferSession::from_config(cycle.pool).source(ctx, &hca, nlocal, &cycle.rendezvous);
    cycle.track(ackloop);
    cycle.set_source_pool(pool.clone());
    pool.finished().wait(ctx);
    *cycle.piic_bytes.lock() = pool.bytes_streamed();
    nla_apply(ctx, nla, NlaEvent::SourceDrained);
    let moved = std::mem::take(&mut *nla.ranks.lock());
    ftb.publish(
        ctx,
        FtbEvent::with_payload(
            MPI_SPACE,
            FTB_MIGRATE_PIIC,
            Severity::Info,
            m.source,
            PiicMsg {
                cycle: m.cycle,
                ranks: moved,
                bytes_moved: pool.bytes_streamed(),
            },
        ),
    );
    cycle.piic.set();
}

/// Target NLA, Phase 2 (receiving side): pull chunks and assemble images
/// into buffered temp files on the local filesystem.
fn target_side_pull(ctx: &Ctx, rt: &JobRuntime, m: MigrateMsg) {
    let inner = &rt.inner;
    let Some(cycle) = rt.mig_cycle(m.cycle) else {
        return;
    };
    let hca = inner.cluster.fabric().attach(m.target);
    let store: Arc<dyn storesim::CkptStore> = Arc::new(inner.cluster.node(m.target).fs.clone());
    // As each rank's image finishes assembly the pool hands it over here,
    // and the per-rank `rank_ready` event releases that rank's restart
    // worker — in overlap mode, while other ranks are still streaming.
    let hooks = TargetHooks {
        on_rank_ready: Some(Arc::new({
            let cycle = cycle.clone();
            let journal = inner.journal.clone();
            move |ctx: &Ctx, rank: u32, image: AssembledImage| {
                // NLA-side WAL append: recorded before the image is handed
                // over. Appenders on the data path survive a coordinator
                // crash (the crash hook kills only the Job Manager), so
                // the journal keeps tracking per-rank progress — exactly
                // what lets the standby resume from the last verified
                // point instead of rolling back.
                journal.append(WalRecord::RankImageReady {
                    cycle: cycle.id,
                    rank,
                });
                cycle.images.lock().insert(rank, image);
                if let Some(ev) = cycle.rank_ready.get(&rank) {
                    ev.set();
                }
                ctx.instant_with("pool", "rank_image_ready", || {
                    vec![("cycle", cycle.id.into()), ("rank", rank.into())]
                });
            }
        })),
        on_spawn: Some(Arc::new({
            let cycle = cycle.clone();
            move |ph| cycle.track(ph)
        })),
    };
    match TransferSession::from_config(cycle.pool).target_with(
        ctx,
        &hca,
        &cycle.rendezvous,
        store,
        &format!("mig.{}", m.cycle),
        hooks,
    ) {
        Ok(result) => {
            *cycle.images.lock() = result.images;
            cycle.images_ready.set();
        }
        Err(abort) => {
            // Leave `images_ready` unset: the Job Manager's Phase 2/3
            // deadline aborts the cycle and retries or degrades.
            ctx.instant_with("pool", "pull_aborted", || {
                vec![
                    ("cycle", m.cycle.into()),
                    ("reason", abort.reason.into()),
                    ("rank", abort.rank.map(u64::from).unwrap_or(u64::MAX).into()),
                    ("lane", u64::from(abort.lane).into()),
                    ("bytes_pulled", abort.bytes_pulled.into()),
                ]
            });
        }
    }
}

/// Target NLA, Phase 3: restart every migrated process from its image.
fn target_side_restart(
    ctx: &Ctx,
    rt: &JobRuntime,
    nla: &Arc<NlaShared>,
    ftb: &FtbClient,
    r: RestartMsg,
) {
    let inner = &rt.inner;
    let Some(cycle) = rt.mig_cycle(r.cycle) else {
        return;
    };
    let overlap = cycle.pool.overlap;
    if !overlap {
        // Barrier mode (the paper's protocol): no rank restarts until the
        // whole pull has landed.
        cycle.images_ready.wait(ctx);
    }
    let res = inner.cluster.node(r.target);
    let cold = calib::RESTART_READS_COLD && cycle.pool.restart_mode == RestartMode::FileBased;
    if cold && !overlap {
        use storesim::CkptStore;
        res.fs.drop_caches();
    }
    // Restart admission throttles how many ranks hit the local disk at
    // once: with all images behind one degraded-sharing spindle, a full
    // fan-out of cold readers is slower end-to-end than a small window.
    let admission = match cycle.pool.restart_admission {
        0 => r.ranks.len() as u32,
        n => n,
    };
    let gate = Semaphore::new(&ctx.handle(), admission.into());
    let done = Countdown::new(&ctx.handle(), "restart-workers", r.ranks.len() as u64);
    let failures = Arc::new(AtomicU64::new(0));
    for rank in r.ranks.clone() {
        let rt2 = rt.clone();
        let cycle2 = cycle.clone();
        let done2 = done.clone();
        let failures2 = failures.clone();
        let gate2 = gate.clone();
        let fs2 = res.fs.clone();
        let target = r.target;
        let ph = ctx.spawn_daemon(&format!("restart-r{rank}"), move |ctx| {
            if overlap {
                // Start the moment *this* rank's image is assembled,
                // while other ranks are still streaming.
                if let Some(ev) = cycle2.rank_ready.get(&rank) {
                    ev.wait(ctx);
                }
            }
            gate2.acquire(ctx, 1);
            if cold && overlap {
                // Evict only this rank's image right before its read, so
                // every restart read is cold (matching barrier-mode
                // semantics) without flushing files still being staged.
                use storesim::CkptStore;
                let path = cycle2
                    .images
                    .lock()
                    .get(&rank)
                    .and_then(|i| i.slices.is_none().then(|| i.path.clone()));
                if let Some(path) = path {
                    fs2.evict(&path);
                }
            }
            ctx.instant_with("pool", "restart_begin", || {
                vec![("cycle", cycle2.id.into()), ("rank", rank.into())]
            });
            if let Err(e) = restart_one_rank(ctx, &rt2, &cycle2, rank, target) {
                ctx.instant_with("log", "restart_rank_failed", || {
                    vec![
                        ("rank", rank.into()),
                        ("cycle", cycle2.id.into()),
                        ("error", e.to_string().into()),
                    ]
                });
                failures2.fetch_add(1, Ordering::Relaxed);
            }
            gate2.release(1);
            done2.arrive();
        });
        cycle.track(ph);
    }
    done.wait(ctx);
    if failures.load(Ordering::Relaxed) > 0 {
        // Leave `restart_done` unset: the Job Manager's Phase 3 deadline
        // aborts the cycle, rolls the ranks back to the source, and
        // retries or degrades — the failure lands in `MigrationOutcome`
        // instead of tearing down the simulation.
        return;
    }
    *nla.ranks.lock() = r.ranks.clone();
    nla_apply(ctx, nla, NlaEvent::RestartComplete);
    ftb.publish(
        ctx,
        FtbEvent::with_payload(
            MPI_SPACE,
            FTB_RESTART_DONE,
            Severity::Info,
            r.target,
            r.clone(),
        ),
    );
    cycle.restart_done.set();
}

/// Why a single rank's Phase 3 restart failed. Routed (via the Phase 3
/// deadline abort) into [`MigrationOutcome`] accounting rather than
/// panicking the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RestartRankError {
    /// The cycle's image table has no entry for this rank.
    ImageMissing,
    /// BLCR could not parse/restore the image stream.
    ImageParse(String),
    /// The live-migration residual delta could not be applied to the
    /// pre-copied base image (missing or inconsistent accumulator).
    DeltaApply(String),
    /// The restored image's checksum disagrees with the streamed one.
    ChecksumMismatch {
        /// Checksum recomputed from the restored image.
        got: u64,
        /// Checksum recorded when the image was streamed.
        want: u64,
    },
    /// The image metadata framing was truncated or malformed.
    MetaCorrupt(MetaError),
}

impl std::fmt::Display for RestartRankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartRankError::ImageMissing => write!(f, "no assembled image"),
            RestartRankError::ImageParse(e) => write!(f, "image parse: {e}"),
            RestartRankError::DeltaApply(e) => write!(f, "residual delta apply: {e}"),
            RestartRankError::ChecksumMismatch { got, want } => {
                write!(f, "checksum mismatch: got {got:#x}, want {want:#x}")
            }
            RestartRankError::MetaCorrupt(e) => write!(f, "meta corrupt: {e}"),
        }
    }
}

fn restart_one_rank(
    ctx: &Ctx,
    rt: &JobRuntime,
    cycle: &Arc<MigCycle>,
    rank: u32,
    target: NodeId,
) -> Result<(), RestartRankError> {
    let inner = &rt.inner;
    let info = cycle
        .images
        .lock()
        .get(&rank)
        .cloned()
        .ok_or(RestartRankError::ImageMissing)?;
    let res = inner.cluster.node(target);
    let restarted = match info.slices {
        // Memory-based restart (the paper's future work): the stream is
        // already in the buffer pool; only parse + populate costs remain.
        Some(slices) => res.blcr.restart(
            ctx,
            &mut blcrsim::MemSource::new(slices),
            &calib::restart_costs(),
        ),
        None => {
            let store: Arc<dyn storesim::CkptStore> = Arc::new(res.fs.clone());
            let mut src = StoreSource::new(store, info.path.clone());
            res.blcr.restart(ctx, &mut src, &calib::restart_costs())
        }
    };
    let image = restarted.map_err(|e| RestartRankError::ImageParse(e.to_string()))?;
    // Live cutover: the streamed bytes are the residual delta, and only
    // its (small) population cost was just paid — the pre-copied bulk was
    // populated into the accumulator during the overlapped rounds. Merge
    // and fall through to the same end-to-end checksum verification,
    // which now proves the *merged* image equals the source's final
    // state: the no-lost-dirty-segment invariant, checked per restart.
    let image = match cycle.live.as_ref().filter(|l| l.cut_over()) {
        Some(live) => match livemig::delta::decode(&image) {
            Ok(Some(d)) => {
                let mut acc = live
                    .accums
                    .lock()
                    .remove(&rank)
                    .ok_or_else(|| RestartRankError::DeltaApply("no accumulator".into()))?;
                acc.apply(&d)
                    .map_err(|e| RestartRankError::DeltaApply(e.to_string()))?;
                acc.into_image()
                    .ok_or_else(|| RestartRankError::DeltaApply("no base image".into()))?
            }
            // The source streamed a full image (it had no dirty-tracking
            // state); restart from it directly.
            Ok(None) => image,
            Err(e) => return Err(RestartRankError::DeltaApply(e.to_string())),
        },
        None => image,
    };
    if image.checksum() != info.expected_checksum {
        return Err(RestartRankError::ChecksumMismatch {
            got: image.checksum(),
            want: info.expected_checksum,
        });
    }
    let meta = unwrap_meta(&image).map_err(RestartRankError::MetaCorrupt)?;
    // NLA-side WAL append: the image verified, the rank is about to be
    // placed on the target (see the `RankImageReady` append for why this
    // appender surviving a coordinator crash matters).
    inner.journal.append(WalRecord::RankRestarted {
        cycle: cycle.id,
        rank,
    });
    rt.rank_apply(ctx, rank, RankEvent::Restart);
    inner.job.set_rank_node(rank, target);
    inner.job.cr(rank).restore_meta(meta);
    inner.job.purge_stale_rts_from(rank);
    rt.spawn_app(rank);
    rt.spawn_cr_thread(rank, Some(cycle.clone()));
    Ok(())
}

// ---------------------------------------------------------------------------
// C/R thread
// ---------------------------------------------------------------------------

fn cr_thread(ctx: &Ctx, rt: JobRuntime, rank: u32, resume: Option<Arc<MigCycle>>) {
    let inner = &rt.inner;
    let cr = inner.job.cr(rank);
    let node = inner.job.rank_node(rank);
    let ftb = FtbClient::connect(inner.cluster.ftb(), node, &format!("cr-r{rank}"));
    let sub = ftb.subscribe(&ctx.handle(), EventFilter::space(MPI_SPACE));
    if let Some(cycle) = resume {
        phase4(ctx, &rt, &cr, &cycle);
    }
    loop {
        let ev = sub.pop(ctx);
        match ev.name.as_str() {
            FTB_MIGRATE => {
                let Some(m) = ev.payload_as::<MigrateMsg>() else {
                    continue;
                };
                let m = *m;
                if m.epoch < rt.fencing_epoch() {
                    // Fenced: a deposed coordinator cannot suspend ranks.
                    continue;
                }
                let Some(cycle) = rt.mig_cycle(m.cycle) else {
                    continue;
                };
                if !cycle.enter(rank) {
                    // The cycle was aborted before this rank reacted;
                    // nothing was suspended, nothing to recover.
                    continue;
                }
                rt.rank_apply(ctx, rank, RankEvent::Suspend);
                cr.suspend_and_drain(ctx);
                ftb.publish(
                    ctx,
                    FtbEvent::with_payload(
                        MPI_SPACE,
                        FTB_SUSPEND_ACK,
                        Severity::Info,
                        inner.job.rank_node(rank),
                        SuspendAckMsg {
                            cycle: m.cycle,
                            rank,
                        },
                    ),
                );
                cycle.stall_done.arrive();
                if inner.job.rank_node(rank) == m.source {
                    // Phase 2: wait for the consistent global state, then
                    // stream my image through the buffer pool.
                    cycle.stall_done.wait(ctx);
                    let Some(pool) = cycle.wait_source_pool(ctx) else {
                        ctx.instant_with("ckpt", "source_pool_missing", || {
                            vec![("rank", rank.into()), ("cycle", m.cycle.into())]
                        });
                        continue;
                    };
                    let meta = cr.capture_meta();
                    // Keep the captured state around: if the cycle
                    // aborts after the app is killed, the rank is
                    // resurrected from exactly this state.
                    cycle.captured_meta.lock().insert(rank, meta.clone());
                    rt.rank_apply(ctx, rank, RankEvent::Capture);
                    let image = build_image(rank, &meta);
                    rt.kill_app(rank);
                    // Live cutover: the target already holds every
                    // pre-copied byte, so stream only the residual dirty
                    // segments. The sink still carries the *merged*
                    // image's checksum — the end-to-end verification in
                    // Phase 3 runs against the accumulator + residual
                    // merge, proving no dirty segment was lost.
                    let checksum = image.checksum();
                    let image = match cycle.live.as_ref().filter(|l| l.cut_over()) {
                        Some(live) => match cr.take_dirty() {
                            Some(snap) => {
                                cr.disarm_dirty();
                                let round = live.rounds.load(Ordering::Relaxed);
                                livemig::delta::encode(
                                    rank as u64,
                                    &wrap_meta(&meta),
                                    &meta.segments,
                                    &snap,
                                    round,
                                )
                            }
                            // Unknown dirty state: stream everything.
                            None => image,
                        },
                        None => image,
                    };
                    let mut sink = pool.sink(ctx, rank, checksum);
                    let blcr = &inner.cluster.node(m.source).blcr;
                    if blcr.try_checkpoint(ctx, &image, &mut sink).is_err() {
                        // Incomplete stream: the Phase 2 deadline aborts
                        // the cycle and recovers this rank.
                        ctx.instant_with("ckpt", "source_dump_failed", || {
                            vec![("rank", rank.into()), ("cycle", m.cycle.into())]
                        });
                    }
                    // This process incarnation migrates away; its C/R
                    // thread ends with it.
                    return;
                } else {
                    cycle.restart_done.wait(ctx);
                    phase4(ctx, &rt, &cr, &cycle);
                }
            }
            FTB_CHECKPOINT => {
                let Some(c) = ev.payload_as::<CheckpointMsg>() else {
                    continue;
                };
                let c = *c;
                let Some(cycle) = rt.ckpt_cycle(c.cycle) else {
                    continue;
                };
                rt.rank_apply(ctx, rank, RankEvent::Suspend);
                cr.suspend_and_drain(ctx);
                ftb.publish(
                    ctx,
                    FtbEvent::with_payload(
                        MPI_SPACE,
                        FTB_SUSPEND_ACK,
                        Severity::Info,
                        inner.job.rank_node(rank),
                        SuspendAckMsg {
                            cycle: c.cycle,
                            rank,
                        },
                    ),
                );
                cycle.stall_done.arrive_and_wait(ctx);
                // Dump my image to the configured store.
                let mynode = inner.job.rank_node(rank);
                let store = rt.store_for(c.store, mynode);
                let meta = cr.capture_meta();
                let image = build_image(rank, &meta);
                cycle.checksums.lock().insert(rank, image.checksum());
                let blcr = &inner.cluster.node(mynode).blcr;
                let rec = inner.spec.recovery;
                let path = format!("ckpt.{}.{}", c.cycle, rank);
                // Bounded-retry dump: a failed write restarts the file
                // from scratch; if the budget runs out the job still
                // resumes (without a usable checkpoint for this rank).
                let mut written = 0;
                let mut tries = 0u32;
                loop {
                    let mut sink = blcrsim::StoreSink::new(store.clone(), path.clone(), true);
                    match blcr.try_checkpoint(ctx, &image, &mut sink) {
                        Ok(w) => {
                            written = w;
                            break;
                        }
                        Err(e) => {
                            tries += 1;
                            ctx.instant_with("ckpt", "dump_retry", || {
                                vec![
                                    ("rank", rank.into()),
                                    ("try", tries.into()),
                                    ("error", e.to_string().into()),
                                ]
                            });
                            if tries >= rec.max_attempts {
                                ctx.instant_with("ckpt", "dump_failed", || {
                                    vec![("rank", rank.into())]
                                });
                                break;
                            }
                            ctx.sleep(rec.backoff_delay(tries + 1));
                        }
                    }
                }
                cycle.bytes.fetch_add(written, Ordering::Relaxed);
                cycle.ckpt_done.arrive_and_wait(ctx);
                // Resume.
                cr.rebuild_endpoints(ctx, true);
                ctx.sleep(rt.resume_overhead());
                cr.reopen();
                rt.rank_apply(ctx, rank, RankEvent::Resume);
                cycle.resumed.arrive();
            }
            _ => {}
        }
    }
}

/// Phase 4: the migration barrier, endpoint rebuild, and resume.
fn phase4(ctx: &Ctx, rt: &JobRuntime, cr: &mpisim::RankCr, cycle: &Arc<MigCycle>) {
    cycle.barrier.arrive_and_wait(ctx);
    cr.rebuild_endpoints(ctx, true);
    ctx.sleep(rt.resume_overhead());
    cr.reopen();
    let rank = cr.rank();
    rt.rank_apply(ctx, rank, RankEvent::Resume);
    cycle.resumed.arrive();
}
