//! Calibration constants, with provenance.
//!
//! These constants position the simulated cluster at the paper's testbed:
//! 8-core Harpertown nodes, Mellanox DDR HCAs, 2010-era SATA disks under
//! ext3, PVFS 2.8.1 on four servers with 1 MB stripes. They were fixed
//! *once* from the paper's own arithmetic (Table I image sizes, the
//! checkpoint-to-ext3 rates implied by Figure 7) and public hardware
//! specifications — not fitted per figure. `EXPERIMENTS.md` records where
//! the resulting numbers land against each figure.

use blcrsim::{BlcrConfig, RestartCosts};
use std::time::Duration;
use storesim::{DiskConfig, PvfsConfig};

/// Aggregate rate at which BLCR page walks produce checkpoint data on one
/// node (kernel memory copies; 8 concurrent dumps share it). Sets Phase 2
/// at 0.38 s (LU) – 0.69 s (BT), inside the paper's 0.4–0.8 s band.
pub const CHECKPOINT_WALK_BW: f64 = 450e6;

/// BLCR engine settings: 1 MB pipeline chunks (the paper's chunk size)
/// and a small fixed per-checkpoint overhead.
pub fn blcr_config() -> BlcrConfig {
    BlcrConfig {
        chunk: 1 << 20,
        checkpoint_base: Duration::from_millis(12),
    }
}

/// Restart cost model (both the migration Phase 3 and the CR restart use
/// BLCR's file-based `cr_restart`): per-process fork/VMA-rebuild overhead
/// plus memory population from the parsed stream.
pub fn restart_costs() -> RestartCosts {
    RestartCosts {
        base: Duration::from_millis(110),
        populate_bandwidth: 1.1e9,
    }
}

/// Local ext3 disk: ~72 MB/s sequential with seek degradation chosen so 8
/// concurrent BLCR streams sustain ~27 MB/s aggregate — the rate implied
/// by the paper's 6.4 s checkpoint of LU.C.64 (170 MB/node). The dirty
/// budget reflects 2010 defaults (~20% of 8 GB RAM), so the migration's
/// buffered temp files are absorbed at memory speed.
pub fn ext3_disk() -> DiskConfig {
    DiskConfig {
        bandwidth: 72e6,
        alpha: 0.24,
        mem_bandwidth: 2.4e9,
        dirty_limit: 1_500_000_000,
        flush_bandwidth: 60e6,
        read_factor: 1.45,
    }
}

/// PVFS data-server disk. The contention coefficient matches the paper's
/// observation that 64 concurrent client streams over 4 servers sustain
/// ~85 MB/s aggregate (16.3 s for LU.C.64's 1363 MB).
pub fn pvfs_config() -> PvfsConfig {
    PvfsConfig {
        servers: 4,
        stripe: 1 << 20,
        disk: DiskConfig {
            bandwidth: 96e6,
            alpha: 0.24,
            mem_bandwidth: 2.4e9,
            dirty_limit: 64 << 20,
            flush_bandwidth: 80e6,
            read_factor: 1.3,
        },
        meta_latency: Duration::from_micros(600),
    }
}

/// Phase 4 fixed overhead: vbuf pool reallocation, registration-cache
/// rebuild and the launcher-level barrier over GigE. Calibrated to the
/// paper's "relatively constant" resume of ~1 s at 64 ranks.
pub const RESUME_BASE: Duration = Duration::from_millis(400);

/// Per-rank component of the Phase 4 overhead.
pub const RESUME_PER_RANK: Duration = Duration::from_millis(10);

/// Buffer pool defaults from §IV: 10 MB pool, 1 MB chunks ("we find that
/// the process-migration overhead does not vary significantly as buffer
/// pool size changes").
pub const BUFFER_POOL_BYTES: u64 = 10 << 20;

/// Chunk size within the buffer pool.
pub const CHUNK_BYTES: u64 = 1 << 20;

/// Fixed protocol cost per submitted chunk (buffer-manager wakeup,
/// kernel/user handoff of the chunk descriptor). Negligible at the 1 MB
/// default; what makes very small chunks a bad idea.
pub const CHUNK_PROTOCOL_OVERHEAD: Duration = Duration::from_micros(20);

/// Whether restarts read their checkpoint/temp files cold. BLCR's
/// `cr_restart` read path does not benefit from the page cache the way a
/// plain sequential read would (the paper attributes Phase 3's dominance
/// to exactly this file I/O), so restarts drop caches first.
pub const RESTART_READS_COLD: bool = true;

/// Effective kernel-copy bandwidth of the IPoIB socket path, charged once
/// per side per chunk in the staged-copy transport ablation (socket-based
/// process migration achieves ~250-400 MB/s on DDR IB, vs ~1.4 GB/s for
/// zero-copy RDMA).
pub const IPOIB_COPY_BW: f64 = 6.5e8;

/// Time for the Job Manager to adjust the mpispawn tree topology
/// (Phase 3 bookkeeping before `FTB_RESTART`).
pub const SPAWN_TREE_ADJUST: Duration = Duration::from_millis(2);

/// Node Launch Agent process-spawn cost (fork/exec of one MPI process).
pub const NLA_SPAWN: Duration = Duration::from_millis(8);

/// How long the standby coordinator waits after observing the Job
/// Manager's death before starting takeover — models the failure-detector
/// confirmation delay (a missed heartbeat window on the launch node).
pub const TAKEOVER_DETECT: Duration = Duration::from_millis(5);

/// Recovery policy for the self-healing migration protocol: per-phase
/// virtual-time deadlines, the migration retry budget, and the per-chunk
/// RDMA re-issue budget. Defaults are deliberately generous relative to
/// the paper's measured phase times (seconds, against sub-10 s phases) so
/// they never fire on a healthy run; tests shrink them freely.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Phase 1 (Job Stall) deadline.
    pub stall_timeout: Duration,
    /// Phase 2 (Job Migration) deadline.
    pub migrate_timeout: Duration,
    /// Phase 3 (Restart) deadline.
    pub restart_timeout: Duration,
    /// Phase 4 (Resume) deadline.
    pub resume_timeout: Duration,
    /// Whole-migration attempt budget (each attempt consumes a spare
    /// unless the previous attempt's spare survived).
    pub max_attempts: u32,
    /// Base of the exponential inter-attempt backoff: the first retry
    /// (attempt 2) waits `base`, doubling on each further retry. A zero
    /// base is clamped to 1 ms — see [`RecoveryConfig::backoff_delay`].
    pub backoff_base: Duration,
    /// Per-chunk RDMA Read re-issue budget on CQ error or checksum
    /// mismatch.
    pub chunk_retries: u32,
}

impl RecoveryConfig {
    /// Backoff charged *before* (1-based) `attempt` starts.
    ///
    /// Two edge cases are load-bearing guarantees, not accidents:
    ///
    /// * **Attempt 1 never backs off** — with `max_attempts = 1` the
    ///   attempt loop runs exactly once and pays zero backoff.
    /// * **`backoff_base = 0` is clamped to 1 ms**, never zero: between
    ///   attempts the aborted cycle's C/R threads are killed and
    ///   respawned, and they must get a scheduling slot to re-subscribe
    ///   to FTB before the retry's `FTB_MIGRATE` publish. A zero delay
    ///   would re-trigger into deaf threads — the virtual-time analogue
    ///   of a busy-spin that starves its own recovery.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let base = self.backoff_base.max(Duration::from_millis(1));
        base * 2u32.saturating_pow(attempt - 2)
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        recovery()
    }
}

/// Default recovery policy.
pub fn recovery() -> RecoveryConfig {
    RecoveryConfig {
        stall_timeout: Duration::from_secs(10),
        migrate_timeout: Duration::from_secs(60),
        restart_timeout: Duration::from_secs(30),
        resume_timeout: Duration::from_secs(30),
        max_attempts: 3,
        backoff_base: Duration::from_millis(200),
        chunk_retries: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext3_aggregate_rate_matches_paper_arithmetic() {
        // 8 concurrent streams: 72 / (1 + 0.24*7) ≈ 26.9 MB/s aggregate;
        // LU.C.64 dumps 170.4 MB per node → ≈ 6.3 s (paper: 6.4 s).
        let d = ext3_disk();
        let agg = d.bandwidth / (1.0 + d.alpha * 7.0) / 1e6;
        let t = 170.4 / agg;
        assert!((6.0..6.8).contains(&t), "checkpoint estimate {t}s");
    }

    #[test]
    fn pvfs_aggregate_rate_matches_paper_arithmetic() {
        // 64 streams over 4 servers (16 each): per-server
        // 96/(1+0.24*15) ≈ 20.9 MB/s → ~84 MB/s aggregate;
        // 1363 MB → ≈ 16.3 s (paper: 16.3 s).
        let c = pvfs_config();
        let per = c.disk.bandwidth / (1.0 + c.disk.alpha * 15.0);
        let t = 1363.2e6 / (per * 4.0);
        assert!((15.0..17.5).contains(&t), "PVFS checkpoint estimate {t}s");
    }

    #[test]
    fn zero_backoff_base_cannot_busy_spin() {
        let rec = RecoveryConfig {
            backoff_base: Duration::ZERO,
            ..recovery()
        };
        // Every retry still advances virtual time by at least 1 ms, and
        // the exponential shape is preserved over the clamped base.
        assert_eq!(rec.backoff_delay(2), Duration::from_millis(1));
        assert_eq!(rec.backoff_delay(3), Duration::from_millis(2));
        assert_eq!(rec.backoff_delay(4), Duration::from_millis(4));
    }

    #[test]
    fn single_attempt_budget_skips_backoff_entirely() {
        let rec = RecoveryConfig {
            max_attempts: 1,
            ..recovery()
        };
        // The attempt loop only ever charges backoff for attempt > 1, so
        // a one-attempt budget pays none at all.
        assert_eq!(rec.backoff_delay(1), Duration::ZERO);
        // And the normal base doubles from the first retry on.
        let rec = recovery();
        assert_eq!(rec.backoff_delay(2), rec.backoff_base);
        assert_eq!(rec.backoff_delay(3), rec.backoff_base * 2);
    }

    #[test]
    fn phase2_walk_rate_lands_in_paper_band() {
        // Phase 2 is production-bound: 170.4 MB / 450 MB/s ≈ 0.38 s,
        // 308.8 MB / 450 MB/s ≈ 0.69 s — the paper's 0.4–0.8 s band.
        let lu = 170.4e6 / CHECKPOINT_WALK_BW;
        let bt = 308.8e6 / CHECKPOINT_WALK_BW;
        assert!(lu > 0.3 && bt < 0.8, "lu {lu} bt {bt}");
    }
}
