//! The simulated testbed: nodes, networks, storage, FTB deployment.
//!
//! Mirrors the paper's evaluation platform: a login node plus compute and
//! hot-spare nodes, all connected by InfiniBand DDR (MPI + migration
//! traffic) and GigE (FTB/maintenance), each with a local ext3 disk and a
//! memory bus that BLCR page walks consume; optionally a 4-server PVFS
//! deployment reachable over the InfiniBand network.

use crate::calib;
use crate::spare::SparePool;
use blcrsim::Blcr;
use faultplane::{FaultPlan, FaultPlane};
use ftb::{FtbBackplane, FtbConfig};
use ibfabric::{IbConfig, IbFabric, Net, NetConfig, NodeId};
use parking_lot::Mutex;
use simkit::{Link, Sharing, SimHandle};
use std::collections::BTreeMap;
use std::sync::Arc;
use storesim::{Disk, LocalFs, Pvfs};

/// Shape of the cluster to build.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of compute nodes hosting the job initially.
    pub compute_nodes: u32,
    /// Number of hot-spare nodes.
    pub spare_nodes: u32,
    /// Deploy a PVFS parallel filesystem (4 data servers, IB transport).
    pub with_pvfs: bool,
    /// InfiniBand fabric parameters.
    pub ib: IbConfig,
    /// FTB backplane parameters (heartbeat cadence, retry budget).
    /// Fleet-scale soaks stretch the heartbeat: failure detection
    /// latency matters less than simulating hundreds of node-hours.
    pub ftb: FtbConfig,
}

impl ClusterSpec {
    /// The paper's testbed: 8 compute nodes, 1 spare, PVFS on 4 servers.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            compute_nodes: 8,
            spare_nodes: 1,
            with_pvfs: true,
            ib: IbConfig::default(),
            ftb: FtbConfig::default(),
        }
    }

    /// A small fixture for fast tests: 2 compute nodes, 1 spare, no PVFS.
    pub fn small_test() -> Self {
        ClusterSpec {
            compute_nodes: 2,
            spare_nodes: 1,
            with_pvfs: false,
            ib: IbConfig::default(),
            ftb: FtbConfig::default(),
        }
    }

    /// `n` compute nodes, `s` spares, no PVFS.
    pub fn sized(n: u32, s: u32) -> Self {
        ClusterSpec {
            compute_nodes: n,
            spare_nodes: s,
            with_pvfs: false,
            ib: IbConfig::default(),
            ftb: FtbConfig::default(),
        }
    }
}

/// Per-node local resources.
pub struct NodeResources {
    /// Local ext3-like filesystem.
    pub fs: LocalFs,
    /// BLCR engine sharing the node's checkpoint-walk memory bandwidth.
    pub blcr: Blcr,
    /// The raw memory-walk link (stats).
    pub membus: Link,
}

struct ClusterInner {
    handle: SimHandle,
    spec: ClusterSpec,
    fabric: IbFabric,
    gige: Net,
    ftb: FtbBackplane,
    login: NodeId,
    compute: Vec<NodeId>,
    spares: Vec<NodeId>,
    // BTreeMap: fault-plane installation and cache drops iterate every
    // node; NodeId order keeps their side effects deterministic.
    nodes: BTreeMap<NodeId, NodeResources>,
    pvfs: Option<Pvfs>,
    fault_plane: Mutex<Option<FaultPlane>>,
    /// The shared hot-spare pool, seeded with the spare nodes. Every job
    /// launched on this cluster leases migration targets from it.
    spare_pool: SparePool,
}

/// The built cluster. Cloning shares it.
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

impl Cluster {
    /// Build a cluster per `spec`. Node ids: login = 0, compute 1..=C,
    /// spares C+1..=C+S, PVFS servers above those.
    pub fn build(handle: &SimHandle, spec: ClusterSpec) -> Cluster {
        let fabric = IbFabric::new(handle, spec.ib.clone());
        let gige = Net::new(handle, NetConfig::gige());
        let ftb = FtbBackplane::new(handle, gige.clone(), spec.ftb.clone());

        let login = NodeId(0);
        gige.add_node(login);
        ftb.add_agent(login, None);

        let mut nodes = BTreeMap::new();
        let mut compute = Vec::new();
        let mut spares = Vec::new();
        let total = spec.compute_nodes + spec.spare_nodes;
        for i in 1..=total {
            let node = NodeId(i);
            fabric.attach(node);
            gige.add_node(node);
            ftb.add_agent(node, Some(login));
            let disk = Disk::new(handle, &format!("ext3@{node}"), calib::ext3_disk());
            let membus = Link::new(
                handle,
                &format!("ckptwalk@{node}"),
                calib::CHECKPOINT_WALK_BW,
                Sharing::Fair,
            );
            nodes.insert(
                node,
                NodeResources {
                    fs: LocalFs::new(disk),
                    blcr: Blcr::new(membus.clone(), calib::blcr_config()),
                    membus,
                },
            );
            if i <= spec.compute_nodes {
                compute.push(node);
            } else {
                spares.push(node);
            }
        }

        let pvfs = if spec.with_pvfs {
            let cfg = calib::pvfs_config();
            let server_nodes: Vec<NodeId> = (0..cfg.servers as u32)
                .map(|k| NodeId(total + 1 + k))
                .collect();
            Some(Pvfs::with_network(
                handle,
                cfg,
                fabric.net().clone(),
                server_nodes,
            ))
        } else {
            None
        };

        let spare_pool = SparePool::new(spares.clone());
        Cluster {
            inner: Arc::new(ClusterInner {
                handle: handle.clone(),
                spec,
                fabric,
                gige,
                ftb,
                login,
                compute,
                spares,
                nodes,
                pvfs,
                fault_plane: Mutex::new(None),
                spare_pool,
            }),
        }
    }

    /// Instantiate `plan` and wire the resulting [`FaultPlane`] into every
    /// injection point the cluster owns: the IB fabric, the GigE network
    /// (which carries the FTB tree), each node's local filesystem and BLCR
    /// engine, and the PVFS deployment if present. The Job Manager also
    /// polls the installed plane for scheduled spare-node crashes.
    ///
    /// Call before launching the job. Returns the live plane (for
    /// injection statistics); it is also retained by the cluster.
    pub fn install_fault_plane(&self, plan: &FaultPlan) -> FaultPlane {
        let plane = FaultPlane::new(&self.inner.handle, plan);
        let hook = Arc::new(plane.clone());
        self.inner.fabric.net().set_fault_hook(hook.clone());
        self.inner.gige.set_fault_hook(hook.clone());
        for res in self.inner.nodes.values() {
            res.fs.set_fault_hook(hook.clone());
            res.blcr.set_fault_hook(hook.clone());
        }
        if let Some(p) = &self.inner.pvfs {
            p.set_fault_hook(hook);
        }
        *self.inner.fault_plane.lock() = Some(plane.clone());
        plane
    }

    /// The installed fault plane, if any.
    pub fn fault_plane(&self) -> Option<FaultPlane> {
        self.inner.fault_plane.lock().clone()
    }

    /// Simulation handle.
    pub fn handle(&self) -> &SimHandle {
        &self.inner.handle
    }

    /// The cluster's shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// The InfiniBand fabric.
    pub fn fabric(&self) -> &IbFabric {
        &self.inner.fabric
    }

    /// The GigE maintenance network.
    pub fn gige(&self) -> &Net {
        &self.inner.gige
    }

    /// The FTB backplane.
    pub fn ftb(&self) -> &FtbBackplane {
        &self.inner.ftb
    }

    /// The login node (Job Manager home, FTB tree root).
    pub fn login(&self) -> NodeId {
        self.inner.login
    }

    /// Compute nodes in id order.
    pub fn compute_nodes(&self) -> &[NodeId] {
        &self.inner.compute
    }

    /// Hot-spare nodes in id order (the pool's initial contents; see
    /// [`Cluster::spare_pool`] for the live allocation state).
    pub fn spare_nodes(&self) -> &[NodeId] {
        &self.inner.spares
    }

    /// The shared hot-spare pool: lease/settle/reclaim API for migration
    /// targets, shared by every job on the cluster.
    pub fn spare_pool(&self) -> &SparePool {
        &self.inner.spare_pool
    }

    /// Local resources of `node`.
    ///
    /// # Panics
    /// Panics for nodes without local resources (login, PVFS servers).
    pub fn node(&self, node: NodeId) -> &NodeResources {
        self.inner
            .nodes
            .get(&node)
            .unwrap_or_else(|| panic!("no local resources on {node}"))
    }

    /// The PVFS deployment, if configured.
    pub fn pvfs(&self) -> Option<&Pvfs> {
        self.inner.pvfs.as_ref()
    }

    /// Drop page caches on every compute/spare node (cold-restart setup).
    pub fn drop_all_caches(&self) {
        use storesim::CkptStore;
        for res in self.inner.nodes.values() {
            res.fs.drop_caches();
        }
        if let Some(p) = &self.inner.pvfs {
            p.client(self.inner.login).drop_caches();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Simulation;

    #[test]
    fn paper_testbed_layout() {
        let sim = Simulation::new(0);
        let c = Cluster::build(&sim.handle(), ClusterSpec::paper_testbed());
        assert_eq!(c.compute_nodes().len(), 8);
        assert_eq!(c.spare_nodes().len(), 1);
        assert_eq!(c.login(), NodeId(0));
        assert_eq!(c.compute_nodes()[0], NodeId(1));
        assert_eq!(c.spare_nodes()[0], NodeId(9));
        assert!(c.pvfs().is_some());
        // every compute/spare node has resources
        for n in c.compute_nodes().iter().chain(c.spare_nodes()) {
            let _ = c.node(*n);
        }
    }

    #[test]
    #[should_panic(expected = "no local resources")]
    fn login_has_no_local_resources() {
        let sim = Simulation::new(0);
        let c = Cluster::build(&sim.handle(), ClusterSpec::small_test());
        let _ = c.node(NodeId(0));
    }
}
