//! Protocol vocabulary: FTB event names, payloads, and NLA states —
//! exactly the message set of the paper's Figure 2.

use ibfabric::NodeId;

/// FTB namespace all migration-framework events use.
pub const MPI_SPACE: &str = "FTB.MPI.MVAPICH2";

/// Phase 1 kick-off: carries [`MigrateMsg`]. Received by every NLA and
/// every MPI process (C/R thread).
pub const FTB_MIGRATE: &str = "FTB_MIGRATE";

/// End of Phase 2 ("Process Image In-place Complete"), published by the
/// source NLA once all images have been migrated to the target.
pub const FTB_MIGRATE_PIIC: &str = "FTB_MIGRATE_PIIC";

/// Phase 3 broadcast from the Job Manager: carries [`RestartMsg`].
pub const FTB_RESTART: &str = "FTB_RESTART";

/// Marks the end of Phase 3 (all migrated processes restarted on the
/// target), published by the target NLA.
pub const FTB_RESTART_DONE: &str = "FTB_RESTART_DONE";

/// Per-rank suspension acknowledgement (Phase 1 coordination traffic; the
/// stall-phase latency the paper measures is dominated by this fan-in).
pub const FTB_SUSPEND_ACK: &str = "FTB_SUSPEND_ACK";

/// Coordinated-checkpoint kick-off for the CR baseline.
pub const FTB_CHECKPOINT: &str = "FTB_CHECKPOINT";

/// Live-migration pre-copy round kick-off: carries [`PrecopyMsg`].
/// Received by the source and target NLAs; the ranks keep running and
/// never see it.
pub const FTB_PRECOPY: &str = "FTB_PRECOPY";

/// End of one pre-copy round, published by the target NLA once every
/// rank's full image (round 0) or dirty-segment delta (rounds 1..N) has
/// been pulled and merged: carries [`PrecopyDoneMsg`].
pub const FTB_PRECOPY_DONE: &str = "FTB_PRECOPY_DONE";

/// Payload of [`FTB_MIGRATE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateMsg {
    /// Health-deteriorating node whose processes move.
    pub source: NodeId,
    /// Hot-spare node receiving them.
    pub target: NodeId,
    /// Migration cycle sequence number (supports repeated migrations).
    pub cycle: u64,
    /// Coordinator fencing epoch the publish was issued under. After a
    /// standby takeover bumps the job's epoch, receivers drop stale
    /// publishes — a deposed ("zombie") coordinator cannot drive the
    /// protocol. `FtbEvent` wire size is payload-independent, so the
    /// extra field cannot perturb virtual-time schedules.
    pub epoch: u64,
}

/// Payload of [`FTB_MIGRATE_PIIC`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiicMsg {
    /// The completed cycle.
    pub cycle: u64,
    /// Ranks whose images now sit on the target.
    pub ranks: Vec<u32>,
    /// Stream bytes moved over RDMA (Table I accounting).
    pub bytes_moved: u64,
}

/// Payload of [`FTB_RESTART`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartMsg {
    /// The cycle being restarted.
    pub cycle: u64,
    /// Target node to restart on.
    pub target: NodeId,
    /// Ranks to restart there.
    pub ranks: Vec<u32>,
    /// Coordinator fencing epoch (see [`MigrateMsg::epoch`]).
    pub epoch: u64,
}

/// Payload of [`FTB_PRECOPY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecopyMsg {
    /// Health-deteriorating node whose processes will eventually move.
    pub source: NodeId,
    /// Hot-spare node pre-populating their images.
    pub target: NodeId,
    /// Migration cycle sequence number.
    pub cycle: u64,
    /// Round index: 0 streams the full image, 1..N stream deltas.
    pub round: u32,
    /// Coordinator fencing epoch (see [`MigrateMsg::epoch`]).
    pub epoch: u64,
}

/// Payload of [`FTB_PRECOPY_DONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecopyDoneMsg {
    /// The cycle the round belongs to.
    pub cycle: u64,
    /// The round that finished.
    pub round: u32,
    /// Whether every rank's image/delta landed and verified. `false`
    /// makes the convergence controller fall back to stop-and-copy.
    pub ok: bool,
    /// Wire bytes this round moved (full image or delta payload).
    pub bytes: u64,
    /// Dirty pages the round carried (0 for round 0's full image).
    pub pages: u64,
}

/// Payload of [`FTB_CHECKPOINT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Checkpoint cycle number.
    pub cycle: u64,
    /// Storage target for the dump.
    pub store: crate::report::CrStoreKind,
}

/// Payload of [`FTB_SUSPEND_ACK`] (per-rank Phase 1 acknowledgement; the
/// fan-in of these through the FTB tree is what the measured Job Stall
/// time is mostly made of).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspendAckMsg {
    /// The cycle being acknowledged.
    pub cycle: u64,
    /// Acknowledging rank.
    pub rank: u32,
}

/// Node Launch Agent states, as named in §III-A. The canonical enum now
/// lives in `protoverify` alongside the NLA transition table the runtime
/// drives its state changes through (see `protoverify::spec::NLA_TABLE`);
/// re-exported here so existing `msgs::NlaState` paths keep working.
pub use protoverify::NlaState;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nla_state_names_match_paper() {
        assert_eq!(NlaState::MigrationReady.to_string(), "MIGRATION_READY");
        assert_eq!(NlaState::MigrationSpare.to_string(), "MIGRATION_SPARE");
        assert_eq!(
            NlaState::MigrationInactive.to_string(),
            "MIGRATION_INACTIVE"
        );
    }
}
