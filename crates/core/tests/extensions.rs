//! Extensions beyond the paper's implementation: memory-based restart
//! (the stated future work), the IPoIB staged-copy transport it argues
//! against, buffer-pool sensitivity, and health-triggered migrations.

use ftb::FtbClient;
use healthmon::{MonitorConfig, SensorKind, SensorProfile};
use jobmig_core::bufpool::{RestartMode, Transport};
use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{SimTime, Simulation};
use std::time::Duration;

fn run_with_pool(mut f: impl FnMut(&mut JobSpec)) -> jobmig_core::report::MigrationReport {
    let mut sim = Simulation::new(21);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let mut spec = JobSpec::npb(wl, 2);
    f(&mut spec);
    let rt = JobRuntime::launch(&cluster, spec);
    rt.control()
        .migrate_after(secs(30), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    rt.migration_reports()[0].clone()
}

#[test]
fn memory_based_restart_eliminates_phase3_file_io() {
    let file = run_with_pool(|_| {});
    let mem = run_with_pool(|s| s.pool.restart_mode = RestartMode::MemoryBased);
    assert_eq!(file.bytes_moved, mem.bytes_moved, "same data either way");
    assert!(
        mem.restart < file.restart / 2,
        "memory restart {:?} should be far below file restart {:?}",
        mem.restart,
        file.restart
    );
    assert!(mem.total() < file.total());
}

#[test]
fn ipoib_staged_copy_slows_phase2() {
    let rdma = run_with_pool(|_| {});
    let ipoib = run_with_pool(|s| s.pool.transport = Transport::IpoibStaged);
    assert!(
        ipoib.migrate > rdma.migrate,
        "staged copy {:?} must exceed RDMA {:?}",
        ipoib.migrate,
        rdma.migrate
    );
}

#[test]
fn buffer_pool_size_is_not_the_bottleneck() {
    // The paper: "the process-migration overhead does not vary
    // significantly as buffer pool size changes" (Phase 3 dominates).
    let small = run_with_pool(|s| s.pool.pool_bytes = 2 << 20);
    let big = run_with_pool(|s| s.pool.pool_bytes = 40 << 20);
    let ratio = small.total().as_secs_f64() / big.total().as_secs_f64();
    assert!(
        (0.9..1.2).contains(&ratio),
        "pool size should barely matter: small {:?} vs big {:?}",
        small.total(),
        big.total()
    );
}

#[test]
fn tiny_chunks_hurt_phase2() {
    let normal = run_with_pool(|_| {});
    // same pool capacity, 16x smaller chunks → 16x the protocol overhead
    let tiny = run_with_pool(|s| s.pool.chunk_bytes = 64 << 10);
    assert!(
        tiny.migrate >= normal.migrate,
        "64 KiB chunks {:?} should not beat 1 MiB chunks {:?}",
        tiny.migrate,
        normal.migrate
    );
}

#[test]
fn health_predicted_failure_triggers_migration_automatically() {
    let mut sim = Simulation::new(22);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let mut spec = JobSpec::npb(wl, 2);
    spec.auto_migrate_on_health = true;
    let rt = JobRuntime::launch(&cluster, spec);

    // Node 1's CPU begins overheating 20 s in: +0.5 °C/s from 62 °C,
    // predicted to cross the 90 °C critical line long before it does.
    let sick = cluster.compute_nodes()[0];
    let client = FtbClient::connect(cluster.ftb(), sick, "ipmi");
    healthmon::spawn_monitor(
        &sim.handle(),
        sick,
        vec![
            SensorProfile::deteriorating(
                SensorKind::TemperatureC,
                62.0,
                0.4,
                Duration::from_secs(20),
                0.5,
            ),
            SensorProfile::healthy(SensorKind::FanRpm, 8000.0, 150.0),
        ],
        client,
        MonitorConfig::default(),
    );

    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1, "prediction must trigger exactly once");
    assert_eq!(reports[0].source, sick);
    // Proactive: the migration fired well before the critical crossing
    // (62→90 °C at 0.5 °C/s crosses at t ≈ 76 s).
    let done_by = reports[0].total();
    assert!(done_by < Duration::from_secs(40));
}

#[test]
fn healthy_node_never_triggers() {
    let mut sim = Simulation::new(23);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let mut spec = JobSpec::npb(wl, 2);
    spec.auto_migrate_on_health = true;
    let rt = JobRuntime::launch(&cluster, spec);
    for node in cluster.compute_nodes() {
        let client = FtbClient::connect(cluster.ftb(), *node, "ipmi");
        healthmon::spawn_monitor(
            &sim.handle(),
            *node,
            vec![
                SensorProfile::healthy(SensorKind::TemperatureC, 55.0, 2.0),
                SensorProfile::healthy(SensorKind::EccPerWindow, 0.2, 0.4),
            ],
            client,
            MonitorConfig::default(),
        );
    }
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.migration_reports().is_empty(), "no false positives");
    assert_eq!(rt.spares_left(), 1);
}
