//! The pipelined migration data path: outcome equivalence with barrier
//! mode under the fault matrix, and the per-rank pull/restart overlap.

use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use proptest::prelude::*;
use simkit::dur::*;
use simkit::{SimTime, Simulation};

/// One migration on a sized(2, 1) cluster with the given tuning and an
/// optional fault plan; returns the outcome counters.
fn run_with(seed: u64, plan: Option<&FaultPlan>, tuning: MigrationTuning) -> OutcomeCounts {
    let mut sim = Simulation::new(seed);
    sim.handle().tracer().set_enabled(true);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    if let Some(plan) = plan {
        cluster.install_fault_plane(plan);
    }
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let deadline = SimTime::ZERO + wl.base_runtime + secs(600);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new().tuning(tuning));
    sim.run_until_set(rt.completion(), deadline)
        .expect("job hung past the virtual deadline");
    assert!(rt.is_complete());
    let outcomes = rt.migration_outcomes();
    assert_eq!(outcomes.lost, 0, "no trigger may be lost: {outcomes:?}");
    // The overlapped data path must still refine the protocol model.
    let report = protoverify::observe_trace(&sim.handle().tracer().drain_events());
    if let Some(v) = &report.violation {
        panic!("[seed {seed}] trace does not refine the protocol model:\n{v}");
    }
    outcomes
}

/// The PR 2 fault matrix, as a strategy over single-fault plans.
fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        (0u64..4).prop_map(|i| FaultSpec::SpareCrash {
            phase: MigPhase::ALL[i as usize],
            attempt: 1,
        }),
        (1u64..4).prop_map(|nth| FaultSpec::RdmaCqError { nth }),
        (2u64..5).prop_map(|nth| FaultSpec::RdmaCorrupt { nth }),
        (1u64..3).prop_map(|nth| FaultSpec::BlcrWriteError { nth }),
        (1u64..4).prop_map(|count| FaultSpec::NetDrop {
            net: NetSel::Gige,
            after: secs(10),
            count: count as u32,
        }),
        (300u64..900).prop_map(|m| FaultSpec::LinkFlap {
            net: NetSel::Gige,
            at: secs(10),
            lasts: ms(m),
        }),
    ]
}

#[test]
fn faultless_modes_agree_and_both_migrate() {
    let barrier = run_with(7, None, MigrationTuning::barrier());
    let pipelined = run_with(7, None, MigrationTuning::pipelined());
    assert_eq!(barrier.migrated, 1);
    assert_eq!(barrier, pipelined);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pipelining must change *when* work happens, never *what* the
    /// trigger resolves to: under every fault in the matrix, barrier and
    /// pipelined runs of the same scenario land on identical
    /// [`OutcomeCounts`].
    #[test]
    fn pipelined_and_barrier_agree_under_faults(
        seed in 0u64..1_000,
        fault in fault_strategy(),
    ) {
        let plan = FaultPlan::new(seed ^ 0xF00D).with(fault);
        let barrier = run_with(seed, Some(&plan), MigrationTuning::barrier());
        let pipelined = run_with(seed, Some(&plan), MigrationTuning::pipelined());
        prop_assert_eq!(barrier, pipelined);
    }
}

/// The overlap itself: with the pipelined tuning, the first rank's
/// restart begins while another rank's chunks are still being pulled.
/// The two co-located ranks carry deliberately skewed images (2 MB vs
/// 48 MB) so their EOFs are far apart.
#[test]
fn early_rank_restarts_before_slowest_pull_completes() {
    use bytes::Bytes;
    use mpisim::MpiRank;
    use simkit::Ctx;

    let mut sim = Simulation::new(77);
    sim.handle().tracer().set_enabled(true);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let app = |ctx: &Ctx, rank: &mut MpiRank| {
        let r = rank.rank();
        let peer = r ^ 1; // pairs (0,1), (2,3)
        if rank.app_state().is_empty() {
            // Rank 0 (and 2): 2 MB; rank 1 (and 3): 48 MB.
            let mb = if r.is_multiple_of(2) { 2u64 } else { 48 };
            rank.set_segments(vec![blcrsim::Segment {
                kind: blcrsim::SegmentKind::Heap,
                data: ibfabric::DataSlice::pattern(r as u64 + 1, 0, mb << 20),
            }]);
        }
        let start = if rank.app_state().len() >= 4 {
            u32::from_le_bytes(rank.app_state()[..4].try_into().unwrap())
        } else {
            0
        };
        for it in start..300 {
            rank.exchange(ctx, peer, it as u64, 64 << 10);
            rank.compute(ctx, ms(40));
            rank.op_boundary(Bytes::copy_from_slice(&(it + 1).to_le_bytes()));
        }
    };
    let rt = JobRuntime::launch(&cluster, JobSpec::custom(4, 2, app));
    rt.control().migrate_after(
        secs(3),
        MigrationRequest::new().tuning(MigrationTuning::pipelined()),
    );
    sim.run_until_set(rt.completion(), SimTime::MAX)
        .expect("completion");
    assert_eq!(rt.migration_outcomes().migrated, 1);

    let events = sim.handle().tracer().drain_events();
    let last_pull = events
        .iter()
        .filter(|e| e.name == "chunk_pull")
        .map(|e| e.time)
        .max()
        .expect("chunk_pull instants");
    let first_restart = events
        .iter()
        .filter(|e| e.name == "restart_begin")
        .map(|e| e.time)
        .min()
        .expect("restart_begin instants");
    assert!(
        first_restart < last_pull,
        "pipelined mode must start an early rank's restart (t={first_restart}) \
         before the slowest rank's pull completes (t={last_pull})"
    );

    // And the per-rank readiness instants actually spread out: every
    // migrated rank got its own image_ready moment.
    let ready: Vec<_> = events
        .iter()
        .filter(|e| e.name == "rank_image_ready")
        .collect();
    assert_eq!(ready.len(), 2, "one readiness instant per migrated rank");
}
