//! Fault-matrix smoke: every fault kind, across every protocol phase it
//! can reach, must leave the job either migrated or degraded to the CR
//! baseline — never hung, never lost — inside a bounded virtual-time
//! deadline. This is the grid the CI `fault-matrix` job runs.

use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{SimTime, Simulation};

/// Run one scenario: a sized(2, 1) cluster, LU.A.4 at 2 ppn, the given
/// fault plan installed before launch, a migration trigger at t+10 s, and
/// a hard virtual-time deadline. Returns the outcome counters.
fn run_scenario(name: &str, seed: u64, plan: FaultPlan) -> OutcomeCounts {
    let mut sim = Simulation::new(seed);
    sim.handle().tracer().set_enabled(true);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    cluster.install_fault_plane(&plan);
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let deadline = SimTime::ZERO + wl.base_runtime + secs(600);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new());
    let run = sim.run_until_set(rt.completion(), deadline);
    assert!(
        run.is_ok(),
        "[{name}] job hung past the virtual deadline: {run:?}"
    );
    assert!(rt.is_complete(), "[{name}] job did not complete");
    let outcomes = rt.migration_outcomes();
    assert_eq!(
        outcomes.total(),
        1,
        "[{name}] trigger unaccounted for: {outcomes:?}"
    );
    assert_eq!(outcomes.lost, 0, "[{name}] trigger lost: {outcomes:?}");
    // Refinement check: whatever the fault did, the observed event
    // sequence must still be derivable from the protocol model.
    let report = protoverify::observe_trace(&sim.handle().tracer().drain_events());
    if let Some(v) = &report.violation {
        panic!("[{name}] trace does not refine the protocol model:\n{v}");
    }
    outcomes
}

#[test]
fn spare_crash_at_every_phase_completes_or_degrades() {
    for (i, phase) in MigPhase::ALL.iter().enumerate() {
        let name = format!("spare_crash_{}", phase.name());
        let plan = FaultPlan::new(0xA0).with(FaultSpec::SpareCrash {
            phase: *phase,
            attempt: 1,
        });
        let outcomes = run_scenario(&name, 40 + i as u64, plan);
        // One spare, and it dies: the only recovery path is the CR
        // baseline.
        assert_eq!(outcomes.fell_back_to_cr, 1, "[{name}] {outcomes:?}");
    }
}

#[test]
fn io_faults_complete_or_degrade() {
    // BLCR dump failure at the source kills that cycle; the retry (the
    // spare survives a timeout abort) succeeds.
    let o = run_scenario(
        "blcr_write_error",
        50,
        FaultPlan::new(0xB0).with(FaultSpec::BlcrWriteError { nth: 1 }),
    );
    assert_eq!(o.migrated_after_retry, 1, "[blcr_write_error] {o:?}");

    // RDMA faults are absorbed by per-chunk re-issue within the attempt.
    let o = run_scenario(
        "rdma_cq_error",
        51,
        FaultPlan::new(0xB1).with(FaultSpec::RdmaCqError { nth: 1 }),
    );
    assert_eq!(o.migrated, 1, "[rdma_cq_error] {o:?}");
    let o = run_scenario(
        "rdma_corrupt",
        52,
        FaultPlan::new(0xB2).with(FaultSpec::RdmaCorrupt { nth: 2 }),
    );
    assert_eq!(o.migrated, 1, "[rdma_corrupt] {o:?}");

    // Store faults only bite once the spare's death has forced the CR
    // fallback: the dump hits the fault and the bounded retry rides it
    // out (one-shot faults don't re-fire).
    for (name, seed, fault, nth) in [
        ("store_disk_full_on_fallback", 53, StoreFault::DiskFull, 1),
        ("store_io_error_on_fallback", 54, StoreFault::IoError, 2),
    ] {
        let plan = FaultPlan::new(0xB3)
            .with(FaultSpec::SpareCrash {
                phase: MigPhase::Migrate,
                attempt: 1,
            })
            .with(FaultSpec::StoreWrite { fault, nth });
        let o = run_scenario(name, seed, plan);
        assert_eq!(o.fell_back_to_cr, 1, "[{name}] {o:?}");
    }
}

#[test]
fn network_faults_complete_or_degrade() {
    // Silent datagram loss and visible link flaps on either network,
    // opened right as the migration window starts. Phase deadlines
    // guarantee forward progress whichever control message is hit.
    let windows: [(&str, u64, FaultSpec); 4] = [
        (
            "gige_drop_window",
            60,
            FaultSpec::NetDrop {
                net: NetSel::Gige,
                after: secs(10),
                count: 3,
            },
        ),
        (
            "gige_flap_window",
            61,
            FaultSpec::LinkFlap {
                net: NetSel::Gige,
                at: secs(10),
                lasts: ms(800),
            },
        ),
        (
            "ib_drop_window",
            62,
            FaultSpec::NetDrop {
                net: NetSel::Ib,
                after: secs(10),
                count: 3,
            },
        ),
        (
            "ib_flap_window",
            63,
            FaultSpec::LinkFlap {
                net: NetSel::Ib,
                at: secs(10),
                lasts: ms(500),
            },
        ),
    ];
    for (name, seed, spec) in windows {
        let o = run_scenario(name, seed, FaultPlan::new(0xC0).with(spec));
        // Whatever the loss hits, the trigger must resolve to a success
        // (possibly after a timeout-driven retry) or the CR fallback.
        assert!(
            o.migrated + o.migrated_after_retry + o.fell_back_to_cr == 1,
            "[{name}] {o:?}"
        );
    }
}
