//! The RDMA buffer-pool engine in isolation: chunking, flow control,
//! reassembly, integrity, accounting — Figure 3 without the rest of the
//! framework.

use blcrsim::{Blcr, BlcrConfig, ProcessImage, SegmentKind};
use ibfabric::{DataSlice, IbConfig, IbFabric, NodeId};
use jobmig_core::bufpool::{PoolConfig, PoolRendezvous, RestartMode, TransferSession, Transport};
use simkit::{Link, Sharing, Simulation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use storesim::{CkptStore, Disk, DiskConfig, LocalFs};

fn test_fs(h: &simkit::SimHandle) -> LocalFs {
    LocalFs::new(Disk::new(
        h,
        "tgt",
        DiskConfig {
            bandwidth: 100e6,
            alpha: 0.1,
            mem_bandwidth: 2e9,
            dirty_limit: 1 << 30,
            flush_bandwidth: 60e6,
            read_factor: 1.0,
        },
    ))
}

fn image(rank: u64, mb: u64) -> ProcessImage {
    ProcessImage::new(rank, format!("state-{rank}").into_bytes()).with_segment(
        SegmentKind::Heap,
        DataSlice::pattern(rank * 7 + 1, 0, mb << 20),
    )
}

/// Full source→target pull of `n` process streams; returns
/// (bytes_streamed, bytes_pulled, per-rank assembled bytes).
fn pump(n: u32, mb_per_rank: u64, cfg: PoolConfig) -> (u64, u64, Vec<u64>) {
    let mut sim = Simulation::new(1);
    let h = sim.handle();
    let fab = IbFabric::new(&h, IbConfig::default());
    let src_hca = fab.attach(NodeId(0));
    let tgt_hca = fab.attach(NodeId(1));
    let fs: Arc<dyn CkptStore> = Arc::new(test_fs(&h));
    let rdv = PoolRendezvous::new(&h);
    let membus = Link::new(&h, "walk", 450e6, Sharing::Fair);
    let blcr = Blcr::new(membus, BlcrConfig::default());

    let streamed = Arc::new(AtomicU64::new(0));
    let pulled = Arc::new(AtomicU64::new(0));
    let sizes = Arc::new(parking_lot::Mutex::new(Vec::new()));

    // Source side: a coordinator sets up the pool, then n writers stream.
    let rdv2 = rdv.clone();
    let st2 = streamed.clone();
    sim.spawn("source", move |ctx| {
        let (pool, _ack) = TransferSession::from_config(cfg).source(ctx, &src_hca, n, &rdv2);
        let done = simkit::Countdown::new(&ctx.handle(), "writers", n as u64);
        for r in 0..n {
            let pool = pool.clone();
            let blcr = blcr.clone();
            let done = done.clone();
            ctx.spawn(&format!("writer{r}"), move |ctx| {
                let img = image(r as u64, mb_per_rank);
                let mut sink = pool.sink(ctx, r, img.checksum());
                blcr.checkpoint(ctx, &img, &mut sink);
                done.arrive();
            });
        }
        done.wait(ctx);
        pool.finished().wait(ctx);
        st2.store(pool.bytes_streamed(), Ordering::SeqCst);
    });
    // Target side.
    let p2 = pulled.clone();
    let sz2 = sizes.clone();
    sim.spawn("target", move |ctx| {
        let res = TransferSession::from_config(cfg)
            .target(ctx, &tgt_hca, &rdv, fs, "mig.t")
            .expect("pull");
        p2.store(res.bytes_pulled, Ordering::SeqCst);
        let mut v: Vec<(u32, u64)> = res.images.iter().map(|(r, i)| (*r, i.bytes)).collect();
        v.sort();
        *sz2.lock() = v.into_iter().map(|(_, b)| b).collect();
    });
    sim.run().unwrap();
    let out_sizes = sizes.lock().clone();
    (
        streamed.load(Ordering::SeqCst),
        pulled.load(Ordering::SeqCst),
        out_sizes,
    )
}

#[test]
fn streams_reassemble_exactly() {
    let cfg = PoolConfig::default();
    let (streamed, pulled, sizes) = pump(4, 8, cfg);
    assert_eq!(streamed, pulled, "every streamed byte must be pulled");
    assert_eq!(sizes.len(), 4);
    for (r, b) in sizes.iter().enumerate() {
        let expect = blcrsim::serialize_image(&image(r as u64, 8))
            .iter()
            .map(|s| s.len)
            .sum::<u64>();
        assert_eq!(*b, expect, "rank {r} stream length");
    }
}

#[test]
fn single_chunk_pool_still_completes() {
    // Pool of exactly one chunk: writers fully serialized by flow
    // control, everything still arrives.
    let cfg = PoolConfig {
        pool_bytes: 1 << 20,
        chunk_bytes: 1 << 20,
        ..PoolConfig::default()
    };
    let (streamed, pulled, sizes) = pump(3, 4, cfg);
    assert_eq!(streamed, pulled);
    assert_eq!(sizes.len(), 3);
}

#[test]
fn pool_exhaustion_throttles_but_preserves_data() {
    // tiny pool vs many writers: heavy contention for slots
    let cfg = PoolConfig {
        pool_bytes: 2 << 20,
        chunk_bytes: 1 << 20,
        ..PoolConfig::default()
    };
    let (streamed, pulled, sizes) = pump(8, 2, cfg);
    assert_eq!(streamed, pulled);
    assert_eq!(sizes.len(), 8);
}

#[test]
fn odd_sized_streams_with_partial_final_chunks() {
    // 1 MB chunks, ~3.3 MB images: final chunk of each rank is partial
    let cfg = PoolConfig::default();
    let mut sim = Simulation::new(2);
    let h = sim.handle();
    let fab = IbFabric::new(&h, IbConfig::default());
    let src_hca = fab.attach(NodeId(0));
    let tgt_hca = fab.attach(NodeId(1));
    let fs: Arc<dyn CkptStore> = Arc::new(test_fs(&h));
    let rdv = PoolRendezvous::new(&h);
    let membus = Link::new(&h, "walk", 450e6, Sharing::Fair);
    let blcr = Blcr::new(membus, BlcrConfig::default());
    let rdv2 = rdv.clone();
    sim.spawn("source", move |ctx| {
        let (pool, _ack) = TransferSession::from_config(cfg).source(ctx, &src_hca, 1, &rdv2);
        let img = ProcessImage::new(0, &b"odd"[..]).with_segment(
            SegmentKind::Heap,
            DataSlice::pattern(3, 0, 3 * (1 << 20) + 12345),
        );
        let mut sink = pool.sink(ctx, 0, img.checksum());
        blcr.checkpoint(ctx, &img, &mut sink);
        pool.finished().wait(ctx);
    });
    sim.spawn("target", move |ctx| {
        let res = TransferSession::from_config(cfg)
            .target(ctx, &tgt_hca, &rdv, fs.clone(), "mig.odd")
            .expect("pull");
        let img_info = &res.images[&0];
        // restore and verify integrity end to end
        let mut src = blcrsim::StoreSource::new(fs.clone(), img_info.path.clone());
        let membus2 = Link::new(&ctx.handle(), "walk2", 450e6, Sharing::Fair);
        let blcr2 = Blcr::new(membus2, BlcrConfig::default());
        let back = blcr2
            .restart(ctx, &mut src, &blcrsim::RestartCosts::default())
            .unwrap();
        assert_eq!(back.checksum(), img_info.expected_checksum);
        assert_eq!(back.memory_bytes(), 3 * (1 << 20) + 12345);
    });
    sim.run().unwrap();
}

#[test]
fn memory_mode_keeps_streams_off_the_filesystem() {
    let cfg = PoolConfig {
        restart_mode: RestartMode::MemoryBased,
        ..PoolConfig::default()
    };
    let mut sim = Simulation::new(3);
    let h = sim.handle();
    let fab = IbFabric::new(&h, IbConfig::default());
    let src_hca = fab.attach(NodeId(0));
    let tgt_hca = fab.attach(NodeId(1));
    let fs = test_fs(&h);
    let fs_dyn: Arc<dyn CkptStore> = Arc::new(fs.clone());
    let rdv = PoolRendezvous::new(&h);
    let membus = Link::new(&h, "walk", 450e6, Sharing::Fair);
    let blcr = Blcr::new(membus, BlcrConfig::default());
    let rdv2 = rdv.clone();
    sim.spawn("source", move |ctx| {
        let (pool, _ack) = TransferSession::from_config(cfg).source(ctx, &src_hca, 1, &rdv2);
        let img = image(0, 4);
        let mut sink = pool.sink(ctx, 0, img.checksum());
        blcr.checkpoint(ctx, &img, &mut sink);
        pool.finished().wait(ctx);
    });
    sim.spawn("target", move |ctx| {
        let res = TransferSession::from_config(cfg)
            .target(ctx, &tgt_hca, &rdv, fs_dyn, "mig.mem")
            .expect("pull");
        let info = &res.images[&0];
        let slices = info.slices.as_ref().expect("in-memory stream");
        let parsed = blcrsim::parse_stream(slices.to_vec()).unwrap();
        assert_eq!(parsed.checksum(), info.expected_checksum);
    });
    sim.run().unwrap();
    assert_eq!(fs.bytes_written(), 0, "no temp files in memory mode");
}

#[test]
fn ipoib_transport_is_slower_but_correct() {
    let fast = pump(2, 8, PoolConfig::default());
    let mut sim_time_rdma = 0.0;
    let mut sim_time_ipoib = 0.0;
    for (transport, out) in [
        (Transport::RdmaRead, &mut sim_time_rdma),
        (Transport::IpoibStaged, &mut sim_time_ipoib),
    ] {
        let mut sim = Simulation::new(4);
        let h = sim.handle();
        let fab = IbFabric::new(&h, IbConfig::default());
        let src_hca = fab.attach(NodeId(0));
        let tgt_hca = fab.attach(NodeId(1));
        let fs: Arc<dyn CkptStore> = Arc::new(test_fs(&h));
        let rdv = PoolRendezvous::new(&h);
        let cfg = PoolConfig {
            transport,
            ..PoolConfig::default()
        };
        let membus = Link::new(&h, "walk", 450e6, Sharing::Fair);
        let blcr = Blcr::new(membus, BlcrConfig::default());
        let rdv2 = rdv.clone();
        sim.spawn("source", move |ctx| {
            let (pool, _ack) = TransferSession::from_config(cfg).source(ctx, &src_hca, 2, &rdv2);
            let done = simkit::Countdown::new(&ctx.handle(), "w", 2);
            for r in 0..2 {
                let pool = pool.clone();
                let blcr = blcr.clone();
                let done = done.clone();
                ctx.spawn(&format!("w{r}"), move |ctx| {
                    let img = image(r as u64, 16);
                    let mut sink = pool.sink(ctx, r, img.checksum());
                    blcr.checkpoint(ctx, &img, &mut sink);
                    done.arrive();
                });
            }
            done.wait(ctx);
            pool.finished().wait(ctx);
        });
        sim.spawn("target", move |ctx| {
            TransferSession::from_config(cfg)
                .target(ctx, &tgt_hca, &rdv, fs, "mig.x")
                .expect("pull");
        });
        sim.run().unwrap();
        *out = sim.now().as_secs_f64();
    }
    assert!(
        sim_time_ipoib > sim_time_rdma,
        "IPoIB {sim_time_ipoib} must be slower than RDMA {sim_time_rdma}"
    );
    let _ = fast;
}

#[test]
fn table1_accounting_matches_stream_bytes() {
    let (streamed, _, sizes) = pump(8, 21, PoolConfig::default());
    let total: u64 = sizes.iter().sum();
    assert_eq!(streamed, total);
    // ~8 ranks x 21 MiB ≈ 176 MB — the Table I scale
    assert!((170_000_000..180_000_000).contains(&streamed));
}

#[test]
fn multi_lane_pull_matches_single_lane_byte_for_byte() {
    // Striping chunk pulls across parallel QPs must not change what
    // arrives: same streamed/pulled totals, same per-rank stream lengths.
    let single = pump(4, 6, PoolConfig::default());
    for lanes in [2, 4] {
        let cfg = PoolConfig {
            lanes,
            ..PoolConfig::default()
        };
        let striped = pump(4, 6, cfg);
        assert_eq!(striped.0, single.0, "streamed bytes, {lanes} lanes");
        assert_eq!(striped.1, single.1, "pulled bytes, {lanes} lanes");
        assert_eq!(striped.2, single.2, "per-rank sizes, {lanes} lanes");
    }
}

#[test]
fn multi_lane_memory_mode_reassembles_in_order() {
    // Out-of-order lane completions must be sequenced back into a valid
    // stream; memory mode checks this end to end via parse + checksum.
    let cfg = PoolConfig {
        restart_mode: RestartMode::MemoryBased,
        lanes: 4,
        ..PoolConfig::default()
    };
    let mut sim = Simulation::new(9);
    let h = sim.handle();
    let fab = IbFabric::new(&h, IbConfig::default());
    let src_hca = fab.attach(NodeId(0));
    let tgt_hca = fab.attach(NodeId(1));
    let fs: Arc<dyn CkptStore> = Arc::new(test_fs(&h));
    let rdv = PoolRendezvous::new(&h);
    let membus = Link::new(&h, "walk", 450e6, Sharing::Fair);
    let blcr = Blcr::new(membus, BlcrConfig::default());
    let rdv2 = rdv.clone();
    sim.spawn("source", move |ctx| {
        let (pool, _ack) = TransferSession::from_config(cfg).source(ctx, &src_hca, 2, &rdv2);
        let done = simkit::Countdown::new(&ctx.handle(), "w", 2);
        for r in 0..2 {
            let pool = pool.clone();
            let blcr = blcr.clone();
            let done = done.clone();
            ctx.spawn(&format!("w{r}"), move |ctx| {
                let img = image(r as u64, 8);
                let mut sink = pool.sink(ctx, r, img.checksum());
                blcr.checkpoint(ctx, &img, &mut sink);
                done.arrive();
            });
        }
        done.wait(ctx);
        pool.finished().wait(ctx);
    });
    sim.spawn("target", move |ctx| {
        let res = TransferSession::from_config(cfg)
            .target(ctx, &tgt_hca, &rdv, fs, "mig.lanes")
            .expect("pull");
        for r in 0..2u32 {
            let info = &res.images[&r];
            let slices = info.slices.as_ref().expect("in-memory stream");
            let parsed = blcrsim::parse_stream(slices.to_vec()).unwrap();
            assert_eq!(parsed.checksum(), info.expected_checksum, "rank {r}");
        }
    });
    sim.run().unwrap();
}

#[test]
fn session_builder_wires_every_knob() {
    let cfg = TransferSession::builder()
        .pool_bytes(4 << 20)
        .chunk_bytes(1 << 19)
        .transport(Transport::IpoibStaged)
        .restart_mode(RestartMode::MemoryBased)
        .chunk_retries(7)
        .lanes(3)
        .overlap(true)
        .restart_admission(2)
        .build()
        .config();
    assert_eq!(cfg.pool_bytes, 4 << 20);
    assert_eq!(cfg.chunk_bytes, 1 << 19);
    assert_eq!(cfg.transport, Transport::IpoibStaged);
    assert_eq!(cfg.restart_mode, RestartMode::MemoryBased);
    assert_eq!(cfg.chunk_retries, 7);
    assert_eq!(cfg.lanes, 3);
    assert!(cfg.overlap);
    assert_eq!(cfg.restart_admission, 2);
}

#[test]
fn default_config_session_pumps_single_rank() {
    // The default-config path the removed pre-TransferSession shims used
    // to pin: one rank, one lane, file-backed staging.
    let cfg = PoolConfig::default();
    let mut sim = Simulation::new(5);
    let h = sim.handle();
    let fab = IbFabric::new(&h, IbConfig::default());
    let src_hca = fab.attach(NodeId(0));
    let tgt_hca = fab.attach(NodeId(1));
    let fs: Arc<dyn CkptStore> = Arc::new(test_fs(&h));
    let rdv = PoolRendezvous::new(&h);
    let membus = Link::new(&h, "walk", 450e6, Sharing::Fair);
    let blcr = Blcr::new(membus, BlcrConfig::default());
    let rdv2 = rdv.clone();
    sim.spawn("source", move |ctx| {
        let (pool, _ack) = TransferSession::from_config(cfg).source(ctx, &src_hca, 1, &rdv2);
        let img = image(0, 2);
        let mut sink = pool.sink(ctx, 0, img.checksum());
        blcr.checkpoint(ctx, &img, &mut sink);
        pool.finished().wait(ctx);
    });
    sim.spawn("target", move |ctx| {
        let res = TransferSession::from_config(cfg)
            .target(ctx, &tgt_hca, &rdv, fs, "mig.old")
            .expect("pull");
        assert_eq!(res.images.len(), 1);
    });
    sim.run().unwrap();
}
