//! Coordinated Checkpoint/Restart baseline: dump, resume, rollback
//! restart — and the core comparison property of the paper.

use jobmig_core::prelude::*;
use jobmig_core::report::CrStoreKind;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{SimTime, Simulation};

fn job(sim: &Simulation, with_pvfs: bool) -> (Cluster, JobRuntime) {
    let mut spec = ClusterSpec::sized(2, 1);
    spec.with_pvfs = with_pvfs;
    let cluster = Cluster::build(&sim.handle(), spec);
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    (cluster, rt)
}

#[test]
fn checkpoint_to_ext3_and_continue() {
    let mut sim = Simulation::new(10);
    let (_c, rt) = job(&sim, false);
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("ckpt-trigger", move |ctx| {
        ctx.sleep(secs(25));
        rt2.control()
            .checkpoint(CheckpointRequest::to(CrStoreKind::LocalExt3));
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    let reports = rt.cr_reports();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.store, CrStoreKind::LocalExt3);
    assert!(r.restart.is_none());
    // all four images dumped: 4 * per-proc image (plus headers)
    let img = Workload::new(NpbApp::Lu, NpbClass::A, 4).per_proc_image();
    assert!(r.bytes_written >= 4 * img);
    assert!(r.bytes_written < 4 * img + 8192);
    // dump at disk speed dominates the stall
    assert!(r.checkpoint > r.stall);
    assert!(r.resume > std::time::Duration::ZERO);
}

#[test]
fn checkpoint_to_pvfs_works_and_restarts() {
    // At 4 concurrent streams PVFS legitimately beats local ext3 — its
    // penalty only appears under the paper's 64-stream contention (the
    // Fig. 7 bench shows the crossover). Here we verify the PVFS dump and
    // rollback-restart path end to end.
    let mut sim = Simulation::new(11);
    let (_c, rt) = job(&sim, true);
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("t", move |ctx| {
        ctx.sleep(secs(25));
        rt2.control()
            .checkpoint(CheckpointRequest::to(CrStoreKind::Pvfs));
        ctx.sleep(secs(60));
        rt2.control().restart_from_checkpoint(1);
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    let r = &rt.cr_reports()[0];
    assert_eq!(r.store, CrStoreKind::Pvfs);
    let img = Workload::new(NpbApp::Lu, NpbClass::A, 4).per_proc_image();
    assert!(r.bytes_written >= 4 * img);
    assert!(r.restart.is_some(), "restart from PVFS measured");
}

#[test]
fn restart_from_checkpoint_rolls_back_and_completes() {
    let mut sim = Simulation::new(12);
    let (_c, rt) = job(&sim, false);
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("script", move |ctx| {
        ctx.sleep(secs(25));
        rt2.control()
            .checkpoint(CheckpointRequest::to(CrStoreKind::LocalExt3));
        // let the job run on, then "fail" and restart from the checkpoint
        ctx.sleep(secs(120));
        rt2.control().restart_from_checkpoint(1);
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete(), "job completes after rollback restart");
    let r = &rt.cr_reports()[0];
    let restart = r.restart.expect("restart measured");
    assert!(restart > std::time::Duration::from_millis(100));
    assert!(r.total_with_restart().unwrap() > r.checkpoint_cycle());
    // rollback re-executes work: total virtual runtime exceeds base run
    let base = {
        let mut sim2 = Simulation::new(12);
        let (_c2, rt2) = job(&sim2, false);
        sim2.run_until_set(rt2.completion(), SimTime::MAX).unwrap();
        sim2.now().as_secs_f64()
    };
    assert!(sim.now().as_secs_f64() > base + 30.0, "rollback redid work");
}

#[test]
fn migration_beats_full_cr_cycle() {
    // The paper's headline comparison, at test scale: handling a node
    // failure by migration is faster than checkpoint + restart.
    let mig_total = {
        let mut sim = Simulation::new(13);
        let (_c, rt) = job(&sim, false);
        rt.control()
            .migrate_after(secs(25), MigrationRequest::new());
        sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
        rt.migration_reports()[0].total()
    };
    let cr_total = {
        let mut sim = Simulation::new(13);
        let (_c, rt) = job(&sim, false);
        let rt2 = rt.clone();
        sim.handle().spawn_daemon("script", move |ctx| {
            ctx.sleep(secs(25));
            rt2.control()
                .checkpoint(CheckpointRequest::to(CrStoreKind::LocalExt3));
            ctx.sleep(secs(60));
            rt2.control().restart_from_checkpoint(1);
        });
        sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
        rt.cr_reports()[0].total_with_restart().unwrap()
    };
    assert!(
        mig_total < cr_total,
        "migration {mig_total:?} must beat CR cycle {cr_total:?}"
    );
}

#[test]
fn checkpoint_then_migration_compose() {
    let mut sim = Simulation::new(14);
    let (_c, rt) = job(&sim, false);
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("script", move |ctx| {
        ctx.sleep(secs(20));
        rt2.control()
            .checkpoint(CheckpointRequest::to(CrStoreKind::LocalExt3));
        ctx.sleep(secs(60));
        rt2.control().migrate(MigrationRequest::new());
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    assert_eq!(rt.cr_reports().len(), 1);
    assert_eq!(rt.migration_reports().len(), 1);
}
