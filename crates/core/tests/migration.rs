//! End-to-end migration: a small NPB job survives a mid-run migration
//! with correct results, proper phase ordering and data accounting.

use jobmig_core::msgs::NlaState;
use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{SimTime, Simulation};

fn small_job(sim: &Simulation, np: u32, ppn: u32) -> (Cluster, JobRuntime, Workload) {
    let spec = ClusterSpec::sized(np / ppn, 1);
    let cluster = Cluster::build(&sim.handle(), spec);
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, np);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl.clone(), ppn));
    (cluster, rt, wl)
}

#[test]
fn job_completes_without_migration() {
    let mut sim = Simulation::new(1);
    let (_c, rt, wl) = small_job(&sim, 4, 2);
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    // Base runtime: LU.A.4 → 160 * 64/4 s of modelled compute... scaled by
    // class A data; the runtime model keeps base_runtime regardless of
    // class, so just sanity-check it ran for roughly that long.
    let expect = wl.base_runtime.as_secs_f64();
    let ran = sim.now().as_secs_f64();
    assert!(
        ran > expect && ran < expect * 1.2,
        "ran {ran}s vs base {expect}s"
    );
    assert!(rt.migration_reports().is_empty());
}

#[test]
fn migration_moves_ranks_and_job_still_completes() {
    let mut sim = Simulation::new(2);
    let (cluster, rt, _wl) = small_job(&sim, 4, 2);
    let source = cluster.compute_nodes()[0];
    let spare = cluster.spare_nodes()[0];
    rt.control()
        .migrate_after(secs(30), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete(), "job must finish after migration");

    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.source, source);
    assert_eq!(r.target, spare);
    assert_eq!(r.ranks_moved, 2);
    // ranks 0 and 1 now live on the spare
    assert_eq!(rt.job().rank_node(0), spare);
    assert_eq!(rt.job().rank_node(1), spare);
    // NLA state machine followed the paper
    assert_eq!(rt.nla_state(source), Some(NlaState::MigrationInactive));
    assert_eq!(rt.nla_state(spare), Some(NlaState::MigrationReady));
    assert_eq!(rt.spares_left(), 0);

    // phase sanity: all positive, restart dominates stall
    assert!(r.stall > std::time::Duration::ZERO);
    assert!(r.migrate > std::time::Duration::ZERO);
    assert!(r.restart > r.stall);
    assert!(r.resume > std::time::Duration::ZERO);
    // data accounting: 2 ranks' images (~2 * image bytes + headers)
    let img = Workload::new(NpbApp::Lu, NpbClass::A, 4).per_proc_image();
    let lo = 2 * img;
    let hi = 2 * img + 4096;
    assert!(
        (lo..hi).contains(&r.bytes_moved),
        "moved {} expected ~{}",
        r.bytes_moved,
        lo
    );
}

#[test]
fn migration_is_deterministic() {
    fn run_once() -> (u64, u128) {
        let mut sim = Simulation::new(7);
        let (_c, rt, _wl) = small_job(&sim, 4, 2);
        rt.control()
            .migrate_after(secs(10), MigrationRequest::new());
        sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
        let r = &rt.migration_reports()[0];
        (r.bytes_moved, r.total().as_nanos())
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn two_sequential_migrations_with_two_spares() {
    let mut sim = Simulation::new(3);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 2));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    rt.control()
        .migrate_after(secs(20), MigrationRequest::new());
    // second migration moves the other original node
    let rt2 = rt.clone();
    let n2 = cluster.compute_nodes()[1];
    sim.handle().spawn_daemon("second-trigger", move |ctx| {
        ctx.sleep(secs(300));
        rt2.control().migrate(MigrationRequest::new().from_node(n2));
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 2);
    assert_eq!(rt.spares_left(), 0);
    // all four ranks now live on the two former spares
    for r in 0..4 {
        let n = rt.job().rank_node(r);
        assert!(cluster.spare_nodes().contains(&n), "rank {r} on {n}");
    }
}

#[test]
fn migration_without_spare_fails_gracefully() {
    let mut sim = Simulation::new(4);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 0));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete(), "job unaffected by failed trigger");
    // With no spare the trigger degrades to a coordinated checkpoint:
    // the report records the fallback, and a CR report carries the dump.
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, MigrationOutcome::FellBackToCr);
    assert_eq!(reports[0].ranks_moved, 0);
    let crs = rt.cr_reports();
    assert_eq!(crs.len(), 1);
    assert_eq!(crs[0].store, CrStoreKind::LocalExt3);
    assert!(crs[0].bytes_written > 0);
    assert_eq!(rt.migration_outcomes().fell_back_to_cr, 1);
}

#[test]
fn migration_overhead_is_small_fraction_of_runtime() {
    // the Fig. 5 property at small scale: one migration costs a few
    // percent of total runtime
    let base = {
        let mut sim = Simulation::new(5);
        let (_c, rt, _w) = small_job(&sim, 4, 2);
        sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
        sim.now().as_secs_f64()
    };
    let with_mig = {
        let mut sim = Simulation::new(5);
        let (_c, rt, _w) = small_job(&sim, 4, 2);
        rt.control()
            .migrate_after(secs(40), MigrationRequest::new());
        sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
        assert_eq!(rt.migration_reports().len(), 1);
        sim.now().as_secs_f64()
    };
    let overhead = (with_mig - base) / base;
    assert!(
        (0.0..0.12).contains(&overhead),
        "overhead {overhead} (base {base}, with {with_mig})"
    );
}

mod determinism {
    //! Property: one seed + one fault plan → one history. Two runs of the
    //! same configuration must produce byte-identical traces and identical
    //! migration reports, whatever faults the plan injects.

    use super::*;
    use proptest::prelude::*;

    fn plan(choice: u8) -> FaultPlan {
        match choice % 4 {
            0 => FaultPlan::new(9).with(FaultSpec::SpareCrash {
                phase: MigPhase::Restart,
                attempt: 1,
            }),
            1 => FaultPlan::new(9)
                .with(FaultSpec::RdmaCqError { nth: 1 })
                .with(FaultSpec::RdmaCorrupt { nth: 3 }),
            2 => FaultPlan::new(9).with(FaultSpec::BlcrWriteError { nth: 1 }),
            _ => FaultPlan::new(9).with(FaultSpec::LinkFlap {
                net: NetSel::Gige,
                at: secs(10),
                lasts: ms(700),
            }),
        }
    }

    /// One full faulted run → (chrome trace bytes, report debug dump).
    fn faulted_run(seed: u64, choice: u8) -> (String, String) {
        let mut sim = Simulation::new(seed);
        sim.handle().tracer().set_enabled(true);
        let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 2));
        cluster.install_fault_plane(&plan(choice));
        let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
        let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
        rt.control()
            .migrate_after(secs(10), MigrationRequest::new());
        sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
        let h = sim.handle();
        let trace = telemetry::chrome_trace(&h.tracer().drain_events(), &h.tracer().proc_names());
        let reports = format!("{:?} {:?}", rt.migration_reports(), rt.migration_outcomes());
        (trace, reports)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn same_seed_and_fault_plan_replay_byte_identically(
            seed in 1u64..512,
            choice in 0u8..4,
        ) {
            let (trace_a, reports_a) = faulted_run(seed, choice);
            let (trace_b, reports_b) = faulted_run(seed, choice);
            prop_assert!(trace_a == trace_b, "traces diverge for seed {seed}");
            prop_assert_eq!(reports_a, reports_b);
        }
    }
}
