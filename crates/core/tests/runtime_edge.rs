//! Runtime edge cases: migrations colliding with communication-heavy
//! application phases, queued triggers, spawn-tree maintenance, and
//! post-completion triggers.

use bytes::Bytes;
use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use mpisim::MpiRank;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{Ctx, SimTime, Simulation};

#[test]
fn migration_during_rendezvous_heavy_phase() {
    // An app that exchanges large (rendezvous) messages continuously: the
    // migration must land mid-handshake for some pair and still preserve
    // exactly-once delivery.
    let mut sim = Simulation::new(51);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let app = |ctx: &Ctx, rank: &mut MpiRank| {
        let np = rank.size();
        let r = rank.rank();
        let peer = r ^ 1; // pairs (0,1), (2,3)
        let _ = np;
        if rank.app_state().is_empty() {
            rank.set_segments(vec![blcrsim::Segment {
                kind: blcrsim::SegmentKind::Heap,
                data: ibfabric::DataSlice::pattern(r as u64 + 1, 0, 4 << 20),
            }]);
        }
        let start = if rank.app_state().len() >= 4 {
            u32::from_le_bytes(rank.app_state()[..4].try_into().unwrap())
        } else {
            0
        };
        for it in start..200 {
            // 1 MiB exchange every iteration: always rendezvous
            rank.exchange(ctx, peer, it as u64, 1 << 20);
            rank.compute(ctx, ms(40));
            rank.op_boundary(Bytes::copy_from_slice(&(it + 1).to_le_bytes()));
        }
    };
    let rt = JobRuntime::launch(&cluster, JobSpec::custom(4, 2, app));
    rt.control().migrate_after(secs(3), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());
    assert_eq!(rt.migration_reports().len(), 1);
    // exactly 200 exchanges per pair direction → 800 messages total
    assert_eq!(rt.job().stats().messages, 800);
}

#[test]
fn queued_triggers_are_serialized() {
    // Two triggers pushed back-to-back: the JM must run them as two
    // complete, non-overlapping cycles.
    let mut sim = Simulation::new(52);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 2));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    let rt2 = rt.clone();
    let (n1, n2) = (cluster.compute_nodes()[0], cluster.compute_nodes()[1]);
    sim.handle().spawn_daemon("both", move |ctx| {
        ctx.sleep(secs(20));
        rt2.control().migrate(MigrationRequest::new().from_node(n1));
        rt2.control().migrate(MigrationRequest::new().from_node(n2)); // queued immediately behind
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 2);
    // second cycle started only after the first completed
    let first_span = reports[0].total();
    assert!(first_span > std::time::Duration::ZERO);
    assert_eq!(reports[0].source, n1);
    assert_eq!(reports[1].source, n2);
    assert_ne!(reports[0].target, reports[1].target);
}

#[test]
fn spawn_tree_tracks_migrations() {
    let mut sim = Simulation::new(53);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    let (root0, nodes0) = rt.spawn_tree();
    assert_eq!(root0, cluster.login());
    assert_eq!(nodes0, cluster.compute_nodes());
    rt.control()
        .migrate_after(secs(20), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    let (_, nodes1) = rt.spawn_tree();
    let spare = cluster.spare_nodes()[0];
    assert!(nodes1.contains(&spare), "tree now includes the spare");
    assert!(
        !nodes1.contains(&cluster.compute_nodes()[0]),
        "tree no longer includes the migration source"
    );
}

#[test]
fn trigger_after_completion_is_harmless() {
    let mut sim = Simulation::new(54);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    let t_done = sim.now();
    // migrate a finished job: processes restart, find themselves done,
    // and exit immediately; the framework completes the cycle cleanly
    rt.control().migrate(MigrationRequest::new());
    sim.run_for(secs(120)).unwrap();
    assert_eq!(rt.migration_reports().len(), 1);
    assert!(rt.is_complete());
    assert!(sim.now() > t_done);
}

#[test]
fn migration_source_explicitly_unknown_node_is_ignored() {
    let mut sim = Simulation::new(55);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("bogus", move |ctx| {
        ctx.sleep(secs(10));
        rt2.control()
            .migrate(MigrationRequest::new().from_node(ibfabric::NodeId(999)));
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.migration_reports().is_empty());
    assert_eq!(rt.spares_left(), 1, "spare not consumed by bogus trigger");
}

#[test]
fn migrating_the_spare_back_works() {
    // Migrate node1 → spare, then migrate the spare → second spare:
    // ranks hop twice and the job still completes.
    let mut sim = Simulation::new(56);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 2));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    let first_spare = cluster.spare_nodes()[0];
    let rt2 = rt.clone();
    sim.handle().spawn_daemon("double-hop", move |ctx| {
        ctx.sleep(secs(20));
        rt2.control().migrate(MigrationRequest::new()); // node1 → spare0
        ctx.sleep(secs(120));
        rt2.control()
            .migrate(MigrationRequest::new().from_node(first_spare)); // spare0 → spare1
    });
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[1].source, first_spare);
    assert_eq!(reports[1].target, cluster.spare_nodes()[1]);
    // ranks 0,1 ended on the second spare
    assert_eq!(rt.job().rank_node(0), cluster.spare_nodes()[1]);
}
