//! Iterative pre-copy live migration: downtime shrinks against the
//! pipelined stop-and-copy baseline, the restarted images stay
//! byte-identical, and every fault path degrades to a classic cycle
//! instead of losing dirty segments.

use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{ArgValue, SimTime, Simulation, TraceEvent};
use std::time::Duration;

/// One migration on a sized(2, 1) cluster with the given tuning and an
/// optional fault plan; returns the reports and the drained trace.
fn run_traced(
    seed: u64,
    plan: Option<&FaultPlan>,
    tuning: MigrationTuning,
) -> (OutcomeCounts, Vec<MigrationReport>, Vec<TraceEvent>) {
    let mut sim = Simulation::new(seed);
    sim.handle().tracer().set_enabled(true);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    if let Some(plan) = plan {
        cluster.install_fault_plane(plan);
    }
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let deadline = SimTime::ZERO + wl.base_runtime + secs(600);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new().tuning(tuning));
    sim.run_until_set(rt.completion(), deadline)
        .expect("job hung past the virtual deadline");
    assert!(rt.is_complete());
    let outcomes = rt.migration_outcomes();
    assert_eq!(outcomes.lost, 0, "no trigger may be lost: {outcomes:?}");
    let events = sim.handle().tracer().drain_events();
    // Live cycles must still refine the protocol model (the new
    // PrecopyRound/Cutover/FallbackStopCopy edges carry the proof).
    let report = protoverify::observe_trace(&events);
    if let Some(v) = &report.violation {
        panic!("[seed {seed}] trace does not refine the protocol model:\n{v}");
    }
    (outcomes, rt.migration_reports(), events)
}

/// Clean live migration: at least one pre-copy round runs while the job
/// computes, the cycle cuts over (no fallback), and the barrier-held
/// downtime lands strictly below the stop-and-copy baseline's.
#[test]
fn live_cuts_over_and_shrinks_downtime() {
    let (o_base, r_base, _) = run_traced(11, None, MigrationTuning::pipelined());
    assert_eq!(o_base.migrated, 1);
    let base = &r_base[0];
    assert_eq!(base.precopy_rounds, 0, "stop-and-copy runs no rounds");

    let (o_live, r_live, events) = run_traced(11, None, MigrationTuning::live());
    assert_eq!(o_live.migrated, 1, "live trigger must still migrate");
    let live = &r_live[0];
    assert!(
        live.precopy_rounds >= 1,
        "live mode must complete at least one pre-copy round, got {}",
        live.precopy_rounds
    );
    assert!(
        live.precopy > Duration::ZERO,
        "pre-copy wall time must be recorded"
    );
    // The controller must have decided CutOver, never Fallback.
    assert!(
        !events.iter().any(|e| e.name == "live_fallback"),
        "clean run must not fall back to stop-and-copy"
    );
    let verdicts: Vec<_> = events
        .iter()
        .filter(|e| e.name == "round_verdict")
        .collect();
    assert_eq!(
        verdicts.len() as u32,
        live.precopy_rounds,
        "one verdict instant per completed round"
    );
    let last_verdict = verdicts.last().and_then(|e| {
        e.args.iter().find_map(|(k, v)| match v {
            ArgValue::Str(s) if *k == "verdict" => Some(s.clone()),
            _ => None,
        })
    });
    assert_eq!(
        last_verdict.as_deref(),
        Some("CutOver"),
        "final round verdict must be CutOver"
    );
    // The whole point: barrier-held downtime shrinks. The residual
    // stop-and-copy round moves only the dirtied tail of each image, so
    // migrate+restart collapse while stall/resume stay put.
    assert!(
        live.downtime() < base.downtime(),
        "live downtime {:?} must beat stop-and-copy {:?}",
        live.downtime(),
        base.downtime()
    );
    assert!(
        live.migrate + live.restart < base.migrate + base.restart,
        "residual transfer {:?}+{:?} must undercut the full-image transfer {:?}+{:?}",
        live.migrate,
        live.restart,
        base.migrate,
        base.restart
    );
    // Pre-copy bytes ride in bytes_moved: live moves at least a full
    // image's worth before the residual, so it transfers more in total.
    assert!(
        live.bytes_moved > base.bytes_moved,
        "live wire bytes {} must exceed stop-and-copy {}",
        live.bytes_moved,
        base.bytes_moved
    );
}

/// The restarted ranks resume from byte-identical state: the job runs to
/// completion after a live migration, which the runtime only allows when
/// every merged image's checksum matched the source's final checksum
/// (restart_one_rank re-verifies the accumulator + residual merge).
#[test]
fn live_migrated_job_completes_with_verified_images() {
    let (o, r, events) = run_traced(23, None, MigrationTuning::live());
    assert_eq!(o.migrated, 1);
    assert_eq!(r[0].ranks_moved, 2);
    // Per-rank restart readiness still fires exactly once per moved rank.
    let ready = events
        .iter()
        .filter(|e| e.name == "rank_image_ready")
        .count();
    assert_eq!(ready, 2, "one readiness instant per migrated rank");
    // And no checksum mismatch was ever reported.
    assert!(
        !events.iter().any(|e| e.name == "restart_rank_failed"),
        "no rank may fail checksum verification after the delta merge"
    );
}

/// CQ errors during a pre-copy round must not sink the trigger: single
/// errors are absorbed by the chunk reissue loop exactly as in
/// stop-and-copy, and a *persistent* error burst (every read failing,
/// exhausting `chunk_retries`) aborts the round's pull, which the
/// controller answers with a fallback to classic stop-and-copy — the
/// migration still completes.
#[test]
fn cq_error_mid_round_falls_back_to_stop_and_copy() {
    // One transient error: the round's chunk is reissued, live migration
    // proceeds to cutover as if nothing happened.
    let transient = FaultPlan::new(0xBEEF).with(FaultSpec::RdmaCqError { nth: 1 });
    let (o, _, events) = run_traced(31, Some(&transient), MigrationTuning::live());
    assert_eq!(o.migrated, 1, "transient CQ error is absorbed: {o:?}");
    assert!(
        events.iter().any(|e| e.name == "chunk_reissue"),
        "the error must have been seen and reissued"
    );
    assert!(
        !events.iter().any(|e| e.name == "live_fallback"),
        "a single reissued chunk must not trigger a fallback"
    );

    // Persistent burst: chunk_retries (4) is exhausted on the first
    // chunk of whichever lane the errors land on, aborting round 0's
    // pull. The controller falls back and the cycle completes as
    // stop-and-copy.
    let mut burst = FaultPlan::new(0xBEEF);
    for nth in 1..=10 {
        burst = burst.with(FaultSpec::RdmaCqError { nth });
    }
    let (o, r, events) = run_traced(31, Some(&burst), MigrationTuning::live());
    assert_eq!(
        o.migrated + o.migrated_after_retry,
        1,
        "trigger must still complete after the fallback: {o:?}"
    );
    assert!(
        events.iter().any(|e| e.name == "live_fallback"),
        "a failed round must surface as an explicit fallback"
    );
    // The fallback cycle streams full images — a classic stop-and-copy
    // profile even though a round was attempted first.
    assert_eq!(r[0].precopy_rounds, 0, "no round completed before fallback");
    assert!(r[0].bytes_moved > 0);
}

/// Spare death during the pre-copy phase aborts the attempt; the retry
/// runs classic stop-and-copy on the next spare — but sized(2, 1) has
/// only one spare, so the trigger degrades to the CR baseline instead of
/// being lost.
#[test]
fn spare_crash_during_precopy_degrades_cleanly() {
    let plan = FaultPlan::new(0xD00D).with(FaultSpec::SpareCrash {
        phase: MigPhase::Precopy,
        attempt: 1,
    });
    let (o, _, _) = run_traced(41, Some(&plan), MigrationTuning::live());
    assert_eq!(o.lost, 0);
    assert_eq!(
        o.migrated + o.migrated_after_retry + o.fell_back_to_cr,
        1,
        "the trigger must resolve: {o:?}"
    );
}
