//! Closing the loop between the model checker and the simulator: a
//! counterexample found by `protoverify` against a deliberately broken
//! transition table lowers (via `Counterexample::to_fault_plan`) to a
//! concrete `FaultPlan`, and replaying that plan in the full simulator
//! drives the *shipped* implementation through the exact scenario the
//! checker explored — where the real protocol degrades gracefully
//! instead of exhibiting the mutant's violation.

use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use protoverify::{
    check, Action, CheckConfig, CycleEvent, CyclePhase, CycleTransition, Guard, Invariant,
    MigrationSpec,
};
use simkit::dur::*;
use simkit::{SimTime, Simulation};

#[test]
fn checker_counterexample_replays_in_the_simulator() {
    // The mutation: a spare crash during Resume is "handled" by declaring
    // the cycle complete — the mistake the rollback machinery exists to
    // prevent.
    let broken = MigrationSpec::shipped().with_transition(CycleTransition {
        from: CyclePhase::Resume,
        on: CycleEvent::SpareCrash,
        guard: Guard::Always,
        to: CyclePhase::Complete,
        actions: vec![Action::SpareLost, Action::ResumeRanks],
    });
    let report = check(&broken, &CheckConfig::default());
    let cx = report.violation.expect("the mutant must be caught");
    assert_eq!(cx.invariant, Invariant::CompleteOrDegrade);

    // Lower the abstract trace to a concrete fault plan. The SpareCrash
    // edge maps exactly: same phase, same attempt.
    let plan = cx.to_fault_plan(0xCE);
    assert!(
        plan.entries.iter().any(|s| matches!(
            s,
            FaultSpec::SpareCrash {
                phase: MigPhase::Resume,
                attempt: 1
            }
        )),
        "plan must carry the counterexample's spare crash: {:?}",
        plan.entries
    );

    // Replay against the shipped implementation: one spare, which the
    // plan kills at the Resume boundary. The real tables roll the ranks
    // back to the source and degrade to the CR baseline — no lost ranks,
    // no phantom completion.
    let mut sim = Simulation::new(0xCE);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    let plane = cluster.install_fault_plane(&plan);
    let source = cluster.compute_nodes()[0];
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let deadline = SimTime::ZERO + wl.base_runtime + secs(600);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new());
    sim.run_until_set(rt.completion(), deadline)
        .expect("job must not hang replaying the counterexample plan");
    assert!(rt.is_complete());

    assert!(plane.injected() > 0, "the lowered fault plan must fire");
    let outcomes = rt.migration_outcomes();
    assert_eq!(
        outcomes.fell_back_to_cr, 1,
        "shipped tables must degrade, not complete: {outcomes:?}"
    );
    assert_eq!(outcomes.lost, 0, "{outcomes:?}");
    // no-lost-rank / rollback-restores-source, in the flesh: both ranks
    // ended the aborted cycle back on the source node.
    assert_eq!(rt.job().rank_node(0), source);
    assert_eq!(rt.job().rank_node(1), source);
}
