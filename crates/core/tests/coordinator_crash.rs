//! Coordinator-crash recovery: killing the Job Manager at WAL append
//! boundaries must always resolve to a deterministic resume-or-rollback
//! by the standby — never a hang, a lost trigger, a double-counted
//! outcome, or a leaked spare lease.

use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use proptest::prelude::*;
use simkit::dur::*;
use simkit::{SimTime, Simulation};

/// Everything one crash scenario produces that the assertions (and the
/// determinism re-runs) compare.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CrashRun {
    outcomes: OutcomeCounts,
    finished_at: SimTime,
    epoch: u64,
    /// Outstanding pool leases at completion: must always be empty.
    leases: Vec<(ibfabric::NodeId, u64)>,
    /// Record names in journal order.
    journal: Vec<&'static str>,
}

/// One migration on a sized(2, 1) cluster with a standby coordinator,
/// LU.A.4 at 2 ppn, a trigger at t+10 s, and the given fault plan.
fn run_crash(seed: u64, tuning: MigrationTuning, plan: Option<&FaultPlan>) -> CrashRun {
    let mut sim = Simulation::new(seed);
    sim.handle().tracer().set_enabled(true);
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, 1));
    if let Some(plan) = plan {
        cluster.install_fault_plane(plan);
    }
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let deadline = SimTime::ZERO + wl.base_runtime + secs(600);
    let mut spec = JobSpec::npb(wl, 2);
    spec.standby = true;
    let rt = JobRuntime::launch(&cluster, spec);
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new().tuning(tuning));
    sim.run_until_set(rt.completion(), deadline)
        .expect("job hung past the virtual deadline");
    assert!(rt.is_complete());
    rt.journal()
        .verify()
        .expect("journal checksum chain broken");
    // Takeover traces must refine the model too: the WAL automaton, the
    // fencing-epoch rule, and the cycle reset on takeover all replay.
    let report = protoverify::observe_trace(&sim.handle().tracer().drain_events());
    if let Some(v) = &report.violation {
        panic!("[seed {seed}] trace does not refine the protocol model:\n{v}");
    }
    CrashRun {
        outcomes: rt.migration_outcomes(),
        finished_at: sim.now(),
        epoch: rt.fencing_epoch(),
        leases: cluster.spare_pool().leases(),
        journal: rt
            .journal()
            .entries()
            .iter()
            .map(|e| e.record.name())
            .collect(),
    }
}

fn crash_plan(at: WalPoint) -> FaultPlan {
    FaultPlan::new(0xC0FFEE).with(FaultSpec::CoordinatorCrash { at })
}

/// The outcome classes a coordinator crash is allowed to resolve to.
/// `migrated` covers the one boundary (`CycleEnd`) past the outcome
/// accounting, where the crash strikes an already-finished cycle.
fn resolved_once(o: &OutcomeCounts) -> bool {
    o.total() == 1
        && o.lost == 0
        && o.migrated + o.resumed_by_standby + o.rolled_back_by_standby == 1
}

#[test]
fn crash_free_standby_run_is_inert() {
    // The standby daemon and the always-on journal must not perturb the
    // migration: same outcome as the plain run, epoch never bumped, and
    // the journal records exactly one clean committed cycle.
    let run = run_crash(7, MigrationTuning::barrier(), None);
    assert_eq!(run.outcomes.migrated, 1, "{:?}", run.outcomes);
    assert_eq!(run.epoch, 0);
    assert!(run.leases.is_empty());
    assert_eq!(*run.journal.first().unwrap(), "cycle_start");
    assert_eq!(*run.journal.last().unwrap(), "cycle_end");
    assert!(run.journal.contains(&"commit_point"));
    assert!(run.journal.contains(&"lease_commit"));
    assert!(!run.journal.contains(&"rollback"));
}

#[test]
fn phase_boundary_crashes_resolve_deterministically() {
    // Killing the coordinator at the first append of each phase has a
    // *predictable* resolution: at the Stall boundary the FTB_MIGRATE
    // publish provably never went out, so the standby rolls back; from
    // Migrate on, the autonomous data path finishes and the standby
    // resumes from the journal's point; Resume is past the commit point
    // and can only roll forward.
    for (phase, expect_resumed) in [
        (MigPhase::Stall, false),
        (MigPhase::Migrate, true),
        (MigPhase::Restart, true),
        (MigPhase::Resume, true),
    ] {
        let plan = crash_plan(WalPoint::Phase(phase));
        let run = run_crash(11, MigrationTuning::barrier(), Some(&plan));
        assert!(resolved_once(&run.outcomes), "{phase}: {:?}", run.outcomes);
        if expect_resumed {
            assert_eq!(
                run.outcomes.resumed_by_standby, 1,
                "{phase}: {:?}",
                run.outcomes
            );
        } else {
            assert_eq!(
                run.outcomes.rolled_back_by_standby, 1,
                "{phase}: {:?}",
                run.outcomes
            );
        }
        // Takeover fenced exactly one epoch, settled every lease, and
        // closed the journal tail.
        assert_eq!(run.epoch, 1, "{phase}");
        assert!(run.leases.is_empty(), "{phase}: leaked {:?}", run.leases);
        assert_eq!(*run.journal.last().unwrap(), "cycle_end", "{phase}");
    }
}

/// Sweep every record boundary of a crash-free journal: the crash fires
/// immediately after the n-th append, for every n. Each boundary must
/// resolve once, leak nothing, and (spot-checked pairwise) be
/// deterministic under the same seed.
fn sweep_boundaries(tuning: MigrationTuning, seed: u64) {
    let baseline = run_crash(seed, tuning, None);
    let n = baseline.journal.len();
    assert!(
        n >= 10,
        "journal suspiciously short: {:?}",
        baseline.journal
    );
    for boundary in 1..=n as u64 {
        let plan = crash_plan(WalPoint::Seq(boundary));
        let run = run_crash(seed, tuning, Some(&plan));
        let at = baseline.journal[boundary as usize - 1];
        assert!(
            resolved_once(&run.outcomes),
            "boundary {boundary} ({at}): {:?}",
            run.outcomes
        );
        assert!(
            run.leases.is_empty(),
            "boundary {boundary} ({at}): leaked leases {:?}",
            run.leases
        );
        // Boundaries strictly before the commit point may roll back;
        // boundaries at or after it must preserve the migration.
        let commit = baseline
            .journal
            .iter()
            .position(|r| *r == "commit_point")
            .unwrap() as u64
            + 1;
        if boundary >= commit {
            assert_eq!(
                run.outcomes.rolled_back_by_standby, 0,
                "boundary {boundary} ({at}) rolled back a committed cycle: {:?}",
                run.outcomes
            );
        }
    }
}

#[test]
fn every_wal_boundary_crash_resolves_barrier() {
    sweep_boundaries(MigrationTuning::barrier(), 23);
}

#[test]
fn every_wal_boundary_crash_resolves_pipelined() {
    sweep_boundaries(MigrationTuning::pipelined(), 29);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random (seed, boundary, mode, extra fault): the crash must resolve
    /// to exactly one accounted outcome with no leaked lease, and the
    /// whole run must be bit-for-bit repeatable — same seed, same plan,
    /// same virtual finish time.
    #[test]
    fn boundary_crashes_are_deterministic(
        seed in 0u64..500,
        boundary_pick in any::<usize>(),
        pipelined in any::<bool>(),
        spare_crash_too in any::<bool>(),
    ) {
        let tuning = if pipelined {
            MigrationTuning::pipelined()
        } else {
            MigrationTuning::barrier()
        };
        let baseline = run_crash(seed, tuning, None);
        let n = (boundary_pick % baseline.journal.len()) as u64 + 1;
        let mut plan = crash_plan(WalPoint::Seq(n));
        if spare_crash_too {
            // Compose with the fault matrix: the spare dies in Phase 2 of
            // whatever attempt is live once the standby has taken over.
            plan = plan.with(FaultSpec::SpareCrash {
                phase: MigPhase::Migrate,
                attempt: 2,
            });
        }
        let a = run_crash(seed, tuning, Some(&plan));
        let b = run_crash(seed, tuning, Some(&plan));
        prop_assert_eq!(&a, &b, "same scenario diverged");
        prop_assert!(a.outcomes.lost == 0, "{:?}", a.outcomes);
        prop_assert!(a.outcomes.total() >= 1, "{:?}", a.outcomes);
        prop_assert!(a.leases.is_empty(), "leaked leases {:?}", a.leases);
    }
}
