//! Self-healing migration: spare death mid-cycle, per-chunk RDMA
//! re-issue, retry on a second spare, and graceful degradation to the CR
//! baseline when no spare remains — the ISSUE's acceptance scenarios.

use jobmig_core::msgs::NlaState;
use jobmig_core::prelude::*;
use jobmig_core::runtime::JobSpec;
use npbsim::{NpbApp, NpbClass, Workload};
use simkit::dur::*;
use simkit::{SimTime, Simulation};

fn launch(sim: &Simulation, spares: u32) -> (Cluster, JobRuntime) {
    let cluster = Cluster::build(&sim.handle(), ClusterSpec::sized(2, spares));
    let wl = Workload::new(NpbApp::Lu, NpbClass::A, 4);
    let rt = JobRuntime::launch(&cluster, JobSpec::npb(wl, 2));
    (cluster, rt)
}

fn trace_string(sim: &Simulation) -> String {
    let handle = sim.handle();
    let events = handle.tracer().drain_events();
    let names = handle.tracer().proc_names();
    telemetry::chrome_trace(&events, &names)
}

#[test]
fn spare_death_during_restart_recovers_on_second_spare() {
    let mut sim = Simulation::new(11);
    sim.handle().tracer().set_enabled(true);
    let (cluster, rt) = launch(&sim, 2);
    let plane = cluster.install_fault_plane(&FaultPlan::new(1).with(FaultSpec::SpareCrash {
        phase: MigPhase::Restart,
        attempt: 1,
    }));
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete(), "job must finish despite the spare death");

    // The first spare died at the Phase 3 boundary; the retry landed the
    // ranks on the second spare.
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.outcome, MigrationOutcome::MigratedAfterRetry);
    assert_eq!(r.attempts, 2);
    let dead = cluster.spare_nodes()[0];
    let second = cluster.spare_nodes()[1];
    assert_eq!(r.target, second);
    assert_eq!(rt.job().rank_node(0), second);
    assert_eq!(rt.job().rank_node(1), second);
    // The dead spare's NLA is gone; the survivor hosts the ranks.
    assert_eq!(rt.nla_state(dead), None);
    assert_eq!(rt.nla_state(second), Some(NlaState::MigrationReady));
    assert_eq!(rt.spares_left(), 0);
    assert_eq!(rt.migration_outcomes().migrated_after_retry, 1);
    assert_eq!(plane.injected(), 1);

    // The whole story is visible in the exported trace.
    let trace = trace_string(&sim);
    for needle in [
        "spare_crash",
        "spare_node_dead",
        "cycle_abort",
        "migrated_after_retry",
    ] {
        assert!(trace.contains(needle), "trace missing {needle:?}");
    }
}

#[test]
fn spare_death_with_no_backup_degrades_to_cr() {
    let mut sim = Simulation::new(12);
    sim.handle().tracer().set_enabled(true);
    let (cluster, rt) = launch(&sim, 1);
    cluster.install_fault_plane(&FaultPlan::new(1).with(FaultSpec::SpareCrash {
        phase: MigPhase::Restart,
        attempt: 1,
    }));
    let source = cluster.compute_nodes()[0];
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());

    // Only spare died mid-cycle: the ranks were rolled back to the source
    // and the trigger degraded to a coordinated checkpoint.
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, MigrationOutcome::FellBackToCr);
    // One attempt actually ran (the spare died mid-cycle); the retry was
    // refused by the cycle table's RetryPath guard — the pool was empty —
    // so it does not count as an attempt.
    assert_eq!(reports[0].attempts, 1);
    assert_eq!(rt.job().rank_node(0), source);
    assert_eq!(rt.job().rank_node(1), source);
    assert_eq!(rt.nla_state(source), Some(NlaState::MigrationReady));
    let crs = rt.cr_reports();
    assert_eq!(crs.len(), 1);
    assert_eq!(crs[0].store, CrStoreKind::LocalExt3);
    assert!(crs[0].bytes_written > 0);
    assert_eq!(rt.migration_outcomes().fell_back_to_cr, 1);

    let trace = trace_string(&sim);
    for needle in ["cycle_abort", "migration_fallback_cr", "fell_back_to_cr"] {
        assert!(trace.contains(needle), "trace missing {needle:?}");
    }
}

#[test]
fn rdma_faults_are_reissued_within_the_attempt() {
    let mut sim = Simulation::new(13);
    sim.handle().tracer().set_enabled(true);
    let (cluster, rt) = launch(&sim, 1);
    let plane = cluster.install_fault_plane(
        &FaultPlan::new(1)
            .with(FaultSpec::RdmaCqError { nth: 2 })
            .with(FaultSpec::RdmaCorrupt { nth: 5 }),
    );
    rt.control()
        .migrate_after(secs(10), MigrationRequest::new());
    sim.run_until_set(rt.completion(), SimTime::MAX).unwrap();
    assert!(rt.is_complete());

    // Per-chunk re-issue absorbs both faults without burning the attempt.
    let reports = rt.migration_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, MigrationOutcome::Migrated);
    assert_eq!(reports[0].attempts, 1);
    assert_eq!(plane.injected(), 2);
    let trace = trace_string(&sim);
    assert!(trace.contains("chunk_reissue"), "re-issues must be traced");
}
