//! Golden-file test: the chrome-trace exporter's byte-exact output for a
//! small fixed event stream. Guards the JSON shape Perfetto depends on —
//! if the exporter changes intentionally, update the golden string.

use simkit::{ArgValue, EventKind, ProcId, SimTime, TraceEvent};
use std::collections::HashMap;
use telemetry::chrome_trace;

fn ev(
    t: u64,
    pid: Option<u32>,
    cat: &'static str,
    name: &str,
    kind: EventKind,
    args: Vec<(&'static str, ArgValue)>,
) -> TraceEvent {
    TraceEvent {
        time: SimTime::from_nanos(t),
        pid: pid.map(ProcId),
        cat,
        name: name.to_string(),
        kind,
        args,
    }
}

#[test]
fn golden_trace_output() {
    let events = vec![
        ev(
            1_000,
            Some(0),
            "phase",
            "stall",
            EventKind::Begin,
            vec![("cycle", ArgValue::U64(1))],
        ),
        ev(2_500, Some(0), "phase", "stall", EventKind::End, vec![]),
        ev(
            3_000,
            Some(1),
            "pool",
            "chunk_submit",
            EventKind::Instant,
            vec![("slot", ArgValue::U64(3))],
        ),
        ev(
            4_000,
            None,
            "store",
            "dirty:d0",
            EventKind::Counter(42.5),
            vec![],
        ),
    ];
    let mut names = HashMap::new();
    names.insert(0u32, "job-manager".to_string());
    let got = chrome_trace(&events, &names);
    let want = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"kernel\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"job-manager\"}},",
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,\"args\":{\"name\":\"proc-1\"}},",
        "{\"name\":\"stall\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":1,\"pid\":1,\"tid\":1,\"args\":{\"cycle\":1}},",
        "{\"name\":\"stall\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":2.5,\"pid\":1,\"tid\":1},",
        "{\"name\":\"chunk_submit\",\"cat\":\"pool\",\"ph\":\"i\",\"ts\":3,\"pid\":1,\"tid\":2,\"s\":\"t\",\"args\":{\"slot\":3}},",
        "{\"name\":\"dirty:d0\",\"cat\":\"store\",\"ph\":\"C\",\"ts\":4,\"pid\":1,\"tid\":0,\"args\":{\"value\":42.5}}",
        "]}"
    );
    assert_eq!(got, want);
}
