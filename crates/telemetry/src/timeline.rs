//! Per-run phase timeline, reconstructed from trace events.
//!
//! The migration protocol (and the CR baseline) wrap each protocol phase
//! in a `"phase"`-category span carrying a `cycle` argument. This module
//! folds those spans back into per-cycle phase stacks — the same
//! decomposition the paper's Figure 4 plots — so a run's timing breakdown
//! can be regenerated from its trace alone, without the in-band
//! [`MigrationReport`] bookkeeping.
//!
//! [`MigrationReport`]: https://docs.rs/jobmig-core

use simkit::{ArgValue, EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// The phase durations of one protocol cycle (migration or checkpoint),
/// keyed by span name in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct PhaseStack {
    phases: Vec<(String, Duration)>,
    /// Wall-clock extent of the cycle: earliest phase Begin and latest
    /// phase End. With the pipelined data path Phase 2 and Phase 3 spans
    /// overlap, so the extent is shorter than the phase sum.
    extent: Option<(simkit::SimTime, simkit::SimTime)>,
    /// Extent over barrier-held phases only — everything except the live
    /// pre-copy span, which runs while the application computes.
    held_extent: Option<(simkit::SimTime, simkit::SimTime)>,
}

/// Spans the application computes straight through: live migration's
/// iterative pre-copy. Every other phase span holds the job at a barrier.
fn is_overlapped_phase(name: &str) -> bool {
    name == "precopy"
}

impl PhaseStack {
    /// Duration of phase `name`, if it was traced.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// All phases in the order they began.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Sum of all phases. Equals the cycle's wall time only when phases
    /// are contiguous and non-overlapping (the barrier-mode protocol);
    /// under the pipelined data path prefer [`PhaseStack::wall`].
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Wall-clock time from the first phase's Begin to the last phase's
    /// End — the cycle's real duration even when phases overlap.
    pub fn wall(&self) -> Duration {
        self.extent
            .map(|(t0, t1)| Duration::from_nanos(t1.as_nanos().saturating_sub(t0.as_nanos())))
            .unwrap_or_default()
    }

    /// Phase time hidden by pipelining: how much of the phase sum ran
    /// concurrently with another phase (zero for a barrier-mode cycle).
    pub fn overlapped(&self) -> Duration {
        self.total().saturating_sub(self.wall())
    }

    /// Barrier-held wall time: the extent over every phase except the
    /// live pre-copy span — what the application actually loses to the
    /// cycle. Equals [`PhaseStack::wall`] for stop-and-copy cycles.
    pub fn downtime(&self) -> Duration {
        self.held_extent
            .map(|(t0, t1)| Duration::from_nanos(t1.as_nanos().saturating_sub(t0.as_nanos())))
            .unwrap_or_default()
    }

    /// Overlapped pre-copy wall time (zero for stop-and-copy cycles).
    pub fn precopy(&self) -> Duration {
        self.phase("precopy").unwrap_or_default()
    }

    fn add(&mut self, name: &str, t0: simkit::SimTime, t1: simkit::SimTime) {
        let d = Duration::from_nanos(t1.as_nanos() - t0.as_nanos());
        match self.phases.iter_mut().find(|(n, _)| n == name) {
            Some((_, acc)) => *acc += d,
            None => self.phases.push((name.to_string(), d)),
        }
        self.extent = Some(match self.extent {
            Some((lo, hi)) => (lo.min(t0), hi.max(t1)),
            None => (t0, t1),
        });
        if !is_overlapped_phase(name) {
            self.held_extent = Some(match self.held_extent {
                Some((lo, hi)) => (lo.min(t0), hi.max(t1)),
                None => (t0, t1),
            });
        }
    }
}

/// Write-ahead-log and takeover markers folded out of the `"wal"`-category
/// instants the coordinator emits: journal appends, replay on standby
/// takeover, the takeover itself, and fenced (rejected) zombie publishes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalMarks {
    /// `wal_append` instants: one per journal record written.
    pub appends: u64,
    /// `wal_replay` instants: one per standby journal-tail reconstruction.
    pub replays: u64,
    /// `takeover` instants: one per standby promotion.
    pub takeovers: u64,
    /// `fenced_publish` instants: FTB publishes rejected as stale-epoch.
    pub fenced_publishes: u64,
    /// Highest fencing epoch seen on a takeover marker (0 = no takeover).
    pub max_epoch: u64,
    /// Virtual time of the first takeover, if any.
    pub first_takeover: Option<simkit::SimTime>,
}

impl WalMarks {
    fn observe(&mut self, ev: &TraceEvent) {
        match ev.name.as_str() {
            "wal_append" => self.appends += 1,
            "wal_replay" => self.replays += 1,
            "takeover" => {
                self.takeovers += 1;
                self.first_takeover.get_or_insert(ev.time);
                if let Some(e) = ev.args.iter().find_map(|(k, v)| match (*k, v) {
                    ("epoch", ArgValue::U64(e)) => Some(*e),
                    _ => None,
                }) {
                    self.max_epoch = self.max_epoch.max(e);
                }
            }
            "fenced_publish" => self.fenced_publishes += 1,
            _ => {}
        }
    }
}

/// Phase stacks for every traced protocol cycle of a run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    cycles: BTreeMap<u64, PhaseStack>,
    wal: WalMarks,
}

impl Timeline {
    /// Fold `"phase"`-category spans out of `events`.
    ///
    /// A phase span is attributed to the cycle named by the `cycle`
    /// argument on its Begin event; spans without one land in cycle 0.
    /// Begin/End pairs are matched per (process, name) in LIFO order, so
    /// nested re-entries of the same phase name accumulate correctly.
    pub fn from_events(events: &[TraceEvent]) -> Timeline {
        // Open Begin edges for one (process, phase-name) track: stack of
        // (begin time, cycle id), popped LIFO when the End edge arrives.
        type OpenSpans<'a> =
            BTreeMap<(Option<simkit::ProcId>, &'a str), Vec<(simkit::SimTime, u64)>>;
        let mut open: OpenSpans = BTreeMap::new();
        let mut tl = Timeline::default();
        for ev in events {
            if ev.cat == "wal" && ev.kind == EventKind::Instant {
                tl.wal.observe(ev);
                continue;
            }
            if ev.cat != "phase" {
                continue;
            }
            match ev.kind {
                EventKind::Begin => {
                    let cycle = ev
                        .args
                        .iter()
                        .find_map(|(k, v)| match (*k, v) {
                            ("cycle", ArgValue::U64(c)) => Some(*c),
                            _ => None,
                        })
                        .unwrap_or(0);
                    open.entry((ev.pid, ev.name.as_str()))
                        .or_default()
                        .push((ev.time, cycle));
                }
                EventKind::End => {
                    if let Some((t0, cycle)) =
                        open.get_mut(&(ev.pid, ev.name.as_str())).and_then(Vec::pop)
                    {
                        tl.cycles
                            .entry(cycle)
                            .or_default()
                            .add(&ev.name, t0, ev.time);
                    }
                }
                _ => {}
            }
        }
        tl
    }

    /// The stack for `cycle`, if any phase of it was traced.
    pub fn cycle(&self, cycle: u64) -> Option<&PhaseStack> {
        self.cycles.get(&cycle)
    }

    /// All traced cycles in id order.
    pub fn cycles(&self) -> impl Iterator<Item = (u64, &PhaseStack)> {
        self.cycles.iter().map(|(id, s)| (*id, s))
    }

    /// Journal and takeover markers observed alongside the phase spans.
    pub fn wal(&self) -> &WalMarks {
        &self.wal
    }

    /// Number of traced cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether no phase spans were found.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Render the Figure 4-style text breakdown: one block per cycle,
    /// one bar per phase, scaled to the cycle total.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, stack) in &self.cycles {
            let total = stack.total();
            let overlapped = stack.overlapped();
            if stack.precopy() > Duration::ZERO {
                let _ = writeln!(
                    out,
                    "cycle #{id}  downtime {:.1?}  (+{:.1?} pre-copy, overlapped with compute; wall {:.1?})",
                    stack.downtime(),
                    stack.precopy(),
                    stack.wall(),
                );
            } else if overlapped > Duration::ZERO {
                let _ = writeln!(
                    out,
                    "cycle #{id}  wall {:.1?}  (phase sum {total:.1?}, {overlapped:.1?} pipelined away)",
                    stack.wall(),
                );
            } else {
                let _ = writeln!(out, "cycle #{id}  total {total:.1?}");
            }
            for (name, d) in &stack.phases {
                let frac = if total.is_zero() {
                    0.0
                } else {
                    d.as_secs_f64() / total.as_secs_f64()
                };
                let filled = (frac * 40.0).round() as usize;
                let _ = writeln!(
                    out,
                    "  {name:<12} |{:<40}| {d:>10.1?} ({:>5.1}%)",
                    "#".repeat(filled.min(40)),
                    frac * 100.0,
                );
            }
        }
        if self.wal.takeovers > 0 {
            let _ = writeln!(
                out,
                "takeover x{}  epoch {}  ({} wal appends, {} replayed, {} fenced publishes)",
                self.wal.takeovers,
                self.wal.max_epoch,
                self.wal.appends,
                self.wal.replays,
                self.wal.fenced_publishes,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn ev(
        t: u64,
        pid: Option<simkit::ProcId>,
        name: &str,
        kind: EventKind,
        cycle: Option<u64>,
    ) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            pid,
            cat: "phase",
            name: name.to_string(),
            kind,
            args: cycle
                .map(|c| vec![("cycle", ArgValue::U64(c))])
                .unwrap_or_default(),
        }
    }

    #[test]
    fn folds_phase_spans_per_cycle() {
        let events = vec![
            ev(
                0,
                Some(simkit::ProcId(1)),
                "stall",
                EventKind::Begin,
                Some(1),
            ),
            ev(30, Some(simkit::ProcId(1)), "stall", EventKind::End, None),
            ev(
                30,
                Some(simkit::ProcId(1)),
                "migrate",
                EventKind::Begin,
                Some(1),
            ),
            ev(
                480,
                Some(simkit::ProcId(1)),
                "migrate",
                EventKind::End,
                None,
            ),
            ev(
                1000,
                Some(simkit::ProcId(1)),
                "stall",
                EventKind::Begin,
                Some(2),
            ),
            ev(1040, Some(simkit::ProcId(1)), "stall", EventKind::End, None),
        ];
        let tl = Timeline::from_events(&events);
        assert_eq!(tl.len(), 2);
        let c1 = tl.cycle(1).unwrap();
        assert_eq!(c1.phase("stall"), Some(Duration::from_nanos(30)));
        assert_eq!(c1.phase("migrate"), Some(Duration::from_nanos(450)));
        assert_eq!(c1.total(), Duration::from_nanos(480));
        assert_eq!(
            tl.cycle(2).unwrap().phase("stall"),
            Some(Duration::from_nanos(40))
        );
        assert!(tl.cycle(3).is_none());
    }

    #[test]
    fn ignores_other_categories_and_unmatched_ends() {
        let mut events = vec![ev(
            5,
            Some(simkit::ProcId(1)),
            "stall",
            EventKind::End,
            None,
        )];
        events.push(TraceEvent {
            time: SimTime::from_nanos(1),
            pid: Some(simkit::ProcId(1)),
            cat: "rdma",
            name: "read".into(),
            kind: EventKind::Begin,
            args: Vec::new(),
        });
        let tl = Timeline::from_events(&events);
        assert!(tl.is_empty());
    }

    #[test]
    fn overlapping_phases_report_wall_and_overlap() {
        // Pipelined cycle: restart begins at t=100 while migrate is still
        // open (migrate 0..400, restart 100..600).
        let events = vec![
            ev(
                0,
                Some(simkit::ProcId(1)),
                "migrate",
                EventKind::Begin,
                Some(1),
            ),
            ev(
                100,
                Some(simkit::ProcId(1)),
                "restart",
                EventKind::Begin,
                Some(1),
            ),
            ev(
                400,
                Some(simkit::ProcId(1)),
                "migrate",
                EventKind::End,
                None,
            ),
            ev(
                600,
                Some(simkit::ProcId(1)),
                "restart",
                EventKind::End,
                None,
            ),
        ];
        let tl = Timeline::from_events(&events);
        let c = tl.cycle(1).unwrap();
        assert_eq!(c.total(), Duration::from_nanos(900));
        assert_eq!(c.wall(), Duration::from_nanos(600));
        assert_eq!(c.overlapped(), Duration::from_nanos(300));
        let out = tl.render();
        assert!(out.contains("pipelined away"), "render was:\n{out}");
    }

    #[test]
    fn barrier_phases_have_zero_overlap() {
        let events = vec![
            ev(
                0,
                Some(simkit::ProcId(1)),
                "stall",
                EventKind::Begin,
                Some(1),
            ),
            ev(30, Some(simkit::ProcId(1)), "stall", EventKind::End, None),
            ev(
                30,
                Some(simkit::ProcId(1)),
                "migrate",
                EventKind::Begin,
                Some(1),
            ),
            ev(
                480,
                Some(simkit::ProcId(1)),
                "migrate",
                EventKind::End,
                None,
            ),
        ];
        let c = Timeline::from_events(&events);
        let c = c.cycle(1).unwrap();
        assert_eq!(c.wall(), c.total());
        assert_eq!(c.overlapped(), Duration::ZERO);
    }

    #[test]
    fn precopy_splits_downtime_from_overlapped_wall() {
        // Live cycle: pre-copy 0..2000 overlapped, then the held phases
        // stall 2000..2030, migrate 2030..2100, restart 2060..2200
        // (pipelined overlap), resume 2200..2500.
        let p = Some(simkit::ProcId(1));
        let events = vec![
            ev(0, p, "precopy", EventKind::Begin, Some(1)),
            ev(2000, p, "precopy", EventKind::End, None),
            ev(2000, p, "stall", EventKind::Begin, Some(1)),
            ev(2030, p, "stall", EventKind::End, None),
            ev(2030, p, "migrate", EventKind::Begin, Some(1)),
            ev(2060, p, "restart", EventKind::Begin, Some(1)),
            ev(2100, p, "migrate", EventKind::End, None),
            ev(2200, p, "restart", EventKind::End, None),
            ev(2200, p, "resume", EventKind::Begin, Some(1)),
            ev(2500, p, "resume", EventKind::End, None),
        ];
        let tl = Timeline::from_events(&events);
        let c = tl.cycle(1).unwrap();
        assert_eq!(c.precopy(), Duration::from_nanos(2000));
        // Downtime spans stall begin → resume end only.
        assert_eq!(c.downtime(), Duration::from_nanos(500));
        // Full wall includes the overlapped pre-copy.
        assert_eq!(c.wall(), Duration::from_nanos(2500));
        let out = tl.render();
        assert!(out.contains("downtime"), "render was:\n{out}");
        assert!(out.contains("pre-copy"), "render was:\n{out}");
    }

    #[test]
    fn stop_and_copy_downtime_equals_wall() {
        let p = Some(simkit::ProcId(1));
        let events = vec![
            ev(0, p, "stall", EventKind::Begin, Some(1)),
            ev(30, p, "stall", EventKind::End, None),
            ev(30, p, "migrate", EventKind::Begin, Some(1)),
            ev(480, p, "migrate", EventKind::End, None),
        ];
        let c = Timeline::from_events(&events);
        let c = c.cycle(1).unwrap();
        assert_eq!(c.precopy(), Duration::ZERO);
        assert_eq!(c.downtime(), c.wall());
    }

    fn wal(t: u64, name: &str, args: Vec<(&'static str, ArgValue)>) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            pid: Some(simkit::ProcId(9)),
            cat: "wal",
            name: name.to_string(),
            kind: EventKind::Instant,
            args,
        }
    }

    #[test]
    fn counts_wal_and_takeover_instants() {
        let events = vec![
            wal(10, "wal_append", vec![("seq", ArgValue::U64(1))]),
            wal(20, "wal_append", vec![("seq", ArgValue::U64(2))]),
            wal(50, "takeover", vec![("epoch", ArgValue::U64(1))]),
            wal(55, "wal_replay", vec![("records", ArgValue::U64(4))]),
            wal(60, "fenced_publish", vec![("epoch", ArgValue::U64(0))]),
            wal(70, "wal_append", vec![("seq", ArgValue::U64(3))]),
            // A phase span in the same stream still folds normally.
            ev(
                0,
                Some(simkit::ProcId(1)),
                "stall",
                EventKind::Begin,
                Some(1),
            ),
            ev(30, Some(simkit::ProcId(1)), "stall", EventKind::End, None),
        ];
        let tl = Timeline::from_events(&events);
        let w = tl.wal();
        assert_eq!(w.appends, 3);
        assert_eq!(w.replays, 1);
        assert_eq!(w.takeovers, 1);
        assert_eq!(w.fenced_publishes, 1);
        assert_eq!(w.max_epoch, 1);
        assert_eq!(w.first_takeover, Some(SimTime::from_nanos(50)));
        assert_eq!(tl.len(), 1);
        let out = tl.render();
        assert!(out.contains("takeover x1"), "render was:\n{out}");
        assert!(out.contains("epoch 1"), "render was:\n{out}");
    }

    #[test]
    fn crash_free_runs_render_no_takeover_line() {
        let events = vec![
            wal(10, "wal_append", vec![]),
            ev(
                0,
                Some(simkit::ProcId(1)),
                "stall",
                EventKind::Begin,
                Some(1),
            ),
            ev(30, Some(simkit::ProcId(1)), "stall", EventKind::End, None),
        ];
        let tl = Timeline::from_events(&events);
        assert_eq!(tl.wal().appends, 1);
        assert_eq!(tl.wal().takeovers, 0);
        assert!(tl.wal().first_takeover.is_none());
        assert!(!tl.render().contains("takeover"));
    }

    #[test]
    fn render_mentions_every_phase() {
        let events = vec![
            ev(
                0,
                Some(simkit::ProcId(1)),
                "stall",
                EventKind::Begin,
                Some(1),
            ),
            ev(100, Some(simkit::ProcId(1)), "stall", EventKind::End, None),
        ];
        let out = Timeline::from_events(&events).render();
        assert!(out.contains("cycle #1"));
        assert!(out.contains("stall"));
    }
}
