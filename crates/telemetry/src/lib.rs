//! Metrics aggregation and trace export for simulation runs.
//!
//! Consumes the structured event stream produced by `simkit::trace` and
//! turns it into:
//! - a [`Registry`] of counters, gauges, and histograms,
//! - a chrome://tracing JSON document ([`chrome_trace`]) that opens
//!   directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`,
//! - a [`Timeline`] folding protocol-phase spans back into the per-cycle
//!   phase stacks of the paper's Figure 4,
//! - a [`FleetTimeline`] demultiplexing a multi-job fleet run's shared
//!   trace into per-job timelines,
//! - a [`Json`] document builder for deterministic machine-readable
//!   benchmark artifacts (`BENCH_*.json`).

pub mod chrome;
pub mod fleet;
pub mod json;
pub mod registry;
pub mod timeline;

pub use chrome::{chrome_trace, write_chrome_trace};
pub use fleet::FleetTimeline;
pub use json::Json;
pub use registry::{CounterSnapshot, HistogramSnapshot, Registry};
pub use timeline::{PhaseStack, Timeline, WalMarks};
