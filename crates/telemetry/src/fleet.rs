//! Fleet timeline: per-job phase timelines out of one shared trace.
//!
//! A fleet run multiplexes many jobs' daemons onto one simulation and one
//! trace bus. Job daemons carry a `j{id}-` process-name prefix (job 0
//! keeps the historical unprefixed names), so the combined event stream
//! can be demultiplexed back into per-job [`Timeline`]s — each the same
//! Figure 4-style phase decomposition [`timeline`](crate::timeline)
//! produces for a single-job run.

use crate::timeline::Timeline;
use simkit::TraceEvent;
use std::collections::{BTreeMap, HashMap};

/// Per-job phase timelines for a whole fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetTimeline {
    jobs: BTreeMap<u64, Timeline>,
}

/// Job id encoded in a daemon process name: `j{id}-…` → `id`, anything
/// else (including the historical unprefixed job-0 names) → 0.
fn job_of(proc_name: &str) -> u64 {
    let Some(rest) = proc_name.strip_prefix('j') else {
        return 0;
    };
    let digits: &str = &rest[..rest.bytes().take_while(u8::is_ascii_digit).count()];
    if digits.is_empty() || !rest[digits.len()..].starts_with('-') {
        return 0;
    }
    digits.parse().unwrap_or(0)
}

impl FleetTimeline {
    /// Demultiplex `events` into per-job timelines. `proc_names` comes
    /// from [`simkit::Tracer::proc_names`]; events from unnamed or
    /// unprefixed processes are attributed to job 0.
    pub fn from_events(events: &[TraceEvent], proc_names: &HashMap<u32, String>) -> FleetTimeline {
        let mut per_job: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
        for ev in events {
            let job = ev
                .pid
                .and_then(|p| proc_names.get(&p.0))
                .map(|n| job_of(n))
                .unwrap_or(0);
            per_job.entry(job).or_default().push(ev.clone());
        }
        FleetTimeline {
            jobs: per_job
                .into_iter()
                .map(|(job, evs)| (job, Timeline::from_events(&evs)))
                .filter(|(_, tl)| !tl.is_empty())
                .collect(),
        }
    }

    /// The timeline for `job`, if it traced any phases.
    pub fn job(&self, job: u64) -> Option<&Timeline> {
        self.jobs.get(&job)
    }

    /// All jobs with traced phases, in id order.
    pub fn jobs(&self) -> impl Iterator<Item = (u64, &Timeline)> {
        self.jobs.iter().map(|(id, tl)| (*id, tl))
    }

    /// Number of jobs with traced phases.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job traced any phase.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Render every job's Figure 4-style breakdown, job header first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, tl) in &self.jobs {
            out.push_str(&format!("job {id}\n"));
            for line in tl.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{ArgValue, EventKind, ProcId, SimTime};

    fn ev(t: u64, pid: u32, name: &str, kind: EventKind, cycle: Option<u64>) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            pid: Some(ProcId(pid)),
            cat: "phase",
            name: name.to_string(),
            kind,
            args: cycle
                .map(|c| vec![("cycle", ArgValue::U64(c))])
                .unwrap_or_default(),
        }
    }

    #[test]
    fn job_prefix_parsing() {
        assert_eq!(job_of("j3-nla@n7"), 3);
        assert_eq!(job_of("j12-job-manager"), 12);
        assert_eq!(job_of("nla@n7"), 0);
        assert_eq!(job_of("job-manager"), 0);
        assert_eq!(job_of("jx-weird"), 0);
        assert_eq!(job_of("j5nodash"), 0);
    }

    #[test]
    fn demultiplexes_by_job() {
        let names: HashMap<u32, String> = [
            (1, "job-manager".to_string()),
            (2, "j2-job-manager".to_string()),
        ]
        .into();
        let events = vec![
            ev(0, 1, "stall", EventKind::Begin, Some(1)),
            ev(10, 1, "stall", EventKind::End, None),
            ev(0, 2, "stall", EventKind::Begin, Some(1)),
            ev(30, 2, "stall", EventKind::End, None),
        ];
        let fleet = FleetTimeline::from_events(&events, &names);
        assert_eq!(fleet.len(), 2);
        let d0 = fleet.job(0).unwrap().cycle(1).unwrap().phase("stall");
        let d2 = fleet.job(2).unwrap().cycle(1).unwrap().phase("stall");
        assert_eq!(d0, Some(std::time::Duration::from_nanos(10)));
        assert_eq!(d2, Some(std::time::Duration::from_nanos(30)));
        assert!(fleet.job(1).is_none());
        let rendered = fleet.render();
        assert!(rendered.contains("job 0"));
        assert!(rendered.contains("job 2"));
    }
}
