//! Minimal deterministic JSON document builder for machine-readable
//! benchmark artifacts (`BENCH_*.json`).
//!
//! The workspace is offline (no serde); this module hand-rolls the tiny
//! subset benchmark emitters need: ordered objects, arrays, strings,
//! integers, floats, bools. Rendering is deterministic — object keys keep
//! insertion order and floats render via Rust's shortest-roundtrip
//! formatting — so "same run ⇒ byte-identical artifact" holds for JSON
//! output exactly as it does for traces.

use std::fmt::Write as _;

/// One JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) `key` in an object, builder style. Panics when
    /// called on a non-object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(fields) = &mut self else {
            panic!("Json::set on non-object");
        };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
        self
    }

    /// Fetch a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation, trailing newline included —
    /// the `BENCH_*.json` artifact format.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                escape(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    out.push('"');
                    escape(out, k);
                    out.push_str("\":");
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

fn escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let doc = Json::obj()
            .set("name", "fleet")
            .set("jobs", 8u64)
            .set("work_lost_s", 12.5)
            .set("ok", true)
            .set("tags", vec!["a", "b"]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fleet","jobs":8,"work_lost_s":12.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let doc = Json::obj().set("a", 1i64).set("b", 2i64).set("a", 3i64);
        assert_eq!(doc.render(), r#"{"a":3,"b":2}"#);
        assert_eq!(doc.get("b"), Some(&Json::Int(2)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let doc = Json::obj()
            .set("arr", vec![1i64, 2])
            .set("empty", Json::Arr(Vec::new()))
            .set("nested", Json::obj().set("x", Json::Null));
        let a = doc.render_pretty();
        assert_eq!(a, doc.render_pretty(), "byte-deterministic");
        assert!(a.contains("\"arr\": [\n    1,\n    2\n  ]"));
        assert!(a.contains("\"empty\": []"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn escapes_and_nonfinite() {
        let doc = Json::obj()
            .set("s", "a\"b\\c\nd")
            .set("nan", f64::NAN)
            .set("inf", f64::INFINITY);
        assert_eq!(doc.render(), r#"{"s":"a\"b\\c\nd","nan":null,"inf":null}"#);
    }
}
