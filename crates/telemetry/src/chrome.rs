//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Produces the [Trace Event Format] "JSON object" flavour: a
//! `traceEvents` array of `B`/`E`/`i`/`C` events with microsecond
//! timestamps, plus thread-name metadata so simulated processes show up
//! as labelled tracks. Open the file at <https://ui.perfetto.dev> or in
//! `chrome://tracing`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use simkit::{ArgValue, EventKind, TraceEvent};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        esc(out, k);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(f) => num(out, *f),
            ArgValue::Str(s) => {
                out.push('"');
                esc(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

// One track per simulated process; events with no pid go to tid 0
// ("kernel"). Chrome pid is the constant 1: the whole simulation is one
// "process" in trace-viewer terms.
fn tid_of(ev: &TraceEvent) -> u32 {
    ev.pid.map(|p| p.0 + 1).unwrap_or(0)
}

fn push_common(out: &mut String, ev: &TraceEvent, ph: char) {
    out.push_str("{\"name\":\"");
    esc(out, &ev.name);
    out.push_str("\",\"cat\":\"");
    esc(out, ev.cat);
    out.push_str("\",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    num(out, ev.time.as_nanos() as f64 / 1_000.0);
    out.push_str(&format!(",\"pid\":1,\"tid\":{}", tid_of(ev)));
}

/// Render a trace as a chrome trace-event JSON document.
///
/// `proc_names` (from [`simkit::Tracer::proc_names`]) labels each
/// process track; unknown pids fall back to `proc-N`.
pub fn chrome_trace(events: &[TraceEvent], proc_names: &HashMap<u32, String>) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    // thread-name metadata for every track that appears in the trace
    let mut tids: Vec<u32> = events.iter().map(tid_of).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let name = if tid == 0 {
            "kernel".to_string()
        } else {
            proc_names
                .get(&(tid - 1))
                .cloned()
                .unwrap_or_else(|| format!("proc-{}", tid - 1))
        };
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        ));
        esc(&mut out, &name);
        out.push_str("\"}}");
    }

    for ev in events {
        sep(&mut out);
        match &ev.kind {
            EventKind::Begin => {
                push_common(&mut out, ev, 'B');
                if !ev.args.is_empty() {
                    out.push_str(",\"args\":");
                    push_args(&mut out, &ev.args);
                }
                out.push('}');
            }
            EventKind::End => {
                push_common(&mut out, ev, 'E');
                if !ev.args.is_empty() {
                    out.push_str(",\"args\":");
                    push_args(&mut out, &ev.args);
                }
                out.push('}');
            }
            EventKind::Instant | EventKind::Message => {
                push_common(&mut out, ev, 'i');
                out.push_str(",\"s\":\"t\"");
                if !ev.args.is_empty() {
                    out.push_str(",\"args\":");
                    push_args(&mut out, &ev.args);
                }
                out.push('}');
            }
            EventKind::Counter(v) => {
                push_common(&mut out, ev, 'C');
                out.push_str(",\"args\":{\"value\":");
                num(&mut out, *v);
                out.push_str("}}");
            }
        }
    }
    out.push_str("]}");
    out
}

/// Write [`chrome_trace`] output to `path`.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    events: &[TraceEvent],
    proc_names: &HashMap<u32, String>,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace(events, proc_names).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{ProcId, SimTime};

    fn ev(t: u64, pid: Option<u32>, cat: &'static str, name: &str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            pid: pid.map(ProcId),
            cat,
            name: name.to_string(),
            kind,
            args: Vec::new(),
        }
    }

    #[test]
    fn emits_all_phases_and_metadata() {
        let mut names = HashMap::new();
        names.insert(0u32, "worker".to_string());
        let evs = vec![
            ev(1_000, Some(0), "phase", "migrate", EventKind::Begin),
            ev(2_000, Some(0), "phase", "migrate", EventKind::End),
            ev(1_500, None, "ftb", "publish", EventKind::Instant),
            ev(1_750, None, "store", "dirty", EventKind::Counter(3.5)),
        ];
        let json = chrome_trace(&evs, &names);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("worker"));
        // B/E at µs granularity: 1 µs and 2 µs
        assert!(json.contains("\"ts\":1,"));
        assert!(json.contains("\"ts\":2,"));
    }

    #[test]
    fn escapes_names() {
        let evs = vec![ev(
            0,
            None,
            "log",
            "quote \" and \\ back",
            EventKind::Message,
        )];
        let json = chrome_trace(&evs, &HashMap::new());
        assert!(json.contains("quote \\\" and \\\\ back"));
    }
}
