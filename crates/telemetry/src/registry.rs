//! Metric aggregation over the structured trace stream.

use parking_lot::Mutex;
use simkit::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// Aggregated samples of one numeric series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One named monotonic counter value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Metric name (`"cat/name"` for metrics derived from events).
    pub name: String,
    /// Accumulated value.
    pub value: f64,
}

/// A registry of counters, gauges, and histograms.
///
/// Metrics can be driven directly (`inc`/`set_gauge`/`observe`) or
/// derived wholesale from a trace with [`Registry::from_events`]:
/// - every matched Begin/End span pair observes its duration (seconds)
///   into histogram `span:{cat}/{name}`,
/// - every `Counter` event sets gauge `{cat}/{name}` and observes the
///   sample into a same-named histogram,
/// - every `Instant` event increments counter `{cat}/{name}`.
///
/// Iteration order is name-sorted, so reports are deterministic.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, f64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, HistogramSnapshot>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `delta` to the named counter (created at 0).
    pub fn inc(&self, name: &str, delta: f64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(HistogramSnapshot::empty)
            .observe(value);
    }

    /// Current value of a counter, if it exists.
    pub fn counter_value(&self, name: &str) -> Option<f64> {
        self.counters.lock().get(name).copied()
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// Snapshot of a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.lock().get(name).copied()
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        self.counters
            .lock()
            .iter()
            .map(|(name, &value)| CounterSnapshot {
                name: name.clone(),
                value,
            })
            .collect()
    }

    /// All gauges, name-sorted.
    pub fn gauges(&self) -> Vec<CounterSnapshot> {
        self.gauges
            .lock()
            .iter()
            .map(|(name, &value)| CounterSnapshot {
                name: name.clone(),
                value,
            })
            .collect()
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .iter()
            .map(|(name, &h)| (name.clone(), h))
            .collect()
    }

    /// Build a registry from a trace. Spans are matched Begin→End by
    /// `(pid, cat, name)` with a per-key stack, so nested and repeated
    /// spans aggregate correctly.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let reg = Registry::new();
        let mut open: BTreeMap<(Option<u32>, &str, &str), Vec<simkit::SimTime>> = BTreeMap::new();
        for ev in events {
            let key = (ev.pid.map(|p| p.0), ev.cat, ev.name.as_str());
            match &ev.kind {
                EventKind::Begin => open.entry(key).or_default().push(ev.time),
                EventKind::End => {
                    if let Some(t0) = open.get_mut(&key).and_then(Vec::pop) {
                        let dt = ev.time.since(t0).as_secs_f64();
                        reg.observe(&format!("span:{}/{}", ev.cat, ev.name), dt);
                    }
                }
                EventKind::Instant => reg.inc(&format!("{}/{}", ev.cat, ev.name), 1.0),
                EventKind::Counter(v) => {
                    let name = format!("{}/{}", ev.cat, ev.name);
                    reg.set_gauge(&name, *v);
                    reg.observe(&name, *v);
                }
                EventKind::Message => reg.inc("log/messages", 1.0),
            }
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{ProcId, SimTime, TraceEvent};

    fn ev(t: u64, pid: Option<u32>, cat: &'static str, name: &str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            pid: pid.map(ProcId),
            cat,
            name: name.to_string(),
            kind,
            args: Vec::new(),
        }
    }

    #[test]
    fn direct_metrics() {
        let r = Registry::new();
        r.inc("a", 1.0);
        r.inc("a", 2.0);
        r.set_gauge("g", 7.0);
        r.observe("h", 1.0);
        r.observe("h", 3.0);
        assert_eq!(r.counter_value("a"), Some(3.0));
        assert_eq!(r.gauge_value("g"), Some(7.0));
        let h = r.histogram("h").unwrap();
        assert_eq!((h.count, h.min, h.max, h.mean()), (2, 1.0, 3.0, 2.0));
    }

    #[test]
    fn from_events_matches_spans_and_series() {
        let evs = vec![
            ev(0, Some(1), "phase", "migrate", EventKind::Begin),
            ev(500, Some(2), "rdma", "read", EventKind::Instant),
            ev(1_000, Some(1), "phase", "migrate", EventKind::End),
            ev(1_500, None, "store", "dirty", EventKind::Counter(4.0)),
            ev(2_000, None, "store", "dirty", EventKind::Counter(6.0)),
            // nested + repeated span on another pid
            ev(0, Some(3), "phase", "migrate", EventKind::Begin),
            ev(3_000, Some(3), "phase", "migrate", EventKind::End),
        ];
        let r = Registry::from_events(&evs);
        let spans = r.histogram("span:phase/migrate").unwrap();
        assert_eq!(spans.count, 2);
        assert!((spans.sum - 4e-6).abs() < 1e-12, "sum {}", spans.sum);
        assert_eq!(r.counter_value("rdma/read"), Some(1.0));
        assert_eq!(r.gauge_value("store/dirty"), Some(6.0));
        assert_eq!(r.histogram("store/dirty").unwrap().count, 2);
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let evs = vec![ev(10, None, "phase", "x", EventKind::End)];
        let r = Registry::from_events(&evs);
        assert!(r.histogram("span:phase/x").is_none());
    }
}
