//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the external dependencies are replaced by minimal local
//! implementations covering exactly the API surface the workspace uses.
//! Here that is [`Mutex`] (and [`RwLock`] for good measure) with
//! `parking_lot`'s panic-free `lock()` signature, implemented over
//! `std::sync` with poison recovery.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s infallible `lock()` API.
///
/// Poisoning is transparently recovered: a panic while holding the lock
/// does not poison it for later users, matching `parking_lot` semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
