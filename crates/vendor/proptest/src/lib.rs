//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic, generate-only property-testing harness covering the
//! subset of the upstream API this workspace uses: the [`Strategy`]
//! trait with `prop_map`, [`Just`], [`any`], ranges as integer
//! strategies, tuple strategies, [`collection::vec`], the
//! [`prop_oneof!`] union macro, and the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`.
//!
//! Differences from upstream, deliberate for an offline stand-in:
//! - **No shrinking.** A failing case reports its seed and case index;
//!   inputs are reproduced by the deterministic per-test seed, not
//!   minimised.
//! - Cases are seeded from the test function's name, so runs are fully
//!   reproducible with no persistence files.

use std::fmt;

/// Outcome carrier for a single generated case inside [`proptest!`].
///
/// `Fail` aborts the whole test; `Reject` (from [`prop_assume!`])
/// discards the case and moves on.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; message describes it.
    Fail(String),
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// Build a failing outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejected-case outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy
    /// simply produces one value per call from the deterministic rng.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Object-safe projection of [`Strategy`], used by [`Union`] so
    /// `prop_oneof!` can mix arm types.
    pub trait DynStrategy<V> {
        /// Generate one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies with one value type;
    /// built by [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// Build from boxed arms; panics if empty.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate_dyn(rng)
        }
    }

    /// Always generate a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "strategy on empty range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start..end + 1).generate(rng)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Full-domain strategy for primitives; see [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Primitives with a canonical full-domain strategy.
    pub trait ArbitraryValue: Sized {
        /// Draw one value over the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident.$idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

/// Full-domain strategy for a primitive type, as in `proptest::arbitrary`.
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Length bounds for generated collections; converts from ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate `Vec`s of `element`-generated values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, as in `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fail the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs the body over `cases` generated inputs.
/// Attributes on the inner fns (including `#[test]` and doc comments)
/// are forwarded verbatim, matching how this workspace writes them.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut ran: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = (cfg.cases as u64).saturating_mul(20).max(1000);
            while ran < cfg.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), ran, attempts
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed (case {}): {}", stringify!($name), ran, msg);
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u64),
        Pair(u8, u8),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (1u64..100).prop_map(Shape::Line),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_produces_all_arms(shapes in collection::vec(shape(), 64..65)) {
            // with 64 draws the union should hit at least two arms
            let dots = shapes.iter().filter(|s| **s == Shape::Dot).count();
            prop_assert!(dots < shapes.len(), "union stuck on one arm");
        }

        #[test]
        fn assume_discards(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = shape();
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
