//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, sliceable byte
//! buffer backed by `Arc<[u8]>`. Covers the subset of the upstream API
//! this workspace uses (`new`, `copy_from_slice`, `from_static`,
//! `From<Vec<u8>>`, `slice`, `Deref<Target = [u8]>`). Unlike upstream
//! there is no zero-copy `from_static` special case — statics are
//! copied into the shared allocation once, which is irrelevant at the
//! sizes this workspace handles.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1) and share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation of note).
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Wrap a static byte slice (copied once into the shared allocation).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation. Panics if the range
    /// is out of bounds, like upstream.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "Bytes::slice out of bounds: {start}..{end} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copy this view out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(1..).len(), 2);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert_eq!(Bytes::from_static(b"abc"), b"abc"[..]);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
