//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the benchmarking API this workspace uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — with
//! a simple warmup-then-measure wall-clock loop instead of upstream's
//! statistical engine. Reported numbers are per-iteration means, good
//! enough to compare orders of magnitude and catch gross regressions.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value (std's `black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn run_one<R>(name: &str, samples: usize, mut routine: impl FnMut() -> R) {
    // warmup: one untimed call so lazy init and caches settle
    black_box(routine());
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(routine());
        let dt = t0.elapsed();
        total += dt;
        best = best.min(dt);
    }
    let mean = total / samples as u32;
    println!("bench {name:<50} mean {mean:>12.3?}  best {best:>12.3?}  ({samples} samples)");
}

impl Criterion {
    /// Time `f`'s [`Bencher::iter`] routine and print the mean.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            name: name.to_string(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Open a named group of benchmarks sharing a sample size.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// Runs and times a benchmark routine.
pub struct Bencher {
    name: String,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` for warmup plus `sample_size` timed samples.
    pub fn iter<R>(&mut self, routine: impl FnMut() -> R) {
        run_one(&self.name, self.sample_size, routine);
    }
}

/// Group of benchmarks with a shared sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            name: format!("{}/{}", self.name, name),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Close the group (upstream flushes reports here; no-op for us).
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one name, as in upstream's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.bench_function("t", |b| b.iter(|| calls += 1));
        // warmup + sample_size timed runs
        assert_eq!(calls, 21);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("t", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 6);
    }
}
