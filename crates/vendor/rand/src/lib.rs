//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API this workspace uses —
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — with a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//! The distribution details differ from upstream `rand`, which is fine
//! here: every consumer in this workspace only needs determinism for a
//! fixed seed, not bit-compatibility with the real crate.

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Half-open ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// The raw source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's full domain
    /// (for `f64`/`f32`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators, as in `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small fast generator; here an alias of [`StdRng`].
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng as _StdRngForDocs;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift rejection (Lemire).
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let lo = m as u64;
                    if lo >= span && lo < span.wrapping_neg() % span + span {
                        continue;
                    }
                    if lo < span.wrapping_neg() % span {
                        continue;
                    }
                    return self.start.wrapping_add((m >> 64) as u64 as $t);
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// A generator seeded from the current process's entropy. This offline
/// stand-in derives it from the system clock; use seeded generators for
/// anything that must be reproducible.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
