//! Fleet-scale doom schedules: seeded, long-horizon node deterioration
//! plans for soak runs.
//!
//! A [`DoomPlan`] names which nodes will fail over a multi-hour simulated
//! horizon, when each one's deterioration begins, whether the failure is
//! *predictable* (a slow sensor ramp healthmon can forecast, giving
//! proactive policies a head start) or a silent instant crash, and how
//! long the node stays down before the site repairs it and the
//! orchestrator may reclaim it as a spare. The schedule is a pure
//! function of its seed, so a fleet soak replays byte-identically.

use ibfabric::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Duration;

/// One node's scheduled demise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDoom {
    /// The doomed node.
    pub node: NodeId,
    /// Virtual-time offset at which deterioration (or the crash) begins.
    pub onset: Duration,
    /// `true`: a slow sensor ramp precedes the failure, so health
    /// monitoring can predict it. `false`: the node dies with no warning.
    pub predictable: bool,
    /// Downtime after the node dies before it is repaired and may be
    /// reclaimed into the spare pool.
    pub repair_after: Duration,
}

impl fmt::Display for NodeDoom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {:?} (repair {:?})",
            self.node,
            if self.predictable {
                "deteriorates"
            } else {
                "crashes"
            },
            self.onset,
            self.repair_after,
        )
    }
}

/// A seeded fleet-wide failure schedule, sorted by onset.
#[derive(Debug, Clone)]
pub struct DoomPlan {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// Scheduled failures, ascending by onset; nodes are distinct.
    pub dooms: Vec<NodeDoom>,
}

impl DoomPlan {
    /// Generate a schedule dooming `count` distinct nodes drawn from
    /// `candidates`, with onsets spread uniformly over the middle of
    /// `[horizon/20, 3·horizon/4]` (so every failure leaves room for the
    /// recovery to play out inside the soak), a `predictable_frac`
    /// fraction of slow-ramp failures, and repair times of 60–180 s.
    ///
    /// Deterministic in `(seed, candidates, count, horizon,
    /// predictable_frac)`. Panics if `count > candidates.len()`.
    pub fn generate(
        seed: u64,
        candidates: &[NodeId],
        count: usize,
        horizon: Duration,
        predictable_frac: f64,
    ) -> DoomPlan {
        assert!(
            count <= candidates.len(),
            "cannot doom {count} of {} candidate nodes",
            candidates.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher-Yates: draw `count` distinct victims.
        let mut pool: Vec<NodeId> = candidates.to_vec();
        let mut dooms = Vec::with_capacity(count);
        let lo = horizon.as_millis() as u64 / 20;
        let hi = (horizon.as_millis() as u64) * 3 / 4;
        for _ in 0..count {
            let pick = rng.gen_range(0usize..pool.len());
            let node = pool.swap_remove(pick);
            let onset = Duration::from_millis(rng.gen_range(lo..hi.max(lo + 1)));
            let predictable = rng.gen_bool(predictable_frac);
            let repair_after = Duration::from_secs(rng.gen_range(60u64..=180));
            dooms.push(NodeDoom {
                node,
                onset,
                predictable,
                repair_after,
            });
        }
        dooms.sort_by_key(|d| (d.onset, d.node.0));
        DoomPlan { seed, dooms }
    }

    /// Failures whose ramp (or crash) begins at or before `t`.
    pub fn onset_by(&self, t: Duration) -> impl Iterator<Item = &NodeDoom> {
        self.dooms.iter().filter(move |d| d.onset <= t)
    }
}

impl fmt::Display for DoomPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doom seed {}", self.seed)?;
        for d in &self.dooms {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let h = Duration::from_secs(7200);
        let a = DoomPlan::generate(42, &nodes(64), 12, h, 0.75);
        let b = DoomPlan::generate(42, &nodes(64), 12, h, 0.75);
        assert_eq!(a.dooms, b.dooms);
        let c = DoomPlan::generate(43, &nodes(64), 12, h, 0.75);
        assert_ne!(a.dooms, c.dooms);
    }

    #[test]
    fn victims_distinct_sorted_and_in_window() {
        let h = Duration::from_secs(7200);
        let plan = DoomPlan::generate(7, &nodes(64), 20, h, 0.5);
        assert_eq!(plan.dooms.len(), 20);
        let mut seen: Vec<u32> = plan.dooms.iter().map(|d| d.node.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20, "victims must be distinct");
        for w in plan.dooms.windows(2) {
            assert!(w[0].onset <= w[1].onset, "sorted by onset");
        }
        for d in &plan.dooms {
            assert!(d.onset >= h / 20 && d.onset <= h * 3 / 4, "{d}");
            assert!((60..=180).contains(&d.repair_after.as_secs()));
        }
    }

    #[test]
    fn predictable_fraction_is_respected_roughly() {
        let h = Duration::from_secs(7200);
        let plan = DoomPlan::generate(11, &nodes(64), 40, h, 1.0);
        assert!(plan.dooms.iter().all(|d| d.predictable));
        let none = DoomPlan::generate(11, &nodes(64), 40, h, 0.0);
        assert!(none.dooms.iter().all(|d| !d.predictable));
    }

    #[test]
    fn onset_by_filters() {
        let h = Duration::from_secs(1000);
        let plan = DoomPlan::generate(3, &nodes(16), 8, h, 0.5);
        let mid = plan.dooms[3].onset;
        assert_eq!(plan.onset_by(mid).count(), 4);
        assert_eq!(plan.onset_by(h).count(), 8);
    }
}
