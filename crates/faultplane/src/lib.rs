//! # faultplane — deterministic seeded fault injection
//!
//! The migration framework's whole premise is surviving failure, so failure
//! must be a first-class, *reproducible* input to the simulation. This
//! crate provides that input: a [`FaultPlan`] describes typed faults —
//! scheduled ("drop the next 2 GigE datagrams after t = 30 s", "crash the
//! spare at Phase 3 of attempt 1") or probabilistic (seeded per-operation
//! Bernoulli draws) — and a [`FaultPlane`] executes the plan by hooking the
//! injection points the lower layers expose:
//!
//! * [`ibfabric::FaultHook`] — datagram drop / link flap on the IB fabric
//!   or the GigE maintenance network (which carries the FTB agent tree),
//!   and RDMA Read CQ errors / payload corruption;
//! * [`storesim::StoreFaultHook`] — disk-full / transient I/O errors on
//!   checkpoint stores;
//! * [`blcrsim::BlcrFaultHook`] — BLCR dump write errors;
//! * [`FaultPlane::take_spare_crash`] — polled by the Job Manager at each
//!   migration phase boundary to kill the target spare node at a chosen
//!   point in the protocol.
//!
//! Every injected fault is emitted on the trace bus (category `"fault"`),
//! so an exported trace shows fault and recovery timelines side by side.
//! Same simulation seed + same plan ⇒ byte-identical traces.

pub mod doom;
pub use doom::{DoomPlan, NodeDoom};

use blcrsim::BlcrFaultHook;
use ibfabric::{FaultHook, NodeId, ReadFault, SendVerdict};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simkit::{SimHandle, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
pub use storesim::StoreFault;
use storesim::StoreFaultHook;

/// A phase of the four-phase migration protocol (paper §III-A), used to
/// target faults at protocol boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigPhase {
    /// Pre-copy rounds of a live migration (before Phase 1; ranks still
    /// running). Not part of [`MigPhase::ALL`] — the four-phase grid —
    /// but targetable by spare-crash and WAL-point faults.
    Precopy,
    /// Phase 1: stall the job, drain in-flight messages.
    Stall,
    /// Phase 2: stream process images source → target over RDMA.
    Migrate,
    /// Phase 3: restart processes on the target from assembled images.
    Restart,
    /// Phase 4: rebuild endpoints and resume.
    Resume,
}

impl MigPhase {
    /// All phases in protocol order.
    pub const ALL: [MigPhase; 4] = [
        MigPhase::Stall,
        MigPhase::Migrate,
        MigPhase::Restart,
        MigPhase::Resume,
    ];

    /// Lower-case phase name, matching the telemetry span names.
    pub fn name(&self) -> &'static str {
        match self {
            MigPhase::Precopy => "precopy",
            MigPhase::Stall => "stall",
            MigPhase::Migrate => "migrate",
            MigPhase::Restart => "restart",
            MigPhase::Resume => "resume",
        }
    }
}

impl fmt::Display for MigPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A position in the Job Manager's write-ahead cycle journal, used to
/// target a coordinator crash at an exact record boundary.
///
/// The journal appends one record *before* each state-changing step of a
/// migration cycle executes, so "crash at WAL point N" means "the record
/// was durably appended, the side effect has not happened yet" — the
/// hardest window for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalPoint {
    /// Crash immediately after the `seq`-th journal append of the run
    /// (1-based over the job's whole journal, spanning cycles).
    Seq(u64),
    /// Crash at the first journal append made inside `phase` — the
    /// projection the model checker's counterexamples lower to.
    Phase(MigPhase),
}

impl fmt::Display for WalPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalPoint::Seq(n) => write!(f, "wal record #{n}"),
            WalPoint::Phase(p) => write!(f, "first wal record of {p}"),
        }
    }
}

/// The kind of a [`FaultSpec`], without its parameters — the fault
/// alphabet. Protocol-level analysis (the `protoverify` model checker)
/// enumerates fault edges over these kinds; [`FaultSpec::kind`] projects a
/// concrete spec onto its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Silent datagram loss ([`FaultSpec::NetDrop`]).
    NetDrop,
    /// Visible link error window ([`FaultSpec::LinkFlap`]).
    LinkFlap,
    /// RDMA Read completes with an error CQE ([`FaultSpec::RdmaCqError`]).
    RdmaCqError,
    /// RDMA Read returns corrupted payload ([`FaultSpec::RdmaCorrupt`]).
    RdmaCorrupt,
    /// BLCR dump chunk write fails ([`FaultSpec::BlcrWriteError`]).
    BlcrWriteError,
    /// Checkpoint-store append fails ([`FaultSpec::StoreWrite`]).
    StoreWrite,
    /// The migration-target spare node dies ([`FaultSpec::SpareCrash`]).
    SpareCrash,
    /// The Job Manager itself dies between two WAL records
    /// ([`FaultSpec::CoordinatorCrash`]).
    CoordinatorCrash,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::NetDrop,
        FaultKind::LinkFlap,
        FaultKind::RdmaCqError,
        FaultKind::RdmaCorrupt,
        FaultKind::BlcrWriteError,
        FaultKind::StoreWrite,
        FaultKind::SpareCrash,
        FaultKind::CoordinatorCrash,
    ];

    /// Stable lower-snake name (used in traces and counterexamples).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NetDrop => "net_drop",
            FaultKind::LinkFlap => "link_flap",
            FaultKind::RdmaCqError => "rdma_cq_error",
            FaultKind::RdmaCorrupt => "rdma_corrupt",
            FaultKind::BlcrWriteError => "blcr_write_error",
            FaultKind::StoreWrite => "store_write",
            FaultKind::SpareCrash => "spare_crash",
            FaultKind::CoordinatorCrash => "coordinator_crash",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which network a network fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSel {
    /// The InfiniBand fabric ("ib").
    Ib,
    /// The GigE maintenance network the FTB tree runs over ("gige").
    Gige,
    /// Either network.
    Any,
}

impl NetSel {
    fn matches(&self, name: &str) -> bool {
        match self {
            NetSel::Ib => name == "ib",
            NetSel::Gige => name == "gige",
            NetSel::Any => true,
        }
    }
}

/// One scheduled fault. Counted faults (`nth`) are 1-based over the
/// corresponding operation stream for the whole run.
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Silently drop the next `count` datagrams on `net` once virtual time
    /// reaches `after`. Senders see success; receivers see nothing.
    NetDrop {
        /// Network selector.
        net: NetSel,
        /// Virtual-time offset at which the loss window opens.
        after: Duration,
        /// Number of datagrams to swallow.
        count: u32,
    },
    /// All sends on `net` fail with a visible link error during
    /// `[at, at + lasts)`.
    LinkFlap {
        /// Network selector.
        net: NetSel,
        /// Window start (virtual-time offset).
        at: Duration,
        /// Window length.
        lasts: Duration,
    },
    /// The `nth` RDMA Read of the run completes with an error CQE.
    RdmaCqError {
        /// 1-based read index.
        nth: u64,
    },
    /// The `nth` RDMA Read returns corrupted payload (caught only by
    /// checksum verification).
    RdmaCorrupt {
        /// 1-based read index.
        nth: u64,
    },
    /// The `nth` BLCR dump chunk write fails.
    BlcrWriteError {
        /// 1-based chunk-write index.
        nth: u64,
    },
    /// The `nth` checkpoint-store append fails with `fault`.
    StoreWrite {
        /// Fault kind (disk-full vs transient I/O error).
        fault: StoreFault,
        /// 1-based append index.
        nth: u64,
    },
    /// Crash the migration-target spare node at the start of `phase` of
    /// migration attempt `attempt` (1-based across the run, counting
    /// retries). Executed by the Job Manager via
    /// [`FaultPlane::take_spare_crash`].
    SpareCrash {
        /// Phase boundary at which the crash fires.
        phase: MigPhase,
        /// 1-based migration attempt index.
        attempt: u32,
    },
    /// Kill the Job Manager immediately after the journal record at `at`
    /// is appended — the side effect that record announces has not
    /// executed yet. Executed by the cycle journal via
    /// [`FaultPlane::take_coordinator_crash`].
    CoordinatorCrash {
        /// The journal position at which the coordinator dies.
        at: WalPoint,
    },
}

impl fmt::Display for NetSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetSel::Ib => "ib",
            NetSel::Gige => "gige",
            NetSel::Any => "any",
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::NetDrop { net, after, count } => {
                write!(f, "drop {count} datagrams on {net} after {after:?}")
            }
            FaultSpec::LinkFlap { net, at, lasts } => {
                write!(f, "{net} link flap at {at:?} for {lasts:?}")
            }
            FaultSpec::RdmaCqError { nth } => write!(f, "CQ error on RDMA read #{nth}"),
            FaultSpec::RdmaCorrupt { nth } => write!(f, "corrupt payload on RDMA read #{nth}"),
            FaultSpec::BlcrWriteError { nth } => write!(f, "BLCR dump write #{nth} fails"),
            FaultSpec::StoreWrite { fault, nth } => write!(f, "store write #{nth} fails: {fault}"),
            FaultSpec::SpareCrash { phase, attempt } => {
                write!(f, "spare crash at {phase} of attempt {attempt}")
            }
            FaultSpec::CoordinatorCrash { at } => {
                write!(f, "coordinator crash at {at}")
            }
        }
    }
}

/// A deterministic fault schedule: a seed, a list of scheduled faults, and
/// optional probabilistic rates (drawn from a seeded RNG, so the same plan
/// on the same simulation replays identically).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the plan's own RNG (independent of the simulation seed).
    pub seed: u64,
    /// Scheduled faults.
    pub entries: Vec<FaultSpec>,
    /// Per-datagram drop probability on the GigE network (0 = off).
    pub gige_drop_prob: f64,
    /// Per-read CQ-error probability on RDMA Reads (0 = off).
    pub rdma_cq_prob: f64,
}

impl FaultSpec {
    /// The kind of this fault, without its parameters.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultSpec::NetDrop { .. } => FaultKind::NetDrop,
            FaultSpec::LinkFlap { .. } => FaultKind::LinkFlap,
            FaultSpec::RdmaCqError { .. } => FaultKind::RdmaCqError,
            FaultSpec::RdmaCorrupt { .. } => FaultKind::RdmaCorrupt,
            FaultSpec::BlcrWriteError { .. } => FaultKind::BlcrWriteError,
            FaultSpec::StoreWrite { .. } => FaultKind::StoreWrite,
            FaultSpec::SpareCrash { .. } => FaultKind::SpareCrash,
            FaultSpec::CoordinatorCrash { .. } => FaultKind::CoordinatorCrash,
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
            gige_drop_prob: 0.0,
            rdma_cq_prob: 0.0,
        }
    }

    /// Append a scheduled fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.entries.push(spec);
        self
    }

    /// Set the probabilistic GigE datagram drop rate.
    pub fn gige_drop_prob(mut self, p: f64) -> Self {
        self.gige_drop_prob = p;
        self
    }

    /// Set the probabilistic RDMA Read CQ-error rate.
    pub fn rdma_cq_prob(mut self, p: f64) -> Self {
        self.rdma_cq_prob = p;
        self
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed {}", self.seed)?;
        for e in &self.entries {
            write!(f, "; {e}")?;
        }
        if self.gige_drop_prob > 0.0 {
            write!(f, "; gige drop p={}", self.gige_drop_prob)?;
        }
        if self.rdma_cq_prob > 0.0 {
            write!(f, "; rdma cq-error p={}", self.rdma_cq_prob)?;
        }
        Ok(())
    }
}

struct DropState {
    net: NetSel,
    after: SimTime,
    remaining: u32,
}

struct PlaneInner {
    handle: SimHandle,
    rng: Mutex<StdRng>,
    gige_drop_prob: f64,
    rdma_cq_prob: f64,
    flaps: Vec<(NetSel, SimTime, SimTime)>,
    drops: Mutex<Vec<DropState>>,
    cq_errs: Mutex<Vec<u64>>,
    corrupts: Mutex<Vec<u64>>,
    blcr_errs: Mutex<Vec<u64>>,
    store_errs: Mutex<Vec<(StoreFault, u64)>>,
    spare_crashes: Mutex<Vec<(MigPhase, u32)>>,
    coordinator_crashes: Mutex<Vec<WalPoint>>,
    rdma_reads: AtomicU64,
    blcr_writes: AtomicU64,
    store_writes: AtomicU64,
    injected: AtomicU64,
}

/// The live fault injector: implements every layer's hook trait and
/// executes a [`FaultPlan`] deterministically. Cloning shares the plane.
#[derive(Clone)]
pub struct FaultPlane {
    inner: Arc<PlaneInner>,
}

impl FaultPlane {
    /// Instantiate `plan` against a simulation.
    pub fn new(handle: &SimHandle, plan: &FaultPlan) -> Self {
        let mut flaps = Vec::new();
        let mut drops = Vec::new();
        let mut cq_errs = Vec::new();
        let mut corrupts = Vec::new();
        let mut blcr_errs = Vec::new();
        let mut store_errs = Vec::new();
        let mut spare_crashes = Vec::new();
        let mut coordinator_crashes = Vec::new();
        for spec in &plan.entries {
            match *spec {
                FaultSpec::NetDrop { net, after, count } => drops.push(DropState {
                    net,
                    after: SimTime::ZERO + after,
                    remaining: count,
                }),
                FaultSpec::LinkFlap { net, at, lasts } => {
                    flaps.push((net, SimTime::ZERO + at, SimTime::ZERO + at + lasts))
                }
                FaultSpec::RdmaCqError { nth } => cq_errs.push(nth),
                FaultSpec::RdmaCorrupt { nth } => corrupts.push(nth),
                FaultSpec::BlcrWriteError { nth } => blcr_errs.push(nth),
                FaultSpec::StoreWrite { fault, nth } => store_errs.push((fault, nth)),
                FaultSpec::SpareCrash { phase, attempt } => spare_crashes.push((phase, attempt)),
                FaultSpec::CoordinatorCrash { at } => coordinator_crashes.push(at),
            }
        }
        FaultPlane {
            inner: Arc::new(PlaneInner {
                handle: handle.clone(),
                rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
                gige_drop_prob: plan.gige_drop_prob,
                rdma_cq_prob: plan.rdma_cq_prob,
                flaps,
                drops: Mutex::new(drops),
                cq_errs: Mutex::new(cq_errs),
                corrupts: Mutex::new(corrupts),
                blcr_errs: Mutex::new(blcr_errs),
                store_errs: Mutex::new(store_errs),
                spare_crashes: Mutex::new(spare_crashes),
                coordinator_crashes: Mutex::new(coordinator_crashes),
                rdma_reads: AtomicU64::new(0),
                blcr_writes: AtomicU64::new(0),
                store_writes: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Consume a scheduled spare-crash entry matching `(phase, attempt)`.
    /// The Job Manager polls this at each phase boundary; `true` means
    /// "kill the target spare now". Each entry fires at most once.
    pub fn take_spare_crash(&self, phase: MigPhase, attempt: u32) -> bool {
        let mut entries = self.inner.spare_crashes.lock();
        if let Some(pos) = entries
            .iter()
            .position(|&(p, a)| p == phase && a == attempt)
        {
            entries.remove(pos);
            drop(entries);
            self.record("spare_crash", || {
                vec![
                    ("phase", phase.name().into()),
                    ("attempt", u64::from(attempt).into()),
                ]
            });
            true
        } else {
            false
        }
    }

    /// Consume a scheduled coordinator-crash entry matching the journal
    /// append that just happened: record `seq` (1-based over the job's
    /// journal) inside `phase`, the first record of that phase iff
    /// `phase_first`. The cycle journal polls this after every append;
    /// `true` means "kill the Job Manager now, before the side effect the
    /// record announces executes". Each entry fires at most once.
    pub fn take_coordinator_crash(&self, seq: u64, phase: MigPhase, phase_first: bool) -> bool {
        let mut entries = self.inner.coordinator_crashes.lock();
        if let Some(pos) = entries.iter().position(|&p| match p {
            WalPoint::Seq(n) => n == seq,
            WalPoint::Phase(ph) => phase_first && ph == phase,
        }) {
            let at = entries.remove(pos);
            drop(entries);
            self.record("coordinator_crash", || {
                vec![
                    ("seq", seq.into()),
                    ("phase", phase.name().into()),
                    ("at", at.to_string().into()),
                ]
            });
            true
        } else {
            false
        }
    }

    fn record(&self, name: &'static str, args: impl FnOnce() -> simkit::Args) {
        self.inner.injected.fetch_add(1, Ordering::Relaxed);
        self.inner.handle.instant_with("fault", name, args);
    }

    fn take_nth(list: &Mutex<Vec<u64>>, n: u64) -> bool {
        let mut list = list.lock();
        if let Some(pos) = list.iter().position(|&m| m == n) {
            list.remove(pos);
            true
        } else {
            false
        }
    }
}

impl FaultHook for FaultPlane {
    fn on_send(
        &self,
        now: SimTime,
        net: &str,
        from: NodeId,
        to: NodeId,
        port: u16,
        wire_bytes: u64,
    ) -> SendVerdict {
        for &(sel, start, end) in &self.inner.flaps {
            if sel.matches(net) && now >= start && now < end {
                self.record("link_flap", || {
                    vec![
                        ("net", net.to_string().into()),
                        ("from", u64::from(from.0).into()),
                        ("to", u64::from(to.0).into()),
                    ]
                });
                return SendVerdict::Error;
            }
        }
        {
            let mut drops = self.inner.drops.lock();
            if let Some(d) = drops
                .iter_mut()
                .find(|d| d.remaining > 0 && d.net.matches(net) && now >= d.after)
            {
                d.remaining -= 1;
                drop(drops);
                self.record("msg_drop", || {
                    vec![
                        ("net", net.to_string().into()),
                        ("from", u64::from(from.0).into()),
                        ("to", u64::from(to.0).into()),
                        ("port", u64::from(port).into()),
                        ("bytes", wire_bytes.into()),
                    ]
                });
                return SendVerdict::Drop;
            }
        }
        if net == "gige" && self.inner.gige_drop_prob > 0.0 {
            let hit = self.inner.rng.lock().gen_bool(self.inner.gige_drop_prob);
            if hit {
                self.record("msg_drop", || {
                    vec![
                        ("net", net.to_string().into()),
                        ("from", u64::from(from.0).into()),
                        ("to", u64::from(to.0).into()),
                        ("random", 1u64.into()),
                    ]
                });
                return SendVerdict::Drop;
            }
        }
        SendVerdict::Deliver
    }

    fn on_rdma_read(&self, _now: SimTime, from: NodeId, to: NodeId, len: u64) -> Option<ReadFault> {
        let n = self.inner.rdma_reads.fetch_add(1, Ordering::Relaxed) + 1;
        if Self::take_nth(&self.inner.cq_errs, n) {
            self.record("rdma_cq_error", || {
                vec![
                    ("read", n.into()),
                    ("from", u64::from(from.0).into()),
                    ("to", u64::from(to.0).into()),
                    ("bytes", len.into()),
                ]
            });
            return Some(ReadFault::CqError);
        }
        if Self::take_nth(&self.inner.corrupts, n) {
            self.record("rdma_corrupt", || {
                vec![
                    ("read", n.into()),
                    ("from", u64::from(from.0).into()),
                    ("to", u64::from(to.0).into()),
                    ("bytes", len.into()),
                ]
            });
            return Some(ReadFault::Corrupt);
        }
        if self.inner.rdma_cq_prob > 0.0 && self.inner.rng.lock().gen_bool(self.inner.rdma_cq_prob)
        {
            self.record("rdma_cq_error", || {
                vec![("read", n.into()), ("random", 1u64.into())]
            });
            return Some(ReadFault::CqError);
        }
        None
    }
}

impl StoreFaultHook for FaultPlane {
    fn on_write(&self, _now: SimTime, store: &str, path: &str, bytes: u64) -> Option<StoreFault> {
        let n = self.inner.store_writes.fetch_add(1, Ordering::Relaxed) + 1;
        let fault = {
            let mut errs = self.inner.store_errs.lock();
            errs.iter()
                .position(|&(_, m)| m == n)
                .map(|pos| errs.remove(pos).0)
        };
        if let Some(f) = fault {
            self.record("store_fault", || {
                vec![
                    ("store", store.to_string().into()),
                    ("path", path.to_string().into()),
                    ("write", n.into()),
                    ("bytes", bytes.into()),
                    (
                        "kind",
                        match f {
                            StoreFault::DiskFull => "disk_full".into(),
                            StoreFault::IoError => "io_error".into(),
                        },
                    ),
                ]
            });
            return Some(f);
        }
        None
    }
}

impl BlcrFaultHook for FaultPlane {
    fn on_write(&self, _now: SimTime, pid: u64, offset: u64) -> bool {
        let n = self.inner.blcr_writes.fetch_add(1, Ordering::Relaxed) + 1;
        if Self::take_nth(&self.inner.blcr_errs, n) {
            self.record("blcr_write_error", || {
                vec![
                    ("pid", pid.into()),
                    ("write", n.into()),
                    ("offset", offset.into()),
                ]
            });
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Simulation;

    #[test]
    fn scheduled_drop_fires_once_per_count() {
        let sim = Simulation::new(1);
        let plan = FaultPlan::new(7).with(FaultSpec::NetDrop {
            net: NetSel::Gige,
            after: Duration::ZERO,
            count: 2,
        });
        let plane = FaultPlane::new(&sim.handle(), &plan);
        let t = SimTime::ZERO;
        let (a, b) = (NodeId(1), NodeId(2));
        assert_eq!(plane.on_send(t, "ib", a, b, 1, 10), SendVerdict::Deliver);
        assert_eq!(plane.on_send(t, "gige", a, b, 1, 10), SendVerdict::Drop);
        assert_eq!(plane.on_send(t, "gige", a, b, 1, 10), SendVerdict::Drop);
        assert_eq!(plane.on_send(t, "gige", a, b, 1, 10), SendVerdict::Deliver);
        assert_eq!(plane.injected(), 2);
    }

    #[test]
    fn link_flap_covers_window_only() {
        let sim = Simulation::new(1);
        let plan = FaultPlan::new(7).with(FaultSpec::LinkFlap {
            net: NetSel::Any,
            at: Duration::from_secs(1),
            lasts: Duration::from_secs(1),
        });
        let plane = FaultPlane::new(&sim.handle(), &plan);
        let (a, b) = (NodeId(1), NodeId(2));
        let before = SimTime::ZERO + Duration::from_millis(900);
        let during = SimTime::ZERO + Duration::from_millis(1500);
        let after = SimTime::ZERO + Duration::from_millis(2100);
        assert_eq!(
            plane.on_send(before, "ib", a, b, 1, 1),
            SendVerdict::Deliver
        );
        assert_eq!(plane.on_send(during, "ib", a, b, 1, 1), SendVerdict::Error);
        assert_eq!(plane.on_send(after, "ib", a, b, 1, 1), SendVerdict::Deliver);
    }

    #[test]
    fn nth_rdma_faults_hit_exact_reads() {
        let sim = Simulation::new(1);
        let plan = FaultPlan::new(7)
            .with(FaultSpec::RdmaCqError { nth: 2 })
            .with(FaultSpec::RdmaCorrupt { nth: 3 });
        let plane = FaultPlane::new(&sim.handle(), &plan);
        let t = SimTime::ZERO;
        let (a, b) = (NodeId(1), NodeId(2));
        assert_eq!(plane.on_rdma_read(t, a, b, 8), None);
        assert_eq!(plane.on_rdma_read(t, a, b, 8), Some(ReadFault::CqError));
        assert_eq!(plane.on_rdma_read(t, a, b, 8), Some(ReadFault::Corrupt));
        assert_eq!(plane.on_rdma_read(t, a, b, 8), None);
    }

    #[test]
    fn spare_crash_consumed_once() {
        let sim = Simulation::new(1);
        let plan = FaultPlan::new(7).with(FaultSpec::SpareCrash {
            phase: MigPhase::Restart,
            attempt: 1,
        });
        let plane = FaultPlane::new(&sim.handle(), &plan);
        assert!(!plane.take_spare_crash(MigPhase::Stall, 1));
        assert!(plane.take_spare_crash(MigPhase::Restart, 1));
        assert!(!plane.take_spare_crash(MigPhase::Restart, 1));
    }

    #[test]
    fn coordinator_crash_matches_seq_or_phase_first() {
        let sim = Simulation::new(1);
        let plan = FaultPlan::new(7)
            .with(FaultSpec::CoordinatorCrash {
                at: WalPoint::Seq(3),
            })
            .with(FaultSpec::CoordinatorCrash {
                at: WalPoint::Phase(MigPhase::Restart),
            });
        let plane = FaultPlane::new(&sim.handle(), &plan);
        assert!(!plane.take_coordinator_crash(1, MigPhase::Stall, true));
        assert!(!plane.take_coordinator_crash(2, MigPhase::Migrate, true));
        assert!(plane.take_coordinator_crash(3, MigPhase::Migrate, false));
        assert!(!plane.take_coordinator_crash(3, MigPhase::Migrate, false));
        // Phase points only match the *first* record of the phase.
        assert!(!plane.take_coordinator_crash(4, MigPhase::Restart, false));
        assert!(plane.take_coordinator_crash(5, MigPhase::Restart, true));
        assert!(!plane.take_coordinator_crash(6, MigPhase::Restart, true));
        assert_eq!(plane.injected(), 2);
    }

    #[test]
    fn probabilistic_drops_are_reproducible() {
        let sim = Simulation::new(1);
        let run = |seed| {
            let plan = FaultPlan::new(seed).gige_drop_prob(0.3);
            let plane = FaultPlane::new(&sim.handle(), &plan);
            (0..64)
                .map(|_| {
                    matches!(
                        plane.on_send(SimTime::ZERO, "gige", NodeId(1), NodeId(2), 1, 1),
                        SendVerdict::Drop
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        assert!(run(5).iter().any(|&d| d), "0.3 over 64 sends should hit");
    }
}
