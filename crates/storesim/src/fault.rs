//! Fault-injection hook for checkpoint stores.

use simkit::SimTime;
use std::fmt;

/// A write-path storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// No space left on device: retrying against the same store is
    /// pointless until files are deleted.
    DiskFull,
    /// Transient I/O error: a bounded retry may succeed.
    IoError,
}

impl fmt::Display for StoreFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFault::DiskFull => write!(f, "no space left on device"),
            StoreFault::IoError => write!(f, "I/O error"),
        }
    }
}

/// Injector consulted by fault-aware stores on every
/// [`CkptStore::try_append`](crate::CkptStore::try_append). The hook
/// decides whether to inject (by schedule, count, or probability); stores
/// only ask and obey. All methods default to "no fault".
pub trait StoreFaultHook: Send + Sync {
    /// Consulted once per append, before any I/O time is charged. `store`
    /// is the store's diagnostic name ("localfs", "pvfs").
    fn on_write(
        &self,
        _now: SimTime,
        _store: &str,
        _path: &str,
        _bytes: u64,
    ) -> Option<StoreFault> {
        None
    }
}
