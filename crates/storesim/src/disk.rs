//! A single spindle with seek-degraded sharing and a write-back page cache.

use parking_lot::Mutex;
use simkit::{Ctx, Link, Sharing, SimHandle, SimTime};
use std::sync::Arc;
use std::time::Duration;

/// Disk performance parameters.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Peak sequential bandwidth in bytes/second (single stream).
    pub bandwidth: f64,
    /// Seek degradation per extra concurrent stream
    /// (`aggregate(n) = bandwidth / (1 + alpha (n-1))`).
    pub alpha: f64,
    /// Memory-copy bandwidth for page-cache hits (bytes/second).
    pub mem_bandwidth: f64,
    /// Dirty-page budget: buffered writes up to this many outstanding
    /// bytes complete at memory speed; beyond it they throttle to disk
    /// speed (Linux `vm.dirty_ratio` behaviour).
    pub dirty_limit: u64,
    /// Rate at which the background flusher drains dirty pages.
    pub flush_bandwidth: f64,
    /// Read-speed multiplier over `bandwidth` (sequential reads benefit
    /// from readahead; >= 1.0). Reads are charged `bytes / read_factor`
    /// on the spindle link.
    pub read_factor: f64,
}

impl DiskConfig {
    /// A 2010-era SATA disk under ext3, as in the paper's compute nodes.
    pub fn ext3_local() -> Self {
        DiskConfig {
            bandwidth: 72e6,
            alpha: 0.24,
            mem_bandwidth: 2.4e9,
            dirty_limit: 64 << 20,
            flush_bandwidth: 60e6,
            read_factor: 1.45,
        }
    }

    /// A PVFS data-server disk (server-class, better sustained rate, less
    /// seek penalty thanks to larger server-side staging).
    pub fn pvfs_server() -> Self {
        DiskConfig {
            bandwidth: 96e6,
            alpha: 0.042,
            mem_bandwidth: 2.4e9,
            dirty_limit: 64 << 20,
            flush_bandwidth: 80e6,
            read_factor: 1.3,
        }
    }
}

struct DirtyState {
    level: f64,
    at: SimTime,
}

/// A disk: a seek-degraded fluid link plus dirty-page accounting.
#[derive(Clone)]
pub struct Disk {
    name: Arc<str>,
    cfg: Arc<DiskConfig>,
    link: Link,
    dirty: Arc<Mutex<DirtyState>>,
}

impl Disk {
    /// Create a disk.
    pub fn new(handle: &SimHandle, name: &str, cfg: DiskConfig) -> Self {
        let link = Link::new(
            handle,
            name,
            cfg.bandwidth,
            Sharing::Degraded { alpha: cfg.alpha },
        );
        Disk {
            name: name.into(),
            cfg: Arc::new(cfg),
            link,
            dirty: Arc::new(Mutex::new(DirtyState {
                level: 0.0,
                at: handle.now(),
            })),
        }
    }

    /// The disk's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configuration in effect.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// The spindle link (for stats in tests/benches).
    pub fn link(&self) -> &Link {
        &self.link
    }

    fn decay_dirty(&self, now: SimTime) -> f64 {
        let mut d = self.dirty.lock();
        if now > d.at {
            let dt = (now - d.at).as_secs_f64();
            d.level = (d.level - self.cfg.flush_bandwidth * dt).max(0.0);
            d.at = now;
        }
        d.level
    }

    /// Durable write: goes straight through the spindle (O_SYNC /
    /// fsync-per-chunk, as BLCR checkpoint streams behave).
    pub fn write_sync(&self, ctx: &Ctx, bytes: u64) {
        let span = ctx.span_with("store", "write_sync", || {
            vec![("disk", (&*self.name).into()), ("bytes", bytes.into())]
        });
        self.link.transfer(ctx, bytes);
        span.end();
    }

    /// Buffered write: absorbed at memory speed within the dirty budget,
    /// spindle speed beyond it.
    pub fn write_buffered(&self, ctx: &Ctx, bytes: u64) {
        let now = ctx.now();
        let level = self.decay_dirty(now);
        let room = (self.cfg.dirty_limit as f64 - level).max(0.0);
        let absorbed = (bytes as f64).min(room);
        if absorbed > 0.0 {
            ctx.sleep(Duration::from_secs_f64(absorbed / self.cfg.mem_bandwidth));
            // Credit the dirty pages once the copy has completed.
            self.decay_dirty(ctx.now());
            self.dirty.lock().level += absorbed;
        }
        let spill = bytes as f64 - absorbed;
        if spill > 0.5 {
            self.link.transfer(ctx, spill as u64);
        }
        if ctx.telemetry_on() {
            let level = self.decay_dirty(ctx.now());
            ctx.counter("store", format!("dirty:{}", self.name), level);
        }
    }

    /// Read `bytes`, of which `cached_bytes` hit the page cache.
    pub fn read(&self, ctx: &Ctx, bytes: u64, cached_bytes: u64) {
        let cached = cached_bytes.min(bytes);
        if cached > 0 {
            ctx.sleep(Duration::from_secs_f64(
                cached as f64 / self.cfg.mem_bandwidth,
            ));
        }
        let cold = bytes - cached;
        if cold > 0 {
            let charged = (cold as f64 / self.cfg.read_factor.max(1.0)) as u64;
            self.link.transfer(ctx, charged.max(1));
        }
        ctx.instant_with("store", "read", || {
            vec![
                ("disk", (&*self.name).into()),
                ("bytes", bytes.into()),
                ("cached", cached.into()),
            ]
        });
    }

    /// Current dirty-page level (after decay), for tests.
    pub fn dirty_level(&self, now: SimTime) -> u64 {
        self.decay_dirty(now) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::dur::*;
    use simkit::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn cfg() -> DiskConfig {
        DiskConfig {
            bandwidth: 100e6,
            alpha: 0.0,
            mem_bandwidth: 1e9,
            dirty_limit: 50_000_000,
            flush_bandwidth: 50e6,
            read_factor: 1.0,
        }
    }

    #[test]
    fn sync_write_runs_at_disk_speed() {
        let mut sim = Simulation::new(0);
        let disk = Disk::new(&sim.handle(), "d", cfg());
        sim.spawn("w", move |ctx| {
            disk.write_sync(ctx, 100_000_000);
            assert!((ctx.now().as_secs_f64() - 1.0).abs() < 1e-6);
        });
        sim.run().unwrap();
    }

    #[test]
    fn buffered_write_within_budget_is_memory_speed() {
        let mut sim = Simulation::new(0);
        let disk = Disk::new(&sim.handle(), "d", cfg());
        sim.spawn("w", move |ctx| {
            disk.write_buffered(ctx, 40_000_000); // 40 MB < 50 MB budget
                                                  // 40 MB at 1 GB/s = 40 ms, nowhere near 400 ms of disk time
            assert!(
                ctx.now().as_millis() < 60,
                "took {}ms",
                ctx.now().as_millis()
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn buffered_write_beyond_budget_throttles() {
        let mut sim = Simulation::new(0);
        let disk = Disk::new(&sim.handle(), "d", cfg());
        let t = std::sync::Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        sim.spawn("w", move |ctx| {
            disk.write_buffered(ctx, 150_000_000); // 50 MB absorbed, 100 MB spills
            t2.store(ctx.now().as_millis(), Ordering::SeqCst);
        });
        sim.run().unwrap();
        // 50 MB / 1 GB/s = 50 ms + 100 MB / 100 MB/s = 1000 ms → ~1050 ms
        let ms = t.load(Ordering::SeqCst);
        assert!((1040..1060).contains(&ms), "took {ms} ms");
    }

    #[test]
    fn dirty_budget_decays_over_time() {
        let mut sim = Simulation::new(0);
        let disk = Disk::new(&sim.handle(), "d", cfg());
        let d2 = disk.clone();
        sim.spawn("w", move |ctx| {
            d2.write_buffered(ctx, 50_000_000); // fill budget
            let lvl = d2.dirty_level(ctx.now());
            assert!(lvl > 49_000_000, "level {lvl}");
            ctx.sleep(ms(500)); // flusher drains 25 MB
            let lvl = d2.dirty_level(ctx.now());
            assert!((24_000_000..26_000_000).contains(&lvl), "level {lvl}");
            // budget partially restored → next buffered write part-absorbed
            let t0 = ctx.now();
            d2.write_buffered(ctx, 30_000_000);
            let dt = (ctx.now() - t0).as_secs_f64();
            // ~25 MB absorbed (25 ms) + ~5 MB spill (50 ms) ≈ 75 ms
            assert!((0.06..0.10).contains(&dt), "took {dt}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn cached_read_is_memory_speed_cold_read_is_disk_speed() {
        let mut sim = Simulation::new(0);
        let disk = Disk::new(&sim.handle(), "d", cfg());
        sim.spawn("r", move |ctx| {
            let t0 = ctx.now();
            disk.read(ctx, 100_000_000, 100_000_000);
            let hot = (ctx.now() - t0).as_secs_f64();
            assert!((hot - 0.1).abs() < 1e-6, "hot read took {hot}");
            let t1 = ctx.now();
            disk.read(ctx, 100_000_000, 0);
            let cold = (ctx.now() - t1).as_secs_f64();
            assert!((cold - 1.0).abs() < 1e-6, "cold read took {cold}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn concurrent_sync_writers_degrade_with_alpha() {
        let mut sim = Simulation::new(0);
        let mut c = cfg();
        c.alpha = 0.25;
        let disk = Disk::new(&sim.handle(), "d", c);
        let done = std::sync::Arc::new(AtomicU64::new(0));
        for i in 0..8 {
            let d = disk.clone();
            let f = done.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                d.write_sync(ctx, 10_000_000);
                f.store(ctx.now().as_millis(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        // 80 MB at 100/(1+0.25*7) = 36.36 MB/s → 2.2 s
        let ms = done.load(Ordering::SeqCst);
        assert!((2150..2250).contains(&ms), "took {ms} ms");
    }
}
