//! A node-local ext3-like filesystem over one [`Disk`].

use crate::disk::Disk;
use crate::fault::{StoreFault, StoreFaultHook};
use crate::CkptStore;
use ibfabric::{DataSlice, Rope};
use parking_lot::Mutex;
use simkit::Ctx;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct StoredFile {
    slices: Rope,
    len: u64,
    /// Bytes of this file resident in the page cache (written since the
    /// last `drop_caches`). Reads of these bytes run at memory speed.
    cached: u64,
}

struct Inner {
    // BTreeMap: `paths()` and cache drops iterate the namespace; path
    // order keeps listings deterministic.
    files: BTreeMap<String, StoredFile>,
}

/// A local filesystem: files live on one disk, metadata ops are cheap,
/// the page cache makes freshly written files fast to read back.
#[derive(Clone)]
pub struct LocalFs {
    disk: Disk,
    inner: Arc<Mutex<Inner>>,
    meta_latency: Duration,
    written: Arc<AtomicU64>,
    read: Arc<AtomicU64>,
    hook: Arc<Mutex<Option<Arc<dyn StoreFaultHook>>>>,
}

impl LocalFs {
    /// Create a filesystem over `disk`.
    pub fn new(disk: Disk) -> Self {
        LocalFs {
            disk,
            inner: Arc::new(Mutex::new(Inner {
                files: BTreeMap::new(),
            })),
            meta_latency: Duration::from_micros(150),
            written: Arc::new(AtomicU64::new(0)),
            read: Arc::new(AtomicU64::new(0)),
            hook: Arc::new(Mutex::new(None)),
        }
    }

    /// The backing disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Install (or replace) the fault hook consulted by
    /// [`CkptStore::try_append`].
    pub fn set_fault_hook(&self, hook: Arc<dyn StoreFaultHook>) {
        *self.hook.lock() = Some(hook);
    }

    /// List stored file paths (diagnostics).
    pub fn paths(&self) -> Vec<String> {
        self.inner.lock().files.keys().cloned().collect()
    }
}

impl CkptStore for LocalFs {
    fn create(&self, ctx: &Ctx, path: &str) {
        ctx.sleep(self.meta_latency);
        self.inner.lock().files.insert(
            path.to_string(),
            StoredFile {
                slices: Rope::new(),
                len: 0,
                cached: 0,
            },
        );
    }

    fn append(&self, ctx: &Ctx, path: &str, data: DataSlice, sync: bool) {
        let len = data.len;
        if sync {
            self.disk.write_sync(ctx, len);
        } else {
            self.disk.write_buffered(ctx, len);
        }
        let mut inner = self.inner.lock();
        let f = inner
            .files
            .get_mut(path)
            .unwrap_or_else(|| panic!("append to nonexistent file {path}"));
        f.slices.push(data);
        f.len += len;
        f.cached += len; // written bytes are cache-resident either way
        self.written.fetch_add(len, Ordering::Relaxed);
    }

    fn try_append(
        &self,
        ctx: &Ctx,
        path: &str,
        data: DataSlice,
        sync: bool,
    ) -> Result<(), StoreFault> {
        let fault = self
            .hook
            .lock()
            .as_ref()
            .and_then(|h| h.on_write(ctx.now(), "localfs", path, data.len));
        if let Some(f) = fault {
            // A failed write still costs the syscall round trip.
            ctx.sleep(self.meta_latency);
            return Err(f);
        }
        self.append(ctx, path, data, sync);
        Ok(())
    }

    fn read_all(&self, ctx: &Ctx, path: &str) -> Option<Rope> {
        ctx.sleep(self.meta_latency);
        let (slices, len, cached) = {
            let inner = self.inner.lock();
            let f = inner.files.get(path)?;
            // jmlint: allow(hot_alloc) — rope clone: shared table, no copy
            (f.slices.clone(), f.len, f.cached)
        };
        self.disk.read(ctx, len, cached);
        self.read.fetch_add(len, Ordering::Relaxed);
        Some(slices)
    }

    fn len(&self, path: &str) -> Option<u64> {
        self.inner.lock().files.get(path).map(|f| f.len)
    }

    fn delete(&self, path: &str) {
        self.inner.lock().files.remove(path);
    }

    fn drop_caches(&self) {
        for f in self.inner.lock().files.values_mut() {
            f.cached = 0;
        }
    }

    fn evict(&self, path: &str) {
        if let Some(f) = self.inner.lock().files.get_mut(path) {
            f.cached = 0;
        }
    }

    fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskConfig;
    use simkit::{SimHandle, Simulation};

    fn fs(handle: &SimHandle) -> LocalFs {
        LocalFs::new(Disk::new(
            handle,
            "d",
            DiskConfig {
                bandwidth: 100e6,
                alpha: 0.0,
                mem_bandwidth: 1e9,
                dirty_limit: 1 << 30,
                flush_bandwidth: 50e6,
                read_factor: 1.0,
            },
        ))
    }

    #[test]
    fn write_read_roundtrip_preserves_content() {
        let mut sim = Simulation::new(0);
        let fs = fs(&sim.handle());
        sim.spawn("io", move |ctx| {
            fs.create(ctx, "ckpt.0");
            fs.append(ctx, "ckpt.0", DataSlice::pattern(4, 0, 1000), true);
            fs.append(ctx, "ckpt.0", DataSlice::bytes(&b"tail"[..]), true);
            assert_eq!(fs.len("ckpt.0"), Some(1004));
            let back = fs.read_all(ctx, "ckpt.0").unwrap();
            assert_eq!(back.slice_count(), 2);
            assert!(back.as_slices()[0].content_eq(&DataSlice::pattern(4, 0, 1000)));
            assert_eq!(back.as_slices()[1].to_bytes().as_ref(), b"tail");
            assert_eq!(fs.bytes_written(), 1004);
            assert_eq!(fs.bytes_read(), 1004);
        });
        sim.run().unwrap();
    }

    #[test]
    fn fresh_file_reads_hot_until_caches_dropped() {
        let mut sim = Simulation::new(0);
        let fs = fs(&sim.handle());
        sim.spawn("io", move |ctx| {
            fs.create(ctx, "f");
            fs.append(ctx, "f", DataSlice::pattern(1, 0, 100_000_000), true);
            let t0 = ctx.now();
            fs.read_all(ctx, "f").unwrap();
            let hot = (ctx.now() - t0).as_secs_f64();
            assert!(hot < 0.15, "hot read took {hot}");
            fs.drop_caches();
            let t1 = ctx.now();
            fs.read_all(ctx, "f").unwrap();
            let cold = (ctx.now() - t1).as_secs_f64();
            assert!((cold - 1.0).abs() < 0.01, "cold read took {cold}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn read_missing_file_is_none() {
        let mut sim = Simulation::new(0);
        let fs = fs(&sim.handle());
        sim.spawn("io", move |ctx| {
            assert!(fs.read_all(ctx, "nope").is_none());
            assert_eq!(fs.len("nope"), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn delete_removes_file() {
        let mut sim = Simulation::new(0);
        let fs = fs(&sim.handle());
        sim.spawn("io", move |ctx| {
            fs.create(ctx, "f");
            fs.append(ctx, "f", DataSlice::zero(10), false);
            fs.delete("f");
            assert!(fs.read_all(ctx, "f").is_none());
        });
        sim.run().unwrap();
    }

    #[test]
    fn create_truncates() {
        let mut sim = Simulation::new(0);
        let fs = fs(&sim.handle());
        sim.spawn("io", move |ctx| {
            fs.create(ctx, "f");
            fs.append(ctx, "f", DataSlice::zero(10), false);
            fs.create(ctx, "f");
            assert_eq!(fs.len("f"), Some(0));
        });
        sim.run().unwrap();
    }
}
