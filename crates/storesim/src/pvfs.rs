//! A PVFS2-like striped parallel filesystem.
//!
//! Files are striped round-robin across N data servers in fixed-size
//! stripes (1 MB in the paper's setup). Every stripe pays the network hop
//! from the client to its server (when a network is attached) plus the
//! server disk. With 64 concurrent checkpoint streams over 4 servers the
//! per-server seek degradation dominates — the contention the paper blames
//! for PVFS checkpoints being ~3x slower than local ext3.

use crate::disk::{Disk, DiskConfig};
use crate::fault::{StoreFault, StoreFaultHook};
use crate::CkptStore;
use ibfabric::{DataSlice, Net, NodeId, Rope};
use parking_lot::Mutex;
use simkit::{Ctx, SimHandle};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// PVFS deployment parameters.
#[derive(Debug, Clone)]
pub struct PvfsConfig {
    /// Number of data servers (the paper uses 4, doubling as metadata
    /// servers).
    pub servers: usize,
    /// Stripe size in bytes (the paper sets 1 MB).
    pub stripe: u64,
    /// Per-server disk model.
    pub disk: DiskConfig,
    /// Metadata operation latency (create/open).
    pub meta_latency: Duration,
}

impl Default for PvfsConfig {
    fn default() -> Self {
        PvfsConfig {
            servers: 4,
            stripe: 1 << 20,
            disk: DiskConfig::pvfs_server(),
            meta_latency: Duration::from_micros(600),
        }
    }
}

struct StoredFile {
    slices: Rope,
    len: u64,
    cached: u64,
    /// First server index for this file's stripe 0 (spreads load).
    start_server: usize,
}

struct Inner {
    // BTreeMap: cache drops iterate the namespace; path order keeps the
    // pass deterministic.
    files: BTreeMap<String, StoredFile>,
    next_start: usize,
}

/// The shared PVFS deployment. Obtain per-node handles with
/// [`Pvfs::client`].
#[derive(Clone)]
pub struct Pvfs {
    cfg: Arc<PvfsConfig>,
    server_disks: Arc<Vec<Disk>>,
    /// Transport and the node each server lives on (None = free network,
    /// for isolated storage benchmarks).
    transport: Option<(Net, Arc<Vec<NodeId>>)>,
    inner: Arc<Mutex<Inner>>,
    written: Arc<AtomicU64>,
    read: Arc<AtomicU64>,
    /// Stripe operations currently in flight per server (telemetry).
    inflight: Arc<Vec<AtomicU64>>,
    hook: Arc<Mutex<Option<Arc<dyn StoreFaultHook>>>>,
}

impl Pvfs {
    /// Create a deployment without network transport costs.
    pub fn new(handle: &SimHandle, cfg: PvfsConfig) -> Self {
        let disks = (0..cfg.servers)
            .map(|i| Disk::new(handle, &format!("pvfs-srv{i}"), cfg.disk.clone()))
            .collect();
        let inflight = (0..cfg.servers).map(|_| AtomicU64::new(0)).collect();
        Pvfs {
            cfg: Arc::new(cfg),
            server_disks: Arc::new(disks),
            transport: None,
            inner: Arc::new(Mutex::new(Inner {
                files: BTreeMap::new(),
                next_start: 0,
            })),
            written: Arc::new(AtomicU64::new(0)),
            read: Arc::new(AtomicU64::new(0)),
            inflight: Arc::new(inflight),
            hook: Arc::new(Mutex::new(None)),
        }
    }

    /// Install (or replace) the fault hook consulted by every client's
    /// [`CkptStore::try_append`].
    pub fn set_fault_hook(&self, hook: Arc<dyn StoreFaultHook>) {
        *self.hook.lock() = Some(hook);
    }

    /// Create a deployment whose stripes traverse `net` to the given
    /// server nodes (PVFS with InfiniBand transport, as in the paper).
    pub fn with_network(
        handle: &SimHandle,
        cfg: PvfsConfig,
        net: Net,
        server_nodes: Vec<NodeId>,
    ) -> Self {
        assert_eq!(
            server_nodes.len(),
            cfg.servers,
            "need one node per PVFS server"
        );
        for n in &server_nodes {
            net.add_node(*n);
        }
        let mut fs = Self::new(handle, cfg);
        fs.transport = Some((net, Arc::new(server_nodes)));
        fs
    }

    /// A client handle anchored at `node` (pays network costs from there).
    pub fn client(&self, node: NodeId) -> PvfsClient {
        if let Some((net, _)) = &self.transport {
            net.add_node(node);
        }
        PvfsClient {
            fs: self.clone(),
            node,
        }
    }

    /// Per-server disks (stats for benches).
    pub fn server_disks(&self) -> &[Disk] {
        &self.server_disks
    }

    fn stripe_io(
        &self,
        ctx: &Ctx,
        client: NodeId,
        server_idx: usize,
        bytes: u64,
        op: StripeOp,
        cached: u64,
    ) {
        let telemetry = ctx.telemetry_on();
        if telemetry {
            let depth = self.inflight[server_idx].fetch_add(1, Ordering::Relaxed) + 1;
            ctx.counter("store", format!("pvfs_queue:srv{server_idx}"), depth as f64);
        }
        if let Some((net, nodes)) = &self.transport {
            let server = nodes[server_idx];
            // Data flows client→server for writes, server→client for reads.
            match op {
                StripeOp::Write => net.wire_delay(ctx, client, server, bytes).unwrap(),
                StripeOp::Read => net.wire_delay(ctx, server, client, bytes).unwrap(),
            }
        }
        let disk = &self.server_disks[server_idx];
        match op {
            StripeOp::Write => disk.write_sync(ctx, bytes),
            StripeOp::Read => disk.read(ctx, bytes, cached),
        }
        if telemetry {
            let depth = self.inflight[server_idx].fetch_sub(1, Ordering::Relaxed) - 1;
            ctx.counter("store", format!("pvfs_queue:srv{server_idx}"), depth as f64);
        }
    }
}

#[derive(Clone, Copy)]
enum StripeOp {
    Write,
    Read,
}

/// A per-node client view of a [`Pvfs`] deployment.
#[derive(Clone)]
pub struct PvfsClient {
    fs: Pvfs,
    node: NodeId,
}

impl PvfsClient {
    /// The underlying deployment.
    pub fn deployment(&self) -> &Pvfs {
        &self.fs
    }
}

impl CkptStore for PvfsClient {
    fn create(&self, ctx: &Ctx, path: &str) {
        ctx.sleep(self.fs.cfg.meta_latency);
        let mut inner = self.fs.inner.lock();
        let start = inner.next_start;
        inner.next_start = (inner.next_start + 1) % self.fs.cfg.servers;
        inner.files.insert(
            path.to_string(),
            StoredFile {
                slices: Rope::new(),
                len: 0,
                cached: 0,
                start_server: start,
            },
        );
    }

    fn append(&self, ctx: &Ctx, path: &str, data: DataSlice, _sync: bool) {
        // PVFS checkpoint streams are always durable on the server side.
        let len = data.len;
        let stripe = self.fs.cfg.stripe;
        let nsrv = self.fs.cfg.servers;
        let (mut offset, start) = {
            let inner = self.fs.inner.lock();
            let f = inner
                .files
                .get(path)
                .unwrap_or_else(|| panic!("append to nonexistent PVFS file {path}"));
            (f.len, f.start_server)
        };
        let span = ctx.span_with("store", "pvfs_append", || {
            vec![("path", path.into()), ("bytes", len.into())]
        });
        let mut remaining = len;
        while remaining > 0 {
            let within = offset % stripe;
            let chunk = (stripe - within).min(remaining);
            let idx = ((offset / stripe) as usize + start) % nsrv;
            self.fs
                .stripe_io(ctx, self.node, idx, chunk, StripeOp::Write, 0);
            offset += chunk;
            remaining -= chunk;
        }
        span.end();
        let mut inner = self.fs.inner.lock();
        let f = inner.files.get_mut(path).expect("file vanished mid-append");
        f.slices.push(data);
        f.len += len;
        f.cached += len;
        self.fs.written.fetch_add(len, Ordering::Relaxed);
    }

    fn try_append(
        &self,
        ctx: &Ctx,
        path: &str,
        data: DataSlice,
        sync: bool,
    ) -> Result<(), StoreFault> {
        let fault = self
            .fs
            .hook
            .lock()
            .as_ref()
            .and_then(|h| h.on_write(ctx.now(), "pvfs", path, data.len));
        if let Some(f) = fault {
            ctx.sleep(self.fs.cfg.meta_latency);
            return Err(f);
        }
        self.append(ctx, path, data, sync);
        Ok(())
    }

    fn read_all(&self, ctx: &Ctx, path: &str) -> Option<Rope> {
        ctx.sleep(self.fs.cfg.meta_latency);
        let (slices, len, cached, start) = {
            let inner = self.fs.inner.lock();
            let f = inner.files.get(path)?;
            // jmlint: allow(hot_alloc) — rope clone: shared table, no copy
            (f.slices.clone(), f.len, f.cached, f.start_server)
        };
        let span = ctx.span_with("store", "pvfs_read", || {
            vec![
                ("path", path.into()),
                ("bytes", len.into()),
                ("cached", cached.into()),
            ]
        });
        let stripe = self.fs.cfg.stripe;
        let nsrv = self.fs.cfg.servers;
        let mut offset = 0u64;
        let mut cached_left = cached;
        while offset < len {
            let chunk = stripe.min(len - offset);
            let idx = ((offset / stripe) as usize + start) % nsrv;
            let chunk_cached = cached_left.min(chunk);
            self.fs
                .stripe_io(ctx, self.node, idx, chunk, StripeOp::Read, chunk_cached);
            cached_left -= chunk_cached;
            offset += chunk;
        }
        span.end();
        self.fs.read.fetch_add(len, Ordering::Relaxed);
        Some(slices)
    }

    fn len(&self, path: &str) -> Option<u64> {
        self.fs.inner.lock().files.get(path).map(|f| f.len)
    }

    fn delete(&self, path: &str) {
        self.fs.inner.lock().files.remove(path);
    }

    fn drop_caches(&self) {
        for f in self.fs.inner.lock().files.values_mut() {
            f.cached = 0;
        }
    }

    fn bytes_written(&self) -> u64 {
        self.fs.written.load(Ordering::Relaxed)
    }

    fn bytes_read(&self) -> u64 {
        self.fs.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Simulation;

    fn cfg() -> PvfsConfig {
        PvfsConfig {
            servers: 4,
            stripe: 1 << 20,
            disk: DiskConfig {
                bandwidth: 100e6,
                alpha: 0.0,
                mem_bandwidth: 1e9,
                dirty_limit: 0,
                flush_bandwidth: 50e6,
                read_factor: 1.0,
            },
            meta_latency: Duration::from_micros(600),
        }
    }

    #[test]
    fn roundtrip_preserves_content() {
        let mut sim = Simulation::new(0);
        let fs = Pvfs::new(&sim.handle(), cfg());
        let client = fs.client(NodeId(0));
        sim.spawn("io", move |ctx| {
            client.create(ctx, "f");
            client.append(ctx, "f", DataSlice::pattern(2, 0, 5 << 20), true);
            let back = client.read_all(ctx, "f").unwrap();
            assert!(back.as_slices()[0].content_eq(&DataSlice::pattern(2, 0, 5 << 20)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn single_client_write_is_striped_serially() {
        let mut sim = Simulation::new(0);
        let fs = Pvfs::new(&sim.handle(), cfg());
        let client = fs.client(NodeId(0));
        let fs2 = fs.clone();
        sim.spawn("io", move |ctx| {
            client.create(ctx, "f");
            let t0 = ctx.now();
            client.append(ctx, "f", DataSlice::zero(8 << 20), true);
            let dt = (ctx.now() - t0).as_secs_f64();
            // Stripes issue one at a time from one client: 8 MiB at one
            // server-disk at a time ≈ 8 MiB / 100 MB/s ≈ 84 ms.
            assert!((0.08..0.09).contains(&dt), "took {dt}");
            // spread evenly: 2 MiB per server
            for d in fs2.server_disks() {
                assert_eq!(d.link().stats().bytes_completed, 2 << 20);
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn many_clients_contend_on_servers() {
        let mut sim = Simulation::new(0);
        let mut c = cfg();
        c.disk.alpha = 0.05;
        let fs = Pvfs::new(&sim.handle(), c);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..16 {
            let client = fs.client(NodeId(i));
            let d = done.clone();
            sim.spawn(&format!("c{i}"), move |ctx| {
                client.create(ctx, &format!("f{i}"));
                client.append(ctx, &format!("f{i}"), DataSlice::zero(8 << 20), true);
                d.store(ctx.now().as_millis(), Ordering::SeqCst);
            });
        }
        sim.run().unwrap();
        // 128 MiB total over 4 servers with ~4 streams each: aggregate
        // noticeably below the 400 MB/s ideal.
        let ms = done.load(Ordering::SeqCst);
        assert!(
            ms > 380,
            "contended write finished suspiciously fast: {ms} ms"
        );
    }

    #[test]
    fn cold_read_after_drop_caches_pays_disk() {
        let mut sim = Simulation::new(0);
        let fs = Pvfs::new(&sim.handle(), cfg());
        let client = fs.client(NodeId(0));
        sim.spawn("io", move |ctx| {
            client.create(ctx, "f");
            client.append(ctx, "f", DataSlice::zero(4 << 20), true);
            let t0 = ctx.now();
            client.read_all(ctx, "f").unwrap();
            let hot = (ctx.now() - t0).as_secs_f64();
            client.drop_caches();
            let t1 = ctx.now();
            client.read_all(ctx, "f").unwrap();
            let cold = (ctx.now() - t1).as_secs_f64();
            assert!(cold > 5.0 * hot, "hot {hot} vs cold {cold}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn network_transport_adds_wire_cost() {
        let mut sim = Simulation::new(0);
        let h = sim.handle();
        let net = Net::new(&h, ibfabric::NetConfig::gige()); // slow net to make it visible
        let fs = Pvfs::with_network(
            &h,
            cfg(),
            net.clone(),
            vec![NodeId(100), NodeId(101), NodeId(102), NodeId(103)],
        );
        let client = fs.client(NodeId(0));
        sim.spawn("io", move |ctx| {
            client.create(ctx, "f");
            let t0 = ctx.now();
            client.append(ctx, "f", DataSlice::zero(8 << 20), true);
            let dt = (ctx.now() - t0).as_secs_f64();
            // wire (110 MB/s) + disk (100 MB/s) per stripe, serialized:
            // ≈ 8.4 MB * (1/110e6 + 1/100e6) ≈ 0.16 s
            assert!((0.15..0.18).contains(&dt), "took {dt}");
        });
        sim.run().unwrap();
        assert!(net.rx_bytes(NodeId(100)) >= 2 << 20);
    }
}
