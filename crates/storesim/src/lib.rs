//! # storesim — storage models for checkpoint I/O
//!
//! The paper's Figure 7 story is entirely an I/O-path story: coordinated
//! checkpointing dumps every process image through a filesystem (local ext3
//! or PVFS) while job migration bypasses the storage subsystem with RDMA.
//! This crate provides the two filesystems:
//!
//! * [`LocalFs`] — one node's ext3-like filesystem over a [`Disk`] with a
//!   write-back page cache: buffered writes are absorbed at memory speed up
//!   to a dirty-page budget and throttle to spindle speed beyond it
//!   (Linux `dirty_ratio` behaviour); recently written files read back at
//!   memory speed until [`LocalFs::drop_caches`] (a job restart after a
//!   node failure starts cold).
//! * [`Pvfs`] — a PVFS2-like striped parallel filesystem: files are
//!   striped round-robin over N data servers; every stripe pays the
//!   network hop to its server plus that server's (seek-degraded) disk.
//!   Many concurrent client streams degrade each server's aggregate — the
//!   contention effect the paper measures as PVFS being ~3x slower than
//!   the sum of local disks.
//!
//! Both implement [`CkptStore`], the sink/source interface the BLCR layer
//! streams through.

mod disk;
mod fault;
mod localfs;
mod pvfs;

pub use disk::{Disk, DiskConfig};
pub use fault::{StoreFault, StoreFaultHook};
pub use localfs::LocalFs;
pub use pvfs::{Pvfs, PvfsConfig};

use ibfabric::{DataSlice, Rope};
use simkit::Ctx;

/// A filesystem that checkpoint streams can be written to and read from.
///
/// Paths are flat strings (checkpoint files are named
/// `ckpt.<jobid>.<rank>` in MVAPICH2 style by the callers).
pub trait CkptStore: Send + Sync {
    /// Create (or truncate) a file. Charges metadata latency.
    fn create(&self, ctx: &Ctx, path: &str);

    /// Append `data` to the file. `sync` selects durable (checkpoint) vs
    /// buffered (temporary restart file) semantics.
    fn append(&self, ctx: &Ctx, path: &str, data: DataSlice, sync: bool);

    /// Fallible append for fault-aware writers: implementations that carry
    /// a [`StoreFaultHook`] consult it and surface injected faults here.
    /// The default implementation delegates to [`CkptStore::append`] and
    /// never fails.
    fn try_append(
        &self,
        ctx: &Ctx,
        path: &str,
        data: DataSlice,
        sync: bool,
    ) -> Result<(), StoreFault> {
        self.append(ctx, path, data, sync);
        Ok(())
    }

    /// Read the whole file back, paying disk or cache cost as appropriate.
    /// Returns a [`Rope`]: the store keeps the slice table shared, so the
    /// read hands out views instead of copying descriptors.
    fn read_all(&self, ctx: &Ctx, path: &str) -> Option<Rope>;

    /// File length in bytes, if it exists.
    fn len(&self, path: &str) -> Option<u64>;

    /// Remove a file (no simulated cost).
    fn delete(&self, path: &str);

    /// Drop all clean page-cache state (simulates a node reboot or an
    /// elapsed eviction window before a cold restart).
    fn drop_caches(&self);

    /// Evict one file's page-cache state, leaving every other file's
    /// cache intact (`posix_fadvise(DONTNEED)` semantics). The pipelined
    /// restart path uses this to make each rank's restart read cold
    /// without flushing images still being staged. The default
    /// implementation falls back to [`CkptStore::drop_caches`].
    fn evict(&self, path: &str) {
        let _ = path;
        self.drop_caches();
    }

    /// Total bytes ever written through this store (for Table I style
    /// accounting).
    fn bytes_written(&self) -> u64;

    /// Total bytes ever read through this store.
    fn bytes_read(&self) -> u64;
}
