//! The pre-copy equivalence oracle: for random write workloads, random
//! re-chunking, and random fault plans, the image assembled from
//! round 0 + delta rounds + cutover residual is byte-for-byte identical
//! to a stop-and-copy image captured at cutover time.

use blcrsim::{parse_stream, serialize_image, ProcessImage, Segment, SegmentKind, SliceCursor};
use bytes::Bytes;
use ibfabric::DataSlice;
use livemig::delta;
use livemig::{DirtyTracker, ImageAccumulator};
use proptest::prelude::*;
use std::sync::Arc;

const PAGE: u64 = 32;

/// A running "process": paged segments under dirty tracking.
struct Proc {
    segments: Vec<Segment>,
    tracker: DirtyTracker,
    iter: u32,
}

impl Proc {
    fn new(seg_pages: &[u64], partial_tail: bool) -> Self {
        let segments: Vec<Segment> = seg_pages
            .iter()
            .enumerate()
            .map(|(i, &np)| {
                let mut len = np * PAGE;
                if partial_tail {
                    len -= PAGE / 2;
                }
                Segment {
                    kind: if i == 0 {
                        SegmentKind::Stack
                    } else {
                        SegmentKind::Heap
                    },
                    data: DataSlice::paged(Arc::new(vec![i as u64 + 1; np as usize]), PAGE, len),
                }
            })
            .collect();
        let lens: Vec<u64> = segments.iter().map(|s| s.data.len).collect();
        Proc {
            segments,
            tracker: DirtyTracker::new(PAGE, &lens),
            iter: 0,
        }
    }

    /// One application write burst: reseed pages, then mark them dirty.
    fn write(&mut self, seg: usize, page: u64, stamp: u64) {
        let seg = seg % self.segments.len();
        let data = &mut self.segments[seg].data;
        let npages = data.len.div_ceil(PAGE);
        let page = page % npages;
        if let ibfabric::DataSrc::Paged { seeds, .. } = &mut data.src {
            Arc::make_mut(seeds)[page as usize] = stamp;
        } else {
            unreachable!("segments are paged");
        }
        self.tracker.mark_pages(seg, &[page]);
        self.iter += 1;
    }

    fn app_state(&self) -> Bytes {
        Bytes::copy_from_slice(&self.iter.to_le_bytes())
    }

    /// What classic stop-and-copy would capture right now.
    fn full_image(&self) -> ProcessImage {
        ProcessImage {
            pid: 7,
            app_state: self.app_state(),
            segments: self.segments.clone(),
        }
    }
}

/// Push an image through serialize → random re-chunk → parse, as the RDMA
/// buffer pool does between source and target.
fn over_the_wire(img: &ProcessImage, chunk: u64) -> ProcessImage {
    let mut cur = SliceCursor::new(serialize_image(img));
    let mut rechunked = Vec::new();
    while cur.remaining() > 0 {
        let n = cur.remaining().min(chunk);
        rechunked.extend(cur.take(n).unwrap());
    }
    parse_stream(rechunked).unwrap()
}

fn materialize(img: &ProcessImage) -> (Bytes, Vec<(SegmentKind, Vec<u8>)>) {
    (
        img.app_state.clone(),
        img.segments
            .iter()
            .map(|s| (s.kind, s.data.to_bytes().to_vec()))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn precopy_merge_equals_stop_and_copy(
        seg_pages in proptest::collection::vec(1u64..12, 1..4),
        partial_tail in any::<bool>(),
        // write bursts per delta round: (seg, page, stamp)
        rounds in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0u64..32, any::<u64>()), 0..24),
            1..5,
        ),
        // writes landing between the last round and the cutover capture
        residual in proptest::collection::vec((0usize..4, 0u64..32, any::<u64>()), 0..12),
        chunk in 1u64..4096,
        // fault plan: Some(r) aborts delta round r mid-transfer and falls
        // back to classic stop-and-copy
        abort_round in prop_oneof![Just(None), (0usize..5).prop_map(Some)],
    ) {
        let mut p = Proc::new(&seg_pages, partial_tail);
        let mut acc = ImageAccumulator::new();

        // Round 0: full image streamed while the process keeps running.
        acc.seed_full(over_the_wire(&p.full_image(), chunk));
        p.tracker.take(); // round 0 content is the epoch-0 snapshot

        let mut fell_back = false;
        for (rno, writes) in rounds.iter().enumerate() {
            // application runs during the previous round's transfer
            for &(s, pg, stamp) in writes {
                p.write(s, pg, stamp);
            }
            if abort_round == Some(rno) {
                // CQ error mid-round: the round's pages were consumed from
                // the tracker but never landed — abandoning pre-copy and
                // falling back to a full copy is what keeps the
                // no-lost-dirty-segment guarantee.
                let _lost = p.tracker.take();
                fell_back = true;
                break;
            }
            let snap = p.tracker.take();
            let d_img = delta::encode(7, &p.app_state(), &p.segments, &snap, rno as u32 + 1);
            let d = delta::decode(&over_the_wire(&d_img, chunk)).unwrap().unwrap();
            prop_assert_eq!(d.pid, 7);
            acc.apply(&d).unwrap();
        }

        // writes racing the cutover decision
        for &(s, pg, stamp) in &residual {
            p.write(s, pg, stamp);
        }

        // Cutover (or fallback): the job is now suspended; capture is
        // stable. The oracle: what the target restarts must equal this.
        let stop_copy = p.full_image();
        let merged = if fell_back {
            over_the_wire(&stop_copy, chunk)
        } else {
            let snap = p.tracker.take();
            let d_img = delta::encode(7, &p.app_state(), &p.segments, &snap, 99);
            let d = delta::decode(&over_the_wire(&d_img, chunk)).unwrap().unwrap();
            acc.apply(&d).unwrap();
            acc.into_image().unwrap()
        };

        prop_assert_eq!(merged.checksum(), stop_copy.checksum());
        let (ma, ms) = materialize(&merged);
        let (sa, ss) = materialize(&stop_copy);
        prop_assert_eq!(ma, sa);
        prop_assert_eq!(ms.len(), ss.len());
        for ((mk, mb), (sk, sb)) in ms.iter().zip(ss.iter()) {
            prop_assert_eq!(mk, sk);
            prop_assert_eq!(mb, sb, "segment bytes must match exactly");
        }
    }
}
