//! Convergence control: when to stop iterating and cut over (short
//! stop-and-copy of the residual), and when to give up and fall back to a
//! classic full stop-and-copy.

use std::time::Duration;

/// What one pre-copy round did, as seen by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// Round number (0 = full-image round).
    pub round: u32,
    /// Stream bytes moved this round.
    pub bytes: u64,
    /// Dirty pages moved this round (0 for round 0).
    pub pages: u64,
    /// Wall time the round took.
    pub duration: Duration,
    /// Bytes dirtied *during* this round — the size of the next round
    /// (or of the cutover residual).
    pub dirty_bytes_pending: u64,
}

impl RoundReport {
    /// Observed dirty rate over this round, bytes/second.
    pub fn dirty_rate(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return self.dirty_bytes_pending as f64;
        }
        self.dirty_bytes_pending as f64 / secs
    }
}

/// The controller's verdict after a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run another delta round.
    Continue,
    /// Converged: suspend the job and stop-and-copy only the residual.
    CutOver,
    /// Not converging: abandon pre-copy state, classic full stop-and-copy.
    Fallback,
}

/// A pluggable convergence policy, consulted once per completed round.
pub trait ConvergencePolicy: Send {
    /// Policy name for traces and reports.
    fn name(&self) -> &'static str;

    /// Verdict for the round just finished.
    fn decide(&mut self, r: &RoundReport) -> Decision;
}

/// Cut over after a fixed number of rounds (or earlier if a round leaves
/// nothing dirty). Never falls back — the residual is whatever it is.
#[derive(Debug, Clone, Copy)]
pub struct BoundedRounds {
    /// Maximum delta rounds before forced cutover.
    pub max_rounds: u32,
}

impl ConvergencePolicy for BoundedRounds {
    fn name(&self) -> &'static str {
        "bounded_rounds"
    }

    fn decide(&mut self, r: &RoundReport) -> Decision {
        if r.dirty_bytes_pending == 0 || r.round + 1 >= self.max_rounds {
            Decision::CutOver
        } else {
            Decision::Continue
        }
    }
}

/// Compare the dirty rate against the transfer bandwidth: pre-copy only
/// converges while the lanes outrun the application's writes. Cuts over
/// once the residual is draining fast; falls back when the dirty rate
/// stays above `ratio × lane_bw`.
#[derive(Debug, Clone, Copy)]
pub struct DirtyRateRatio {
    /// Observed/estimated aggregate lane bandwidth, bytes/second.
    pub lane_bw: f64,
    /// Dirty-rate fraction of `lane_bw` above which rounds cannot shrink.
    pub ratio: f64,
    /// Round budget before the verdict is forced either way.
    pub max_rounds: u32,
}

impl ConvergencePolicy for DirtyRateRatio {
    fn name(&self) -> &'static str {
        "dirty_rate_ratio"
    }

    fn decide(&mut self, r: &RoundReport) -> Decision {
        let diverging = r.dirty_rate() >= self.ratio * self.lane_bw;
        if r.round + 1 >= self.max_rounds || (r.round >= 1 && diverging) {
            if diverging {
                Decision::Fallback
            } else {
                Decision::CutOver
            }
        } else if r.dirty_bytes_pending == 0 {
            Decision::CutOver
        } else {
            Decision::Continue
        }
    }
}

/// Cut over as soon as the projected residual stop-and-copy fits a
/// downtime budget; fall back if the round budget runs out while the
/// projection is still more than double the budget.
#[derive(Debug, Clone, Copy)]
pub struct DowntimeBudget {
    /// Barrier-held time the residual round may cost.
    pub budget: Duration,
    /// Observed/estimated aggregate lane bandwidth, bytes/second.
    pub lane_bw: f64,
    /// Fixed per-cutover cost (suspend + resume floor) added on top of
    /// the transfer projection.
    pub fixed: Duration,
    /// Round budget before the verdict is forced either way.
    pub max_rounds: u32,
}

impl DowntimeBudget {
    /// Projected barrier-held cost of cutting over now.
    pub fn projected_stall(&self, pending: u64) -> Duration {
        self.fixed + Duration::from_secs_f64(pending as f64 / self.lane_bw.max(1.0))
    }
}

impl ConvergencePolicy for DowntimeBudget {
    fn name(&self) -> &'static str {
        "downtime_budget"
    }

    fn decide(&mut self, r: &RoundReport) -> Decision {
        let projected = self.projected_stall(r.dirty_bytes_pending);
        if projected <= self.budget {
            Decision::CutOver
        } else if r.round + 1 >= self.max_rounds {
            if projected <= self.budget * 2 {
                Decision::CutOver
            } else {
                Decision::Fallback
            }
        } else {
            Decision::Continue
        }
    }
}

/// Which [`ConvergencePolicy`] a live migration runs under (the `Copy`
/// handle that rides `PoolConfig` / `MigrationTuning`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivePolicyKind {
    /// [`BoundedRounds`].
    BoundedRounds,
    /// [`DirtyRateRatio`].
    DirtyRateRatio,
    /// [`DowntimeBudget`].
    DowntimeBudget,
}

/// Live-migration tunables, embeddable in plain-old-data configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Convergence policy to instantiate.
    pub policy: LivePolicyKind,
    /// Round budget (including round 0).
    pub max_rounds: u32,
    /// Dirty-tracking page size, bytes.
    pub page: u64,
    /// Downtime budget for [`LivePolicyKind::DowntimeBudget`], ms.
    pub downtime_budget_ms: u32,
    /// Dirty-rate threshold for [`LivePolicyKind::DirtyRateRatio`], in
    /// percent of lane bandwidth.
    pub dirty_ratio_pct: u32,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            policy: LivePolicyKind::DowntimeBudget,
            max_rounds: 5,
            page: 64 << 10,
            downtime_budget_ms: 400,
            dirty_ratio_pct: 50,
        }
    }
}

impl LiveConfig {
    /// Instantiate the configured policy against an estimated aggregate
    /// lane bandwidth and fixed cutover floor.
    pub fn controller(&self, lane_bw: f64, fixed: Duration) -> Box<dyn ConvergencePolicy> {
        match self.policy {
            LivePolicyKind::BoundedRounds => Box::new(BoundedRounds {
                max_rounds: self.max_rounds,
            }),
            LivePolicyKind::DirtyRateRatio => Box::new(DirtyRateRatio {
                lane_bw,
                ratio: self.dirty_ratio_pct as f64 / 100.0,
                max_rounds: self.max_rounds,
            }),
            LivePolicyKind::DowntimeBudget => Box::new(DowntimeBudget {
                budget: Duration::from_millis(self.downtime_budget_ms as u64),
                lane_bw,
                fixed,
                max_rounds: self.max_rounds,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(round: u32, pending: u64, secs: f64) -> RoundReport {
        RoundReport {
            round,
            bytes: 1000,
            pages: 10,
            duration: Duration::from_secs_f64(secs),
            dirty_bytes_pending: pending,
        }
    }

    #[test]
    fn bounded_rounds_cuts_at_cap_or_when_clean() {
        let mut p = BoundedRounds { max_rounds: 3 };
        assert_eq!(p.decide(&report(0, 500, 1.0)), Decision::Continue);
        assert_eq!(p.decide(&report(1, 500, 1.0)), Decision::Continue);
        assert_eq!(p.decide(&report(2, 500, 1.0)), Decision::CutOver);
        assert_eq!(p.decide(&report(0, 0, 1.0)), Decision::CutOver);
    }

    #[test]
    fn dirty_ratio_falls_back_when_writes_outrun_lanes() {
        let mut p = DirtyRateRatio {
            lane_bw: 1000.0,
            ratio: 0.5,
            max_rounds: 5,
        };
        // round 0 always gets a delta round to measure against
        assert_eq!(p.decide(&report(0, 2000, 1.0)), Decision::Continue);
        // 2000 B/s dirty vs 500 B/s threshold → diverging
        assert_eq!(p.decide(&report(1, 2000, 1.0)), Decision::Fallback);
        // converging run reaches the cap and cuts over
        let mut p = DirtyRateRatio {
            lane_bw: 1000.0,
            ratio: 0.5,
            max_rounds: 3,
        };
        assert_eq!(p.decide(&report(0, 300, 1.0)), Decision::Continue);
        assert_eq!(p.decide(&report(1, 100, 1.0)), Decision::Continue);
        assert_eq!(p.decide(&report(2, 40, 1.0)), Decision::CutOver);
    }

    #[test]
    fn downtime_budget_projects_residual_stall() {
        let mut p = DowntimeBudget {
            budget: Duration::from_millis(100),
            lane_bw: 1_000_000.0,
            fixed: Duration::from_millis(20),
            max_rounds: 3,
        };
        // 1 MB residual → 1.02 s projected ≫ budget
        assert_eq!(p.decide(&report(0, 1_000_000, 0.5)), Decision::Continue);
        // 50 kB residual → 70 ms ≤ budget
        assert_eq!(p.decide(&report(1, 50_000, 0.1)), Decision::CutOver);
        // cap reached with projection > 2× budget → fallback
        assert_eq!(p.decide(&report(2, 10_000_000, 0.1)), Decision::Fallback);
        // cap reached but within 2× budget → cut over anyway
        assert_eq!(p.decide(&report(2, 150_000, 0.1)), Decision::CutOver);
    }

    #[test]
    fn config_instantiates_each_policy() {
        for kind in [
            LivePolicyKind::BoundedRounds,
            LivePolicyKind::DirtyRateRatio,
            LivePolicyKind::DowntimeBudget,
        ] {
            let cfg = LiveConfig {
                policy: kind,
                ..LiveConfig::default()
            };
            let mut c = cfg.controller(1e9, Duration::from_millis(50));
            assert!(!c.name().is_empty());
            let _ = c.decide(&report(0, 0, 0.1));
        }
    }
}
