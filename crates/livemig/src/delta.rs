//! Delta images: the wire format of pre-copy rounds 1..N, and the
//! target-side accumulator that merges rounds back into a full image.
//!
//! A delta rides inside an ordinary [`ProcessImage`] so the existing
//! serialize → chunk → RDMA-pull → reassemble pipeline carries it
//! unchanged: the image's `app_state` holds a self-describing header
//! (magic, round, the real application state, and a run table), and each
//! dirty page run becomes one segment. [`decode`] recognises the header;
//! a stream without it is a full image.

use crate::dirty::DirtySnapshot;
use blcrsim::{ProcessImage, Segment};
use bytes::Bytes;
use ibfabric::{DataSlice, DataSrc};
use std::fmt;
use std::sync::Arc;

const DELTA_MAGIC: u64 = 0x4c49_5645_4d49_4731; // "LIVEMIG1"

/// Why a delta could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Header declared structure the image does not have.
    BadHeader,
    /// Run table and segment list disagree (count or lengths).
    RunMismatch,
    /// A run falls outside its base segment.
    OutOfRange,
    /// [`ImageAccumulator::apply`] before a round-0 base image.
    NoBase,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BadHeader => write!(f, "malformed delta header"),
            DeltaError::RunMismatch => write!(f, "delta run table mismatches segments"),
            DeltaError::OutOfRange => write!(f, "delta run outside base segment"),
            DeltaError::NoBase => write!(f, "delta applied before round-0 base image"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// One dirty run carried by a delta.
#[derive(Debug, Clone)]
pub struct DeltaRun {
    /// Index of the segment this run patches.
    pub seg: usize,
    /// Byte offset of the run within that segment.
    pub off: u64,
    /// The run's content.
    pub data: DataSlice,
}

/// A decoded delta image.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The rank (image pid) this delta belongs to.
    pub pid: u64,
    /// Pre-copy round that produced it (1-based; 0 is the full image).
    pub round: u32,
    /// Page size the dirty bitmap used.
    pub page: u64,
    /// The real application state at capture time.
    pub app_state: Bytes,
    /// Dirty runs, ascending by (seg, off).
    pub runs: Vec<DeltaRun>,
}

impl Delta {
    /// Total payload bytes across runs.
    pub fn bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.data.len).sum()
    }
}

/// Encode the dirty runs of `snap` over `segments` as a delta image.
pub fn encode(
    pid: u64,
    app_state: &Bytes,
    segments: &[Segment],
    snap: &DirtySnapshot,
    round: u32,
) -> ProcessImage {
    let mut runs: Vec<(u32, u64, u64)> = Vec::new();
    let mut segs: Vec<Segment> = Vec::new();
    for sr in &snap.segs {
        let base = &segments[sr.seg];
        for r in &sr.runs {
            let off = r.first_page * snap.page;
            let len = (r.pages * snap.page).min(base.data.len - off);
            runs.push((sr.seg as u32, off, len));
            segs.push(Segment {
                kind: base.kind,
                data: base.data.slice(off, len),
            });
        }
    }
    let mut hdr = Vec::with_capacity(28 + app_state.len() + 20 * runs.len());
    hdr.extend_from_slice(&DELTA_MAGIC.to_le_bytes());
    hdr.extend_from_slice(&round.to_le_bytes());
    hdr.extend_from_slice(&snap.page.to_le_bytes());
    hdr.extend_from_slice(&(app_state.len() as u32).to_le_bytes());
    hdr.extend_from_slice(app_state);
    hdr.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for (seg, off, len) in &runs {
        hdr.extend_from_slice(&seg.to_le_bytes());
        hdr.extend_from_slice(&off.to_le_bytes());
        hdr.extend_from_slice(&len.to_le_bytes());
    }
    ProcessImage {
        pid,
        app_state: Bytes::from(hdr),
        segments: segs,
    }
}

fn rd<const N: usize>(b: &[u8], at: &mut usize) -> Option<[u8; N]> {
    let out = b.get(*at..*at + N)?.try_into().ok()?;
    *at += N;
    Some(out)
}

/// Decode `img` as a delta. `Ok(None)` means "not a delta" — a plain full
/// image (round 0 or classic stop-and-copy).
pub fn decode(img: &ProcessImage) -> Result<Option<Delta>, DeltaError> {
    let b = img.app_state.as_ref();
    let mut at = 0usize;
    match rd::<8>(b, &mut at) {
        Some(m) if u64::from_le_bytes(m) == DELTA_MAGIC => {}
        _ => return Ok(None),
    }
    let round = u32::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?);
    let page = u64::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?);
    let app_len = u32::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?) as usize;
    let app_state = img
        .app_state
        .get(at..at + app_len)
        .map(Bytes::copy_from_slice)
        .ok_or(DeltaError::BadHeader)?;
    at += app_len;
    let nruns = u32::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?) as usize;
    if nruns != img.segments.len() {
        return Err(DeltaError::RunMismatch);
    }
    let mut runs = Vec::with_capacity(nruns);
    for seg in &img.segments {
        let si = u32::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?) as usize;
        let off = u64::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?);
        let len = u64::from_le_bytes(rd(b, &mut at).ok_or(DeltaError::BadHeader)?);
        if len != seg.data.len {
            return Err(DeltaError::RunMismatch);
        }
        runs.push(DeltaRun {
            seg: si,
            off,
            data: seg.data.clone(),
        });
    }
    Ok(Some(Delta {
        pid: img.pid,
        round,
        page,
        app_state,
        runs,
    }))
}

/// Target-side merge state: round 0's full image plus every delta applied
/// so far. The merged image is kept restart-ready at all times.
#[derive(Default)]
pub struct ImageAccumulator {
    base: Option<ProcessImage>,
    rounds_applied: u32,
    bytes_applied: u64,
}

impl ImageAccumulator {
    /// Fresh accumulator with no base image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the round-0 full image.
    pub fn seed_full(&mut self, img: ProcessImage) {
        self.bytes_applied += img.memory_bytes();
        self.base = Some(img);
    }

    /// Whether a base image has been installed.
    pub fn has_base(&self) -> bool {
        self.base.is_some()
    }

    /// Delta rounds applied so far.
    pub fn rounds_applied(&self) -> u32 {
        self.rounds_applied
    }

    /// Total payload bytes absorbed (full image + deltas).
    pub fn bytes_applied(&self) -> u64 {
        self.bytes_applied
    }

    /// Patch the base image with one delta; returns the delta's byte size.
    pub fn apply(&mut self, d: &Delta) -> Result<u64, DeltaError> {
        let base = self.base.as_mut().ok_or(DeltaError::NoBase)?;
        for run in &d.runs {
            let seg = base
                .segments
                .get_mut(run.seg)
                .ok_or(DeltaError::OutOfRange)?;
            if run
                .off
                .checked_add(run.data.len)
                .is_none_or(|end| end > seg.data.len)
            {
                return Err(DeltaError::OutOfRange);
            }
            splice(&mut seg.data, run.off, &run.data);
        }
        base.app_state = d.app_state.clone();
        self.rounds_applied += 1;
        let n = d.bytes();
        self.bytes_applied += n;
        Ok(n)
    }

    /// The merged image so far.
    pub fn image(&self) -> Option<&ProcessImage> {
        self.base.as_ref()
    }

    /// Consume into the merged image.
    pub fn into_image(self) -> Option<ProcessImage> {
        self.base
    }
}

/// Overwrite `dst[off .. off+src.len]` with `src`'s content. Seed-grid
/// aligned paged data patches in O(pages); anything else falls back to
/// materialising the destination segment.
fn splice(dst: &mut DataSlice, off: u64, src: &DataSlice) {
    if off == 0 && src.len == dst.len {
        *dst = src.clone();
        return;
    }
    if let (
        DataSrc::Paged {
            seeds: dseeds,
            page: dp,
            start: 0,
        },
        DataSrc::Paged {
            seeds: sseeds,
            page: sp,
            start: s0,
        },
    ) = (&mut dst.src, &src.src)
    {
        let aligned = dp == sp && off.is_multiple_of(*dp) && s0.is_multiple_of(*sp);
        // A partial trailing page is only representable when the run ends
        // exactly at the destination's end.
        let whole_pages = src.len.is_multiple_of(*dp) || off + src.len == dst.len;
        if aligned && whole_pages {
            let page = *dp;
            let seeds = Arc::make_mut(dseeds);
            for k in 0..src.len.div_ceil(page) {
                seeds[(off / page + k) as usize] = sseeds[(s0 / page + k) as usize];
            }
            return;
        }
    }
    // General path: materialise (small segments / tests only).
    // jmlint: allow(hot_alloc) — documented fallback for unaligned runs
    let mut buf = dst.to_bytes().to_vec();
    let patch = src.to_bytes();
    buf[off as usize..(off + src.len) as usize].copy_from_slice(&patch);
    *dst = DataSlice::bytes(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::DirtyTracker;
    use blcrsim::{parse_stream, serialize_image, SegmentKind};

    fn paged_seg(kind: SegmentKind, seeds: Vec<u64>, page: u64, len: u64) -> Segment {
        Segment {
            kind,
            data: DataSlice::paged(Arc::new(seeds), page, len),
        }
    }

    #[test]
    fn delta_roundtrips_through_checkpoint_stream() {
        let segs = vec![paged_seg(SegmentKind::Heap, vec![5; 10], 16, 150)];
        let mut t = DirtyTracker::new(16, &[150]);
        t.mark_pages(0, &[2, 3, 9]);
        let img = encode(7, &Bytes::from(&b"it=9"[..]), &segs, &t.take(), 2);
        let back = parse_stream(serialize_image(&img)).unwrap();
        let d = decode(&back).unwrap().expect("is a delta");
        assert_eq!(d.pid, 7);
        assert_eq!(d.round, 2);
        assert_eq!(d.app_state.as_ref(), b"it=9");
        assert_eq!(d.runs.len(), 2);
        assert_eq!(
            (d.runs[0].seg, d.runs[0].off, d.runs[0].data.len),
            (0, 32, 32)
        );
        // last run covers the partial trailing page
        assert_eq!(
            (d.runs[1].seg, d.runs[1].off, d.runs[1].data.len),
            (0, 144, 6)
        );
        assert_eq!(d.bytes(), 38);
    }

    #[test]
    fn full_image_is_not_a_delta() {
        let img = ProcessImage::new(1, &b"plain"[..]);
        assert_eq!(decode(&img).unwrap().map(|d| d.round), None);
    }

    #[test]
    fn accumulator_merges_to_current_content() {
        let page = 16u64;
        let len = 150u64;
        let mut seeds = vec![1u64; 10];
        let base_img = ProcessImage {
            pid: 3,
            app_state: Bytes::from(&b"it=0"[..]),
            segments: vec![paged_seg(SegmentKind::Heap, seeds.clone(), page, len)],
        };
        let mut acc = ImageAccumulator::new();
        assert_eq!(
            acc.apply(&Delta {
                pid: 3,
                round: 1,
                page,
                app_state: Bytes::new(),
                runs: vec![]
            }),
            Err(DeltaError::NoBase)
        );
        acc.seed_full(base_img);

        // source mutates pages 4 and 9 (partial), then 4 again
        let mut t = DirtyTracker::new(page, &[len]);
        for (p, s) in [(4u64, 77u64), (9, 88), (4, 99)] {
            seeds[p as usize] = s;
            t.mark_pages(0, &[p]);
        }
        let cur = vec![paged_seg(SegmentKind::Heap, seeds.clone(), page, len)];
        let delta_img = encode(3, &Bytes::from(&b"it=5"[..]), &cur, &t.take(), 1);
        let d = decode(&delta_img).unwrap().unwrap();
        acc.apply(&d).unwrap();

        let merged = acc.into_image().unwrap();
        let want = ProcessImage {
            pid: 3,
            app_state: Bytes::from(&b"it=5"[..]),
            segments: cur,
        };
        assert_eq!(merged, want, "paged fast path preserves representation");
        assert_eq!(merged.checksum(), want.checksum());
    }

    #[test]
    fn splice_fallback_materialises_unaligned_runs() {
        let mut dst = DataSlice::pattern(9, 0, 64);
        let patch = DataSlice::bytes(vec![0xAA; 8]);
        let before = dst.to_bytes().to_vec();
        splice(&mut dst, 5, &patch);
        let after = dst.to_bytes();
        assert_eq!(&after[5..13], &[0xAA; 8]);
        assert_eq!(&after[..5], &before[..5]);
        assert_eq!(&after[13..], &before[13..]);
    }
}
