//! # livemig — iterative pre-copy live migration
//!
//! The paper's four-phase protocol is pure stop-and-copy: the whole job
//! sits in the migration barrier for the entire image transfer, so
//! downtime scales with image size. This crate supplies the three pieces
//! that turn it into a *live* migration with bounded downtime:
//!
//! * [`DirtyTracker`] — per-segment dirty-page bitmaps with epoch
//!   snapshots ([`DirtyTracker::take`]), armed over a running rank's
//!   memory by the MPI layer's write interception;
//! * [`delta`] — the wire format of rounds 1..N (dirty page runs packed
//!   into an ordinary checkpoint image so the RDMA buffer-pool pipeline
//!   carries them unchanged) and the target-side [`ImageAccumulator`]
//!   that keeps a restart-ready merged image at all times;
//! * [`ConvergencePolicy`] — the controller deciding after each round
//!   whether to [`Decision::Continue`], [`Decision::CutOver`] to a short
//!   stop-and-copy of the residual, or [`Decision::Fallback`] to classic
//!   stop-and-copy when the dirty rate never converges.
//!
//! The protocol itself (round scheduling, WAL records, FTB messages,
//! cutover into Phase 1–4) lives in `jobmig-core`; this crate is the pure
//! data-plane and policy layer, testable without a simulation.

pub mod delta;
mod dirty;
mod policy;

pub use delta::{Delta, DeltaError, DeltaRun, ImageAccumulator};
pub use dirty::{DirtySnapshot, DirtyTracker, PageRun, SegRuns};
pub use policy::{
    BoundedRounds, ConvergencePolicy, Decision, DirtyRateRatio, DowntimeBudget, LiveConfig,
    LivePolicyKind, RoundReport,
};
