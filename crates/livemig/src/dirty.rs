//! Per-segment dirty-page bitmaps with epoch snapshots.
//!
//! The tracker is armed over a process's current segment layout at the
//! start of a pre-copy cycle; every application write marks the covered
//! pages. [`DirtyTracker::take`] snapshots and clears the bitmaps — the
//! epoch boundary between two pre-copy rounds. Write ordering is
//! content-first-then-mark: a capture racing a write at worst re-sends a
//! clean page (idempotent), never loses a dirty one.

/// A run of consecutive dirty pages within one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRun {
    /// First dirty page index.
    pub first_page: u64,
    /// Number of consecutive dirty pages.
    pub pages: u64,
}

/// The dirty runs of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegRuns {
    /// Segment index within the process image.
    pub seg: usize,
    /// Maximal runs of consecutive dirty pages, in ascending order.
    pub runs: Vec<PageRun>,
}

/// One epoch's dirty set: everything written since the previous
/// [`DirtyTracker::take`] (or since arming).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirtySnapshot {
    /// Page size the bitmaps were built over.
    pub page: u64,
    /// Per-segment dirty runs (segments with no dirty pages are omitted).
    pub segs: Vec<SegRuns>,
}

impl DirtySnapshot {
    /// Whether nothing was dirtied this epoch.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Total dirty pages.
    pub fn pages(&self) -> u64 {
        self.segs
            .iter()
            .flat_map(|s| s.runs.iter())
            .map(|r| r.pages)
            .sum()
    }
}

struct SegBits {
    len: u64,
    bits: Vec<u64>,
}

impl SegBits {
    fn npages(&self, page: u64) -> u64 {
        self.len.div_ceil(page)
    }
}

/// Per-segment dirty-page bitmaps over one process's memory layout.
pub struct DirtyTracker {
    page: u64,
    segs: Vec<SegBits>,
}

impl DirtyTracker {
    /// Arm tracking over segments of the given byte lengths, all-clean.
    pub fn new(page: u64, seg_lens: &[u64]) -> Self {
        assert!(page > 0, "dirty tracking needs page > 0");
        DirtyTracker {
            page,
            segs: seg_lens
                .iter()
                .map(|&len| SegBits {
                    len,
                    bits: vec![0u64; (len.div_ceil(page) as usize).div_ceil(64)],
                })
                .collect(),
        }
    }

    /// The page size the bitmaps use.
    pub fn page_size(&self) -> u64 {
        self.page
    }

    /// Mark whole pages of segment `seg` dirty.
    pub fn mark_pages(&mut self, seg: usize, pages: &[u64]) {
        let s = &mut self.segs[seg];
        let np = s.len.div_ceil(self.page);
        for &p in pages {
            assert!(p < np, "page {p} out of range 0..{np}");
            s.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// Mark the pages covering byte range `[off, off+len)` of `seg` dirty.
    pub fn mark_range(&mut self, seg: usize, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = off / self.page;
        let last = (off + len - 1) / self.page;
        let s = &mut self.segs[seg];
        for p in first..=last {
            s.bits[(p / 64) as usize] |= 1u64 << (p % 64);
        }
    }

    /// Total dirty pages across all segments.
    pub fn dirty_pages(&self) -> u64 {
        self.segs
            .iter()
            .map(|s| s.bits.iter().map(|w| w.count_ones() as u64).sum::<u64>())
            .sum()
    }

    /// Total dirty bytes (partial last pages counted by their real size).
    pub fn dirty_bytes(&self) -> u64 {
        let mut total = 0;
        for s in &self.segs {
            let np = s.npages(self.page);
            for p in 0..np {
                if s.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0 {
                    total += (s.len - p * self.page).min(self.page);
                }
            }
        }
        total
    }

    /// Snapshot and clear: returns the dirty runs of this epoch and starts
    /// the next one.
    pub fn take(&mut self) -> DirtySnapshot {
        let mut segs = Vec::new();
        for (i, s) in self.segs.iter_mut().enumerate() {
            let np = s.npages(self.page);
            let mut runs: Vec<PageRun> = Vec::new();
            for p in 0..np {
                if s.bits[(p / 64) as usize] & (1u64 << (p % 64)) != 0 {
                    match runs.last_mut() {
                        Some(r) if r.first_page + r.pages == p => r.pages += 1,
                        _ => runs.push(PageRun {
                            first_page: p,
                            pages: 1,
                        }),
                    }
                }
            }
            s.bits.fill(0);
            if !runs.is_empty() {
                segs.push(SegRuns { seg: i, runs });
            }
        }
        DirtySnapshot {
            page: self.page,
            segs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_coalesce_and_clear() {
        let mut t = DirtyTracker::new(16, &[100, 40]);
        t.mark_pages(0, &[1, 2, 3, 6]);
        t.mark_range(1, 17, 1); // page 1 of seg 1
        assert_eq!(t.dirty_pages(), 5);
        let snap = t.take();
        assert_eq!(snap.pages(), 5);
        assert_eq!(
            snap.segs[0].runs,
            vec![
                PageRun {
                    first_page: 1,
                    pages: 3
                },
                PageRun {
                    first_page: 6,
                    pages: 1
                }
            ]
        );
        assert_eq!(snap.segs[1].seg, 1);
        assert!(t.take().is_empty(), "take clears");
    }

    #[test]
    fn partial_last_page_byte_accounting() {
        let mut t = DirtyTracker::new(16, &[40]); // pages: 16,16,8
        t.mark_pages(0, &[2]);
        assert_eq!(t.dirty_bytes(), 8);
        t.mark_range(0, 0, 33); // all three pages
        assert_eq!(t.dirty_bytes(), 40);
    }

    #[test]
    fn range_marks_covering_pages_only() {
        let mut t = DirtyTracker::new(16, &[160]);
        t.mark_range(0, 31, 2); // straddles pages 1 and 2
        let snap = t.take();
        assert_eq!(
            snap.segs[0].runs,
            vec![PageRun {
                first_page: 1,
                pages: 2
            }]
        );
    }
}
