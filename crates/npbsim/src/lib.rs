//! # npbsim — synthetic NAS Parallel Benchmark workloads
//!
//! Models the three NPB 3.2 applications the paper evaluates (LU, BT, SP,
//! class C) as iterative bulk-synchronous codes over [`mpisim`]: per
//! iteration a compute phase, a red/black-ordered ring neighbour exchange,
//! and a periodic allreduce; per-rank memory footprints are solved from
//! the paper's own Table I (which is internally consistent: the migration
//! column is 8 processes' images, the CR column 64).
//!
//! The *logical* state of a rank is just its iteration counter — which is
//! exactly what survives a BLCR restore in this simulation (plus the
//! pattern-backed heap segments standing in for the solver arrays).
//!
//! Calibration notes (see `jobmig-core::calib` for the cluster side):
//! iteration counts are the NPB defaults (LU 250, BT 200, SP 400); base
//! runtimes are typical for 64 ranks of class C on 2.33 GHz Harpertown
//! Xeons and were chosen so that one migration's overhead lands in the
//! paper's 3.9–6.7 % band when the migration cycle matches Figure 4.

use blcrsim::{Segment, SegmentKind};
use bytes::Bytes;
use ibfabric::DataSlice;
use mpisim::MpiRank;
use simkit::Ctx;
use std::sync::Arc;
use std::time::Duration;

/// Page size of the paged heap segments (also the live-migration
/// dirty-tracking granularity).
pub const PAGE: u64 = 64 << 10;

/// Index of the heap segment in [`Workload::segments`]'s layout.
pub const HEAP_SEG: usize = 1;

/// Which NPB application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbApp {
    /// Lower-Upper Gauss-Seidel solver.
    Lu,
    /// Block Tri-diagonal solver.
    Bt,
    /// Scalar Penta-diagonal solver.
    Sp,
}

impl NpbApp {
    /// Benchmark name as NPB prints it.
    pub fn name(&self) -> &'static str {
        match self {
            NpbApp::Lu => "LU",
            NpbApp::Bt => "BT",
            NpbApp::Sp => "SP",
        }
    }
}

/// NPB problem class (only C is used in the paper; A/B provided for
/// smaller tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbClass {
    /// Small.
    A,
    /// Medium.
    B,
    /// Large (the paper's evaluations).
    C,
}

impl NpbClass {
    /// Suffix as NPB prints it.
    pub fn name(&self) -> &'static str {
        match self {
            NpbClass::A => "A",
            NpbClass::B => "B",
            NpbClass::C => "C",
        }
    }

    /// Data scale factor relative to class C.
    fn scale(&self) -> f64 {
        match self {
            NpbClass::A => 1.0 / 16.0,
            NpbClass::B => 1.0 / 4.0,
            NpbClass::C => 1.0,
        }
    }
}

/// A fully-parameterised workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application.
    pub app: NpbApp,
    /// Problem class.
    pub class: NpbClass,
    /// Number of MPI ranks.
    pub np: u32,
    /// Iteration (time-step) count.
    pub iters: u32,
    /// Total application-owned data across all ranks, bytes.
    pub aggregate_data: u64,
    /// Fixed per-process overhead (runtime, buffers), bytes.
    pub per_proc_overhead: u64,
    /// Base (migration-free) runtime for this `np`.
    pub base_runtime: Duration,
    /// Neighbour-exchange payload per direction per iteration, bytes.
    pub exchange_bytes: u64,
    /// Allreduce period in iterations (convergence checks).
    pub allreduce_every: u32,
}

impl Workload {
    /// Build the standard model for `app.class.np`.
    pub fn new(app: NpbApp, class: NpbClass, np: u32) -> Self {
        assert!(np >= 2 && np.is_power_of_two(), "NPB wants 2^k ranks >= 2");
        let s = class.scale();
        // Aggregate data solved from the paper's Table I at np=64 with a
        // 10 MB per-process runtime overhead:
        //   LU.C 21.3 MB/proc, BT.C 38.6 MB/proc, SP.C 37.9 MB/proc.
        let (aggregate_c, iters, base64_secs, exch) = match app {
            NpbApp::Lu => (723_000_000u64, 250, 160.0, 40 << 10),
            NpbApp::Bt => (1_830_000_000, 200, 160.0, 160 << 10),
            NpbApp::Sp => (1_785_000_000, 400, 215.0, 120 << 10),
        };
        // Strong scaling from the 64-rank baseline.
        let base = base64_secs * 64.0 / np as f64;
        Workload {
            app,
            class,
            np,
            iters,
            aggregate_data: (aggregate_c as f64 * s) as u64,
            per_proc_overhead: 10_000_000,
            base_runtime: Duration::from_secs_f64(base),
            exchange_bytes: (exch as f64 * s).max(1024.0) as u64,
            allreduce_every: 5,
        }
    }

    /// Canonical benchmark name, e.g. `LU.C.64`.
    pub fn name(&self) -> String {
        format!("{}.{}.{}", self.app.name(), self.class.name(), self.np)
    }

    /// Checkpointable image size of one rank, bytes.
    pub fn per_proc_image(&self) -> u64 {
        self.aggregate_data / self.np as u64 + self.per_proc_overhead
    }

    /// Compute time per iteration.
    pub fn per_iter_compute(&self) -> Duration {
        Duration::from_secs_f64(self.base_runtime.as_secs_f64() / self.iters as f64)
    }

    /// The memory segments a rank of this workload registers (heap solver
    /// arrays + small stack), with content seeded per `(job_seed, rank)`.
    ///
    /// The heap is a [`PAGE`]-grained page grid (initially every page
    /// carries the rank seed, so content matches the old flat pattern);
    /// the solver's per-iteration writes reseed individual pages, which is
    /// what live migration's dirty tracking observes.
    pub fn segments(&self, job_seed: u64, rank: u32) -> Vec<Segment> {
        let seed = job_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(rank as u64);
        const STACK: u64 = 192;
        let heap = self.per_proc_image() - STACK;
        vec![
            Segment {
                kind: SegmentKind::Stack,
                data: DataSlice::pattern(seed ^ 0x5741, 0, STACK),
            },
            Segment {
                kind: SegmentKind::Heap,
                data: DataSlice::paged(
                    Arc::new(vec![seed; heap.div_ceil(PAGE) as usize]),
                    PAGE,
                    heap,
                ),
            },
        ]
    }

    /// Heap pages one iteration's solver sweep rewrites (a small, fixed
    /// working-set fraction — the knob behind pre-copy convergence).
    pub fn dirty_pages_per_iter(&self) -> u64 {
        let npages = (self.per_proc_image() - 192).div_ceil(PAGE);
        (npages / 48).max(1)
    }

    /// The deterministic page set iteration `it` rewrites. A pure function
    /// of the iteration number, so replaying an interrupted iteration
    /// after restart touches identical pages.
    pub fn write_set(&self, it: u32) -> Vec<u64> {
        let npages = (self.per_proc_image() - 192).div_ceil(PAGE);
        let w = self.dirty_pages_per_iter();
        (0..w)
            .map(|k| (it as u64 * w + k * 131).wrapping_mul(0x9E37_79B9) % npages)
            .collect()
    }
}

/// Application state carried across checkpoints: the next iteration to
/// execute, little-endian encoded.
pub fn encode_state(next_iter: u32) -> Bytes {
    Bytes::copy_from_slice(&next_iter.to_le_bytes())
}

/// Decode the iteration counter (0 for a fresh start / empty state).
pub fn decode_state(state: &Bytes) -> u32 {
    if state.len() >= 4 {
        u32::from_le_bytes(state[..4].try_into().unwrap())
    } else {
        0
    }
}

/// Run the workload body on an attached rank handle until completion.
///
/// This function is re-entrant across migrations: it reads the restored
/// iteration counter from the rank's application state, registers its
/// memory segments if absent, and relies on `mpisim`'s replay-safe ops for
/// the interrupted iteration.
pub fn run_rank(ctx: &Ctx, rank: &mut MpiRank, w: &Workload, job_seed: u64) {
    let start_iter = decode_state(&rank.app_state());
    if start_iter == 0 {
        rank.set_segments(w.segments(job_seed, rank.rank()));
    }
    let np = w.np;
    let r = rank.rank();
    let right = (r + 1) % np;
    let left = (r + np - 1) % np;
    let per_iter = w.per_iter_compute();
    for it in start_iter..w.iters {
        rank.compute(ctx, per_iter);
        // The sweep's array updates: reseed this iteration's working-set
        // pages. Deterministic in `it`, so replay after restart is exact.
        let stamp = job_seed
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(((r as u64) << 32) | (it as u64 + 1));
        rank.write_pages(HEAP_SEG, &w.write_set(it), stamp);
        // Red/black-ordered bidirectional ring exchange (deadlock-free
        // with blocking rendezvous sends; np is a power of two ≥ 2).
        let t_right = tag(it, 0);
        let t_left = tag(it, 1);
        if r.is_multiple_of(2) {
            rank.send(ctx, right, t_right, w.exchange_bytes);
            rank.recv(ctx, right, t_left);
            rank.send(ctx, left, t_left, w.exchange_bytes);
            rank.recv(ctx, left, t_right);
        } else {
            rank.recv(ctx, left, t_right);
            rank.send(ctx, left, t_left, w.exchange_bytes);
            rank.recv(ctx, right, t_left);
            rank.send(ctx, right, t_right, w.exchange_bytes);
        }
        if it % w.allreduce_every == 0 {
            rank.allreduce(ctx, it as u64, 16);
        }
        rank.op_boundary(encode_state(it + 1));
    }
    rank.barrier(ctx, w.iters as u64 + 1);
}

fn tag(iter: u32, dir: u64) -> u64 {
    ((iter as u64) << 8) | dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_image_sizes_at_64_ranks() {
        // Paper Table I: migration moves 8 processes' images.
        let lu = Workload::new(NpbApp::Lu, NpbClass::C, 64);
        let bt = Workload::new(NpbApp::Bt, NpbClass::C, 64);
        let sp = Workload::new(NpbApp::Sp, NpbClass::C, 64);
        let mb = |b: u64| b as f64 / 1e6;
        assert!((mb(lu.per_proc_image() * 8) - 170.4).abs() < 2.0);
        assert!((mb(bt.per_proc_image() * 8) - 308.8).abs() < 2.0);
        assert!((mb(sp.per_proc_image() * 8) - 303.2).abs() < 2.0);
        // and the CR column is exactly 8x (64 vs 8 processes)
        assert!((mb(lu.per_proc_image() * 64) - 1363.2).abs() < 16.0);
        assert!((mb(bt.per_proc_image() * 64) - 2470.4).abs() < 16.0);
        assert!((mb(sp.per_proc_image() * 64) - 2425.6).abs() < 16.0);
    }

    #[test]
    fn fewer_ranks_mean_bigger_images() {
        let w8 = Workload::new(NpbApp::Lu, NpbClass::C, 8);
        let w64 = Workload::new(NpbApp::Lu, NpbClass::C, 64);
        assert!(w8.per_proc_image() > 4 * w64.per_proc_image());
    }

    #[test]
    fn state_roundtrip() {
        assert_eq!(decode_state(&encode_state(17)), 17);
        assert_eq!(decode_state(&Bytes::new()), 0);
    }

    #[test]
    fn segments_differ_per_rank_and_total_to_image_size() {
        let w = Workload::new(NpbApp::Bt, NpbClass::C, 64);
        let s0 = w.segments(1, 0);
        let s1 = w.segments(1, 1);
        let total: u64 = s0.iter().map(|s| s.data.len).sum();
        assert_eq!(total, w.per_proc_image());
        assert!(!s0[1].data.content_eq(&s1[1].data));
    }

    #[test]
    fn class_scaling_shrinks_data() {
        let c = Workload::new(NpbApp::Lu, NpbClass::C, 8);
        let a = Workload::new(NpbApp::Lu, NpbClass::A, 8);
        assert!(a.aggregate_data * 8 <= c.aggregate_data);
    }

    #[test]
    fn names_match_npb_convention() {
        assert_eq!(Workload::new(NpbApp::Sp, NpbClass::C, 16).name(), "SP.C.16");
    }
}
