//! Negative coverage for the model checker: seeded spec mutations must
//! produce counterexamples, and fault-driven counterexamples must lower
//! to concrete `FaultPlan`s. (The end-to-end replay of such a plan in the
//! simulator lives in `crates/core/tests/counterexample_replay.rs`, which
//! can see the runtime.)

use faultplane::{FaultKind, FaultSpec, MigPhase};
use protoverify::spec::{Action, CycleEvent, CyclePhase, CycleTransition, Guard};
use protoverify::{check, CheckConfig, Invariant, MigrationSpec};

/// A broken table that skips Phases 2+3: StallDone jumps straight to
/// Resume while the ranks are still sitting suspended on the source. The
/// checker must refuse it with a phase-consistency counterexample whose
/// final state is the premature Resume.
#[test]
fn resume_reachable_with_ranks_still_stalled_is_caught() {
    let spec = MigrationSpec::shipped().with_transition(CycleTransition {
        from: CyclePhase::Stall,
        on: CycleEvent::StallDone,
        guard: Guard::Always,
        to: CyclePhase::Resume,
        actions: vec![Action::SuspendRanks],
    });
    let report = check(&spec, &CheckConfig::default());
    let cx = report.violation.expect("broken spec must be refused");
    assert_eq!(cx.invariant, Invariant::PhaseConsistency);
    let last = cx.states.last().unwrap();
    assert_eq!(last.phase, CyclePhase::Resume);
    // The trace is minimal: Trigger, then the bad jump.
    assert_eq!(cx.labels.len(), 2);
    let text = cx.to_string();
    assert!(text.contains("phase-consistency"), "got: {text}");
    assert!(text.contains("suspended_on_source"), "got: {text}");
}

/// A mutation that mishandles a spare crash during Resume — declaring the
/// migration complete instead of rolling back — must be caught, and the
/// counterexample must carry the exact fault edge so it lowers to a
/// `FaultPlan` containing `SpareCrash { phase: Resume, attempt: 1 }`.
#[test]
fn mishandled_spare_crash_yields_replayable_plan() {
    let spec = MigrationSpec::shipped().with_transition(CycleTransition {
        from: CyclePhase::Resume,
        on: CycleEvent::SpareCrash,
        guard: Guard::Always,
        to: CyclePhase::Complete,
        actions: vec![Action::SpareLost, Action::ResumeRanks],
    });
    let report = check(&spec, &CheckConfig::default());
    let cx = report.violation.expect("mutation must be refused");
    assert_eq!(cx.invariant, Invariant::CompleteOrDegrade);
    let fault_labels: Vec<_> = cx.labels.iter().filter_map(|l| l.fault).collect();
    assert_eq!(
        fault_labels,
        vec![(MigPhase::Resume, FaultKind::SpareCrash)]
    );
    let plan = cx.to_fault_plan(7);
    assert!(
        plan.entries.iter().any(|s| matches!(
            s,
            FaultSpec::SpareCrash {
                phase: MigPhase::Resume,
                attempt: 1
            }
        )),
        "plan must pin the crash to Resume of attempt 1: {plan:?}"
    );
}

/// Dropping the retry guard (so Retry fires even with an empty pool)
/// must surface as a lost-rank or consistency violation rather than
/// passing silently: the attempt "consumes" a spare that does not exist.
#[test]
fn unguarded_retry_is_refused() {
    let spec = MigrationSpec::shipped().with_transition(CycleTransition {
        from: CyclePhase::Aborted,
        on: CycleEvent::Degrade,
        guard: Guard::NoRecoveryPath,
        to: CyclePhase::Complete,
        actions: vec![],
    });
    let report = check(&spec, &CheckConfig::default());
    let cx = report
        .violation
        .expect("degrade-to-complete must be refused");
    assert_eq!(cx.invariant, Invariant::CompleteOrDegrade);
}
