//! Trace-refinement checking: replay observed simulator traces through
//! the declarative protocol tables and fail on any event sequence the
//! model cannot derive.
//!
//! PR 3 proved invariants over the *model*; PRs 5–6 grew the *live*
//! protocol (pipelined data path, WAL journal, epoch fencing, standby
//! takeover) far faster than anything checked that the two still agree.
//! This module closes the loop from the dynamic side:
//!
//! - A declarative **event→edge table** ([`EVENT_EDGE_TABLE`]) maps
//!   simkit trace events — `proto/*_transition` instants, `wal/*`
//!   journal markers, `pool/*` data-path markers, `phase` spans — onto
//!   the protoverify machines they refine.
//! - An online [`Observer`] replays a trace through the composed model:
//!   one [`CyclePhase`] machine for the Job Manager, one [`RankLife`]
//!   machine per rank, one [`NlaState`] machine per node, one
//!   [`LinkState`] machine per FTB agent, plus a WAL record-order
//!   automaton encoding the journal contracts (append-before-effect
//!   ordering, commit-point placement, roll-forward-only after a
//!   takeover). Any event not derivable in the model is a
//!   [`Nonconformance`], reported with the **shortest non-conforming
//!   suffix** — the minimal tail of that machine's observed history that
//!   no model state can replay.
//! - A [`Coverage`] tracker records which table rows the suite actually
//!   exercises; never-exercised edges are dead model rows or missing
//!   tests — both findings. [`Coverage::to_json`] renders the
//!   `COVERAGE_proto.json` artifact.
//!
//! Traces round-trip through a self-describing JSON artifact
//! ([`trace_to_json`] / [`parse_trace_json`], hand-rolled: the workspace
//! builds offline with zero registry deps) so the `protoverify` binary
//! can re-check CI artifacts long after the simulation ran.

use crate::spec::{
    link_next, nla_next, rank_next, CycleEvent, CyclePhase, LinkEvent, LinkState, MigrationSpec,
    NlaEvent, NlaState, RankEvent, RankLife, LINK_TABLE, NLA_TABLE, RANK_TABLE,
};
use simkit::{ArgValue, EventKind, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// ---------------------------------------------------------------------------
// trace events, decoupled from simkit for offline artifacts
// ---------------------------------------------------------------------------

/// An argument value on a trace event, owned (unlike simkit's borrowed
/// keys) so events survive a round trip through a JSON artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
}

impl ArgVal {
    /// The value as a u64, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgVal::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The shape of a trace event (mirrors `simkit::EventKind` minus the
/// counter payload, which rides in `args` after a round trip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawKind {
    /// Span open.
    Begin,
    /// Span close.
    End,
    /// Point event.
    Instant,
    /// Counter sample.
    Counter,
    /// Message event.
    Message,
}

impl RawKind {
    /// One-letter code used in the JSON artifact (chrome-trace style).
    pub fn code(self) -> &'static str {
        match self {
            RawKind::Begin => "B",
            RawKind::End => "E",
            RawKind::Instant => "I",
            RawKind::Counter => "C",
            RawKind::Message => "M",
        }
    }

    fn from_code(s: &str) -> Option<RawKind> {
        Some(match s {
            "B" => RawKind::Begin,
            "E" => RawKind::End,
            "I" => RawKind::Instant,
            "C" => RawKind::Counter,
            "M" => RawKind::Message,
            _ => return None,
        })
    }
}

/// One observed trace event, in the owned form the observer and the JSON
/// artifact share.
#[derive(Debug, Clone)]
pub struct RawEvent {
    /// Virtual time of the event, nanoseconds.
    pub time_ns: u64,
    /// Category (`"proto"`, `"wal"`, `"pool"`, `"phase"`, …).
    pub cat: String,
    /// Event name within the category.
    pub name: String,
    /// Event shape.
    pub kind: RawKind,
    /// Event arguments, in emission order.
    pub args: Vec<(String, ArgVal)>,
}

impl RawEvent {
    /// Convert a live simkit trace event into the owned form.
    pub fn from_trace(ev: &TraceEvent) -> RawEvent {
        let (kind, extra) = match ev.kind {
            EventKind::Begin => (RawKind::Begin, None),
            EventKind::End => (RawKind::End, None),
            EventKind::Instant => (RawKind::Instant, None),
            EventKind::Counter(v) => (
                RawKind::Counter,
                Some(("value".to_string(), ArgVal::F64(v))),
            ),
            EventKind::Message => (RawKind::Message, None),
        };
        let mut args: Vec<(String, ArgVal)> = ev
            .args
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    ArgValue::U64(n) => ArgVal::U64(*n),
                    ArgValue::F64(f) => ArgVal::F64(*f),
                    ArgValue::Str(s) => ArgVal::Str(s.clone()),
                };
                (k.to_string(), v)
            })
            .collect();
        args.extend(extra);
        RawEvent {
            time_ns: ev.time.as_nanos(),
            cat: ev.cat.to_string(),
            name: ev.name.clone(),
            kind,
            args,
        }
    }

    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&ArgVal> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn arg_u64(&self, key: &str) -> Option<u64> {
        self.arg(key).and_then(ArgVal::as_u64)
    }

    fn arg_str(&self, key: &str) -> Option<&str> {
        self.arg(key).and_then(ArgVal::as_str)
    }

    /// Compact one-line rendering used in nonconformance reports.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}ns {}/{} [{}]",
            self.time_ns,
            self.cat,
            self.name,
            self.kind.code()
        );
        for (k, v) in &self.args {
            match v {
                ArgVal::U64(n) => s.push_str(&format!(" {k}={n}")),
                ArgVal::F64(f) => s.push_str(&format!(" {k}={f}")),
                ArgVal::Str(t) => s.push_str(&format!(" {k}={t}")),
            }
        }
        s
    }
}

/// Convert a full simkit trace into the owned form the observer and the
/// JSON artifact consume.
pub fn raw_trace(events: &[TraceEvent]) -> Vec<RawEvent> {
    events.iter().map(RawEvent::from_trace).collect()
}

// ---------------------------------------------------------------------------
// the declarative event→edge table
// ---------------------------------------------------------------------------

/// Which model edge class a trace event refines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `proto/cycle_transition` — one edge of the migration-cycle table.
    Cycle,
    /// `proto/rank_transition` — one edge of the rank lifecycle table.
    Rank,
    /// `proto/nla_transition` — one edge of the NLA table.
    Nla,
    /// `proto/link_transition` — one edge of the FTB uplink table.
    Link,
    /// `wal/wal_append` — one record entering the cycle journal.
    WalAppend,
    /// `wal/wal_replay` — a standby replaying the journal tail.
    WalReplay,
    /// `wal/takeover` — a standby fencing and adopting the cycle.
    Takeover,
    /// `wal/fenced_publish` — a stale-epoch publish dropped by fencing.
    FencedPublish,
    /// `pool/rank_image_ready` — a rank's image fully staged (Phase 2).
    ImageReady,
    /// `pool/restart_begin` — a rank's restart worker starting (Phase 3).
    RestartBegin,
    /// `phase/<precopy|stall|migrate|restart|resume>` span — a live
    /// phase body.
    PhaseSpan,
}

/// One row of the event→edge table: a `(cat, name)` pattern and the edge
/// class it maps to. `name == "*"` matches every name in the category.
#[derive(Debug, Clone, Copy)]
pub struct EventRule {
    /// Trace category to match.
    pub cat: &'static str,
    /// Trace event name to match (`"*"` = any).
    pub name: &'static str,
    /// Model edge class the event refines.
    pub edge: EdgeKind,
}

/// The declarative event→edge table. This is the single place that
/// decides which trace events carry protocol meaning; everything else in
/// the trace (counters, log lines, checkpoint instrumentation) is
/// ignored by the refinement check.
pub const EVENT_EDGE_TABLE: &[EventRule] = &[
    EventRule {
        cat: "proto",
        name: "cycle_transition",
        edge: EdgeKind::Cycle,
    },
    EventRule {
        cat: "proto",
        name: "rank_transition",
        edge: EdgeKind::Rank,
    },
    EventRule {
        cat: "proto",
        name: "nla_transition",
        edge: EdgeKind::Nla,
    },
    EventRule {
        cat: "proto",
        name: "link_transition",
        edge: EdgeKind::Link,
    },
    EventRule {
        cat: "wal",
        name: "wal_append",
        edge: EdgeKind::WalAppend,
    },
    EventRule {
        cat: "wal",
        name: "wal_replay",
        edge: EdgeKind::WalReplay,
    },
    EventRule {
        cat: "wal",
        name: "takeover",
        edge: EdgeKind::Takeover,
    },
    EventRule {
        cat: "wal",
        name: "fenced_publish",
        edge: EdgeKind::FencedPublish,
    },
    EventRule {
        cat: "pool",
        name: "rank_image_ready",
        edge: EdgeKind::ImageReady,
    },
    EventRule {
        cat: "pool",
        name: "restart_begin",
        edge: EdgeKind::RestartBegin,
    },
    EventRule {
        cat: "phase",
        name: "*",
        edge: EdgeKind::PhaseSpan,
    },
];

/// Classify a trace event against [`EVENT_EDGE_TABLE`].
pub fn classify(cat: &str, name: &str) -> Option<EdgeKind> {
    EVENT_EDGE_TABLE
        .iter()
        .find(|r| r.cat == cat && (r.name == "*" || r.name == name))
        .map(|r| r.edge)
}

// -- name → enum parsers (the trace speaks the tables' `name()` strings) ----

fn parse_phase(s: &str) -> Option<CyclePhase> {
    use CyclePhase::*;
    Some(match s {
        "idle" => Idle,
        "precopy" => Precopy,
        "stall" => Stall,
        "migrate" => Migrate,
        "restart" => Restart,
        "resume" => Resume,
        "aborted" => Aborted,
        "complete" => Complete,
        "degraded" => Degraded,
        _ => return None,
    })
}

fn parse_cycle_event(s: &str) -> Option<CycleEvent> {
    use CycleEvent::*;
    Some(match s {
        "trigger" => Trigger,
        "live_trigger" => LiveTrigger,
        "precopy_round" => PrecopyRound,
        "cutover" => Cutover,
        "fallback_stopcopy" => FallbackStopCopy,
        "stall_done" => StallDone,
        "migrate_done" => MigrateDone,
        "restart_done" => RestartDone,
        "resume_done" => ResumeDone,
        "phase_timeout" => PhaseTimeout,
        "spare_crash" => SpareCrash,
        "retry" => Retry,
        "degrade" => Degrade,
        "rank_staged" => RankStaged,
        "rank_restarted" => RankRestarted,
        "coord_crash" => CoordCrash,
        "takeover_resume" => TakeoverResume,
        "takeover_rollback" => TakeoverRollback,
        "zombie_settle" => ZombieSettle,
        _ => return None,
    })
}

fn parse_rank_life(s: &str) -> Option<RankLife> {
    use RankLife::*;
    Some(match s {
        "running" => Running,
        "suspended" => Suspended,
        "captured" => Captured,
        "restarted" => Restarted,
        _ => return None,
    })
}

fn parse_rank_event(s: &str) -> Option<RankEvent> {
    use RankEvent::*;
    Some(match s {
        "suspend" => Suspend,
        "capture" => Capture,
        "restart" => Restart,
        "resurrect" => Resurrect,
        "resume" => Resume,
        _ => return None,
    })
}

fn parse_nla_state(s: &str) -> Option<NlaState> {
    use NlaState::*;
    Some(match s {
        "MIGRATION_READY" => MigrationReady,
        "MIGRATION_SPARE" => MigrationSpare,
        "MIGRATION_INACTIVE" => MigrationInactive,
        _ => return None,
    })
}

fn parse_nla_event(s: &str) -> Option<NlaEvent> {
    use NlaEvent::*;
    Some(match s {
        "source_drained" => SourceDrained,
        "restart_complete" => RestartComplete,
        "rollback_source" => RollbackSource,
        "rollback_target" => RollbackTarget,
        "reprovision" => Reprovision,
        _ => return None,
    })
}

fn parse_link_state(s: &str) -> Option<LinkState> {
    use LinkState::*;
    Some(match s {
        "Root" => Root,
        "Attached" => Attached,
        "AttachedWithFallback" => AttachedWithFallback,
        _ => return None,
    })
}

fn parse_link_event(s: &str) -> Option<LinkEvent> {
    use LinkEvent::*;
    Some(match s {
        "AckGrandparent" => AckGrandparent,
        "AckNoGrandparent" => AckNoGrandparent,
        "ParentLost" => ParentLost,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// transition coverage
// ---------------------------------------------------------------------------

/// Edge-coverage counters over the four shipped transition tables.
///
/// The universe is exactly the tables' rows — a row the suite never
/// exercises is either dead model code or a missing test, and both are
/// findings the coverage report surfaces by edge name.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    counts: BTreeMap<String, u64>,
}

/// Render one edge key: `"<table>/<from> --<event>--> <to>"`.
fn edge_key(table: &str, from: &str, ev: &str, to: &str) -> String {
    format!("{table}/{from} --{ev}--> {to}")
}

impl Coverage {
    /// A fresh, empty coverage map.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// The full edge universe, one key per shipped table row.
    pub fn universe() -> Vec<String> {
        let mut keys = Vec::new();
        for t in &MigrationSpec::shipped().transitions {
            keys.push(edge_key("cycle", t.from.name(), t.on.name(), t.to.name()));
        }
        for t in NLA_TABLE {
            keys.push(edge_key(
                "nla",
                &t.from.to_string(),
                t.on.name(),
                &t.to.to_string(),
            ));
        }
        for t in RANK_TABLE {
            keys.push(edge_key("rank", t.from.name(), t.on.name(), t.to.name()));
        }
        for t in LINK_TABLE {
            keys.push(edge_key(
                "link",
                &format!("{:?}", t.from),
                &format!("{:?}", t.on),
                &format!("{:?}", t.to),
            ));
        }
        keys.sort();
        keys
    }

    fn mark(&mut self, key: String) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Merge another run's coverage into this one.
    pub fn merge(&mut self, other: &Coverage) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Hit count for one edge key (0 if never exercised).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of universe edges exercised at least once.
    pub fn covered(&self) -> usize {
        Coverage::universe()
            .iter()
            .filter(|k| self.count(k) > 0)
            .count()
    }

    /// Universe edges never exercised, by edge name.
    pub fn missing(&self) -> Vec<String> {
        Coverage::universe()
            .into_iter()
            .filter(|k| self.count(k) == 0)
            .collect()
    }

    /// Covered / universe, in [0, 1].
    pub fn ratio(&self) -> f64 {
        let total = Coverage::universe().len();
        if total == 0 {
            return 1.0;
        }
        self.covered() as f64 / total as f64
    }

    /// Render the `COVERAGE_proto.json` artifact: per-table edge counts,
    /// missing-edge lists, and the overall ratio. Deterministic (sorted
    /// keys), hand-rolled (the workspace builds offline without serde).
    pub fn to_json(&self) -> String {
        let universe = Coverage::universe();
        let tables = ["cycle", "nla", "rank", "link"];
        let mut out = String::from("{\n  \"schema\": \"coverage_proto/v1\",\n");
        out.push_str(&format!(
            "  \"total\": {{\"covered\": {}, \"universe\": {}, \"ratio\": {:.4}}},\n",
            self.covered(),
            universe.len(),
            self.ratio()
        ));
        out.push_str("  \"tables\": {\n");
        for (i, table) in tables.iter().enumerate() {
            let prefix = format!("{table}/");
            let edges: Vec<&String> = universe.iter().filter(|k| k.starts_with(&prefix)).collect();
            let covered = edges.iter().filter(|k| self.count(k) > 0).count();
            out.push_str(&format!(
                "    \"{table}\": {{\"covered\": {covered}, \"universe\": {},\n      \"edges\": {{\n",
                edges.len()
            ));
            for (j, k) in edges.iter().enumerate() {
                let name = &k[prefix.len()..];
                let comma = if j + 1 == edges.len() { "" } else { "," };
                out.push_str(&format!(
                    "        {}: {}{comma}\n",
                    json_string(name),
                    self.count(k)
                ));
            }
            out.push_str("      },\n      \"missing\": [");
            let missing: Vec<&&String> = edges.iter().filter(|k| self.count(k) == 0).collect();
            for (j, k) in missing.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(&k[prefix.len()..]));
            }
            let comma = if i + 1 == tables.len() { "" } else { "," };
            out.push_str(&format!("]}}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// nonconformance reporting
// ---------------------------------------------------------------------------

/// One trace event the composed model cannot derive.
#[derive(Debug, Clone)]
pub struct Nonconformance {
    /// Index of the offending event in the replayed trace.
    pub index: usize,
    /// Which machine rejected it (`"cycle"`, `"rank"`, `"nla"`,
    /// `"link"`, `"wal"`, `"fence"`, `"pool"`, `"phase"`).
    pub machine: &'static str,
    /// The scope within the machine (e.g. `"rank 3"`, `"cycle 7"`).
    pub scope: String,
    /// Why the event is not derivable.
    pub reason: String,
    /// The shortest non-conforming suffix of that machine's observed
    /// history: the minimal tail no model state can replay. For the
    /// table machines this is computed exactly (existentially over every
    /// start state); for the WAL automaton it is the offending cycle's
    /// record tail.
    pub suffix: Vec<String>,
}

impl fmt::Display for Nonconformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nonconforming event #{} [{} {}]: {}",
            self.index, self.machine, self.scope, self.reason
        )?;
        writeln!(
            f,
            "shortest non-conforming suffix ({} events):",
            self.suffix.len()
        )?;
        for s in &self.suffix {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// Result of replaying one trace through the composed model.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Total events in the trace.
    pub events: usize,
    /// Events the event→edge table mapped onto a model edge.
    pub mapped: usize,
    /// The first nonconforming event, if any (replay stops there).
    pub violation: Option<Nonconformance>,
    /// Edge coverage accumulated up to the stop point.
    pub coverage: Coverage,
}

impl ConformanceReport {
    /// True when every mapped event was derivable in the model.
    pub fn is_conformant(&self) -> bool {
        self.violation.is_none()
    }
}

/// Existentially check derivability of a history suffix and return the
/// shortest one no start state can replay. `hist` entries are
/// `(from, event, to, rendered)`; the last entry is the offending edge.
fn shortest_suffix<S, E>(
    states: &[S],
    next: impl Fn(S, E) -> Option<S>,
    hist: &[(S, E, S, String)],
) -> Vec<String>
where
    S: Copy + PartialEq,
    E: Copy,
{
    for k in 1..=hist.len() {
        let suf = &hist[hist.len() - k..];
        let derivable = states.iter().any(|&q0| {
            let mut q = q0;
            suf.iter().all(|&(f, e, t, _)| {
                if q != f {
                    return false;
                }
                match next(q, e) {
                    Some(n) if n == t => {
                        q = n;
                        true
                    }
                    _ => false,
                }
            })
        });
        if !derivable {
            return suf.iter().map(|(_, _, _, d)| d.clone()).collect();
        }
    }
    hist.iter().map(|(_, _, _, d)| d.clone()).collect()
}

// ---------------------------------------------------------------------------
// the observer
// ---------------------------------------------------------------------------

/// Per-cycle WAL bookkeeping for the record-order automaton.
#[derive(Debug, Clone, Default)]
struct CycleLog {
    records: Vec<String>,
    phases: BTreeSet<String>,
    rewired: bool,
    committed: bool,
    lease_acquired: bool,
    lease_committed: bool,
    ended: bool,
    taken_over: bool,
    images: BTreeSet<u64>,
}

/// Online refinement observer: feed it a trace event at a time (or a
/// whole trace via [`Observer::replay`]) and it replays the composed
/// protoverify model alongside, rejecting the first event the model
/// cannot derive.
#[derive(Debug)]
pub struct Observer {
    spec: MigrationSpec,
    phase: CyclePhase,
    cycle_hist: Vec<(CyclePhase, CycleEvent, CyclePhase, String)>,
    ranks: BTreeMap<u64, RankLife>,
    rank_hist: BTreeMap<u64, Vec<(RankLife, RankEvent, RankLife, String)>>,
    nlas: BTreeMap<u64, NlaState>,
    nla_hist: BTreeMap<u64, Vec<(NlaState, NlaEvent, NlaState, String)>>,
    links: BTreeMap<u64, LinkState>,
    link_hist: BTreeMap<u64, Vec<(LinkState, LinkEvent, LinkState, String)>>,
    next_seq: u64,
    wal: BTreeMap<u64, CycleLog>,
    last_epoch: u64,
    events: usize,
    mapped: usize,
    coverage: Coverage,
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new()
    }
}

impl Observer {
    /// A fresh observer, with every machine in its initial state.
    pub fn new() -> Observer {
        Observer {
            spec: MigrationSpec::shipped(),
            phase: CyclePhase::Idle,
            cycle_hist: Vec::new(),
            ranks: BTreeMap::new(),
            rank_hist: BTreeMap::new(),
            nlas: BTreeMap::new(),
            nla_hist: BTreeMap::new(),
            links: BTreeMap::new(),
            link_hist: BTreeMap::new(),
            next_seq: 1,
            wal: BTreeMap::new(),
            last_epoch: 0,
            events: 0,
            mapped: 0,
            coverage: Coverage::new(),
        }
    }

    /// Edge coverage accumulated so far.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Replay a whole trace, stopping at the first nonconformance.
    pub fn replay(events: &[RawEvent]) -> ConformanceReport {
        let mut obs = Observer::new();
        let mut violation = None;
        for (i, ev) in events.iter().enumerate() {
            if let Err(mut v) = obs.observe(ev) {
                v.index = i;
                violation = Some(v);
                break;
            }
        }
        ConformanceReport {
            events: events.len(),
            mapped: obs.mapped,
            violation,
            coverage: obs.coverage,
        }
    }

    /// Observe one event. `Err` carries the nonconformance (with
    /// `index` 0 — [`Observer::replay`] fills in the trace position).
    pub fn observe(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        self.events += 1;
        let Some(edge) = classify(&ev.cat, &ev.name) else {
            return Ok(());
        };
        self.mapped += 1;
        match edge {
            EdgeKind::Cycle => self.on_cycle(ev),
            EdgeKind::Rank => self.on_rank(ev),
            EdgeKind::Nla => self.on_nla(ev),
            EdgeKind::Link => self.on_link(ev),
            EdgeKind::WalAppend => self.on_wal_append(ev),
            EdgeKind::WalReplay => Ok(()),
            EdgeKind::Takeover => self.on_takeover(ev),
            EdgeKind::FencedPublish => self.on_fenced(ev),
            EdgeKind::ImageReady => self.on_image_ready(ev),
            EdgeKind::RestartBegin => self.on_restart_begin(ev),
            EdgeKind::PhaseSpan => self.on_phase_span(ev),
        }
    }

    fn fail(
        &self,
        machine: &'static str,
        scope: String,
        reason: String,
        suffix: Vec<String>,
    ) -> Result<(), Nonconformance> {
        Err(Nonconformance {
            index: 0,
            machine,
            scope,
            reason,
            suffix,
        })
    }

    fn on_cycle(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(from), Some(event), Some(to)) =
            (ev.arg_str("from"), ev.arg_str("event"), ev.arg_str("to"))
        else {
            return self.fail(
                "cycle",
                String::new(),
                format!("malformed cycle_transition: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let (Some(from), Some(event), Some(to)) =
            (parse_phase(from), parse_cycle_event(event), parse_phase(to))
        else {
            return self.fail(
                "cycle",
                String::new(),
                format!("unknown cycle phase/event name: {}", ev.render()),
                vec![ev.render()],
            );
        };
        // A fresh trigger lifecycle: the live runtime builds a new
        // stepper at Idle for every migration request, so an Idle-rooted
        // edge while the model sits in a terminal phase begins a new
        // cycle, not a jump out of the old one.
        if from == CyclePhase::Idle
            && matches!(self.phase, CyclePhase::Complete | CyclePhase::Degraded)
        {
            self.phase = CyclePhase::Idle;
        }
        self.cycle_hist.push((from, event, to, ev.render()));
        let spec = &self.spec;
        let row = spec
            .transitions
            .iter()
            .find(|t| t.from == from && t.on == event);
        let derivable = self.phase == from && row.is_some_and(|t| t.to == to);
        if !derivable {
            let states = [
                CyclePhase::Idle,
                CyclePhase::Precopy,
                CyclePhase::Stall,
                CyclePhase::Migrate,
                CyclePhase::Restart,
                CyclePhase::Resume,
                CyclePhase::Aborted,
                CyclePhase::Complete,
                CyclePhase::Degraded,
            ];
            let suffix = shortest_suffix(
                &states,
                |q, e| {
                    spec.transitions
                        .iter()
                        .find(|t| t.from == q && t.on == e)
                        .map(|t| t.to)
                },
                &self.cycle_hist,
            );
            let reason = if self.phase != from {
                format!(
                    "observed {} --{}--> {} but the cycle model is in {}",
                    from.name(),
                    event.name(),
                    to.name(),
                    self.phase.name()
                )
            } else {
                format!(
                    "no cycle-table row {} --{}--> {}",
                    from.name(),
                    event.name(),
                    to.name()
                )
            };
            return self.fail("cycle", "job".to_string(), reason, suffix);
        }
        self.coverage
            .mark(edge_key("cycle", from.name(), event.name(), to.name()));
        self.phase = to;
        Ok(())
    }

    fn on_rank(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(rank), Some(from), Some(event), Some(to)) = (
            ev.arg_u64("rank"),
            ev.arg_str("from"),
            ev.arg_str("event"),
            ev.arg_str("to"),
        ) else {
            return self.fail(
                "rank",
                String::new(),
                format!("malformed rank_transition: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let (Some(from), Some(event), Some(to)) = (
            parse_rank_life(from),
            parse_rank_event(event),
            parse_rank_life(to),
        ) else {
            return self.fail(
                "rank",
                String::new(),
                format!("unknown rank state/event name: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let cur = *self.ranks.entry(rank).or_insert(from);
        let hist = self.rank_hist.entry(rank).or_default();
        hist.push((from, event, to, ev.render()));
        let derivable = cur == from && rank_next(from, event) == Some(to);
        if !derivable {
            let states = [
                RankLife::Running,
                RankLife::Suspended,
                RankLife::Captured,
                RankLife::Restarted,
            ];
            let suffix = shortest_suffix(&states, rank_next, hist);
            let reason = if cur != from {
                format!(
                    "observed {} --{}--> {} but rank {rank} is {} in the model",
                    from.name(),
                    event.name(),
                    to.name(),
                    cur.name()
                )
            } else {
                format!(
                    "no rank-table row {} --{}--> {}",
                    from.name(),
                    event.name(),
                    to.name()
                )
            };
            return self.fail("rank", format!("rank {rank}"), reason, suffix);
        }
        self.coverage
            .mark(edge_key("rank", from.name(), event.name(), to.name()));
        self.ranks.insert(rank, to);
        Ok(())
    }

    fn on_nla(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(node), Some(from), Some(event), Some(to)) = (
            ev.arg_u64("node"),
            ev.arg_str("from"),
            ev.arg_str("event"),
            ev.arg_str("to"),
        ) else {
            return self.fail(
                "nla",
                String::new(),
                format!("malformed nla_transition: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let (Some(from), Some(event), Some(to)) = (
            parse_nla_state(from),
            parse_nla_event(event),
            parse_nla_state(to),
        ) else {
            return self.fail(
                "nla",
                String::new(),
                format!("unknown NLA state/event name: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let cur = *self.nlas.entry(node).or_insert(from);
        let hist = self.nla_hist.entry(node).or_default();
        hist.push((from, event, to, ev.render()));
        let derivable = cur == from && nla_next(from, event) == Some(to);
        if !derivable {
            let states = [
                NlaState::MigrationReady,
                NlaState::MigrationSpare,
                NlaState::MigrationInactive,
            ];
            let suffix = shortest_suffix(&states, nla_next, hist);
            let reason = if cur != from {
                format!(
                    "observed {from} --{}--> {to} but node {node} is {cur} in the model",
                    event.name()
                )
            } else {
                format!("no NLA-table row {from} --{}--> {to}", event.name())
            };
            return self.fail("nla", format!("node {node}"), reason, suffix);
        }
        self.coverage.mark(edge_key(
            "nla",
            &from.to_string(),
            event.name(),
            &to.to_string(),
        ));
        self.nlas.insert(node, to);
        Ok(())
    }

    fn on_link(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(node), Some(from), Some(event), Some(to)) = (
            ev.arg_u64("node"),
            ev.arg_str("from"),
            ev.arg_str("on"),
            ev.arg_str("to"),
        ) else {
            return self.fail(
                "link",
                String::new(),
                format!("malformed link_transition: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let (Some(from), Some(event), Some(to)) = (
            parse_link_state(from),
            parse_link_event(event),
            parse_link_state(to),
        ) else {
            return self.fail(
                "link",
                String::new(),
                format!("unknown link state/event name: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let cur = *self.links.entry(node).or_insert(from);
        let hist = self.link_hist.entry(node).or_default();
        hist.push((from, event, to, ev.render()));
        let derivable = cur == from && link_next(from, event) == Some(to);
        if !derivable {
            let states = [
                LinkState::Root,
                LinkState::Attached,
                LinkState::AttachedWithFallback,
            ];
            let suffix = shortest_suffix(&states, link_next, hist);
            let reason = if cur != from {
                format!(
                    "observed {from:?} --{event:?}--> {to:?} but node {node}'s uplink is {cur:?} in the model"
                )
            } else {
                format!("no uplink-table row {from:?} --{event:?}--> {to:?}")
            };
            return self.fail("link", format!("node {node}"), reason, suffix);
        }
        self.coverage.mark(edge_key(
            "link",
            &format!("{from:?}"),
            &format!("{event:?}"),
            &format!("{to:?}"),
        ));
        self.links.insert(node, to);
        Ok(())
    }

    /// Render the offending cycle's WAL record tail (suffix for the
    /// record-order automaton — up to the last 8 records plus the new
    /// one).
    fn wal_suffix(log: &CycleLog, new: &str) -> Vec<String> {
        let mut s: Vec<String> = log.records.iter().rev().take(8).rev().cloned().collect();
        s.push(new.to_string());
        s
    }

    fn on_wal_append(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(seq), Some(record), Some(cycle)) =
            (ev.arg_u64("seq"), ev.arg_str("record"), ev.arg_u64("cycle"))
        else {
            return self.fail(
                "wal",
                String::new(),
                format!("malformed wal_append: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let record = record.to_string();
        if seq != self.next_seq {
            let exp = self.next_seq;
            return self.fail(
                "wal",
                format!("cycle {cycle}"),
                format!("append seq {seq} out of order (expected {exp})"),
                vec![ev.render()],
            );
        }
        self.next_seq += 1;
        let log = self.wal.entry(cycle).or_default();
        let started = !log.records.is_empty();
        let scope = format!("cycle {cycle}");
        macro_rules! wal_fail {
            ($($msg:tt)*) => {{
                let suffix = Observer::wal_suffix(log, &ev.render());
                let reason = format!($($msg)*);
                return Err(Nonconformance {
                    index: 0,
                    machine: "wal",
                    scope,
                    reason,
                    suffix,
                });
            }};
        }
        if log.ended {
            wal_fail!("record {record} appended after cycle_end");
        }
        match record.as_str() {
            "cycle_start" => {
                if started {
                    wal_fail!("duplicate cycle_start");
                }
            }
            _ if !started => {
                wal_fail!("first record of a cycle must be cycle_start, got {record}");
            }
            "lease_acquire" => {
                if log.lease_acquired {
                    wal_fail!("duplicate lease_acquire");
                }
                log.lease_acquired = true;
            }
            "phase_enter" => {
                let Some(phase) = ev.arg_str("phase") else {
                    wal_fail!("phase_enter without a phase argument");
                };
                let needs = match phase {
                    // A live cycle journals precopy before stall; a
                    // classic cycle opens with stall directly — both
                    // entries are roots of the phase chain.
                    "precopy" => None,
                    "stall" => None,
                    "migrate" => Some("stall"),
                    "restart" => Some("migrate"),
                    "resume" => Some("restart"),
                    other => wal_fail!("phase_enter for unknown phase {other}"),
                };
                if let Some(prev) = needs {
                    if !log.phases.contains(prev) {
                        wal_fail!("phase_enter {phase} before any phase_enter {prev}");
                    }
                }
                log.phases.insert(phase.to_string());
            }
            "rank_image_ready" => {
                if !log.phases.contains("migrate") {
                    wal_fail!("rank_image_ready before phase_enter migrate");
                }
            }
            "precopy_round" => {
                if !log.phases.contains("precopy") {
                    wal_fail!("precopy_round before phase_enter precopy");
                }
            }
            "nla_rewire" => {
                if !log.phases.contains("migrate") {
                    wal_fail!("nla_rewire before phase_enter migrate");
                }
                log.rewired = true;
            }
            "rank_restarted" => {
                if !log.rewired {
                    wal_fail!("rank_restarted before nla_rewire");
                }
            }
            "commit_point" => {
                if !log.rewired {
                    wal_fail!("commit_point before nla_rewire");
                }
                log.committed = true;
            }
            "lease_commit" => {
                if !log.committed {
                    wal_fail!("lease_commit before commit_point");
                }
                log.lease_committed = true;
            }
            "rollback" => {
                if log.taken_over && log.committed {
                    wal_fail!("rollback after commit_point under a takeover (roll-forward only)");
                }
            }
            "cycle_end" => {
                log.ended = true;
            }
            other => {
                wal_fail!("unknown WAL record {other}");
            }
        }
        log.records.push(ev.render());
        Ok(())
    }

    fn on_takeover(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(epoch), Some(cycle)) = (ev.arg_u64("epoch"), ev.arg_u64("cycle")) else {
            return self.fail(
                "wal",
                String::new(),
                format!("malformed takeover: {}", ev.render()),
                vec![ev.render()],
            );
        };
        if epoch <= self.last_epoch {
            let last = self.last_epoch;
            return self.fail(
                "wal",
                format!("cycle {cycle}"),
                format!("takeover epoch {epoch} not greater than previous epoch {last}"),
                vec![ev.render()],
            );
        }
        self.last_epoch = epoch;
        if let Some(log) = self.wal.get_mut(&cycle) {
            log.taken_over = true;
        }
        // The live stepper died with the Job Manager; the standby (and a
        // later respawned JM) begins from Idle.
        self.phase = CyclePhase::Idle;
        Ok(())
    }

    fn on_fenced(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        if self.last_epoch == 0 {
            return self.fail(
                "fence",
                "job".to_string(),
                format!("fenced_publish before any takeover: {}", ev.render()),
                vec![ev.render()],
            );
        }
        let epoch = ev.arg_u64("epoch").unwrap_or(u64::MAX);
        if epoch >= self.last_epoch {
            let last = self.last_epoch;
            return self.fail(
                "fence",
                "job".to_string(),
                format!("fenced_publish for epoch {epoch} which is not stale (fence is {last})"),
                vec![ev.render()],
            );
        }
        Ok(())
    }

    fn on_image_ready(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(cycle), Some(rank)) = (ev.arg_u64("cycle"), ev.arg_u64("rank")) else {
            return self.fail(
                "pool",
                String::new(),
                format!("malformed rank_image_ready: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let Some(log) = self.wal.get_mut(&cycle) else {
            return self.fail(
                "pool",
                format!("cycle {cycle}"),
                "rank_image_ready for a cycle with no journal records".to_string(),
                vec![ev.render()],
            );
        };
        log.images.insert(rank);
        Ok(())
    }

    fn on_restart_begin(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        let (Some(cycle), Some(rank)) = (ev.arg_u64("cycle"), ev.arg_u64("rank")) else {
            return self.fail(
                "pool",
                String::new(),
                format!("malformed restart_begin: {}", ev.render()),
                vec![ev.render()],
            );
        };
        let staged = self
            .wal
            .get(&cycle)
            .is_some_and(|log| log.images.contains(&rank));
        if !staged {
            return self.fail(
                "pool",
                format!("cycle {cycle}"),
                format!("restart_begin for rank {rank} before its image is staged"),
                vec![ev.render()],
            );
        }
        Ok(())
    }

    fn on_phase_span(&mut self, ev: &RawEvent) -> Result<(), Nonconformance> {
        if ev.kind != RawKind::Begin {
            return Ok(());
        }
        // Only the four migration phases are journaled; other spans in
        // the "phase" category (the `cr_*` checkpoint-baseline phases of
        // the degraded path) run outside the cycle journal.
        if !matches!(
            ev.name.as_str(),
            "precopy" | "stall" | "migrate" | "restart" | "resume"
        ) {
            return Ok(());
        }
        let Some(cycle) = ev.arg_u64("cycle") else {
            return self.fail(
                "phase",
                String::new(),
                format!("phase span without a cycle argument: {}", ev.render()),
                vec![ev.render()],
            );
        };
        // The pipelined data path legitimately opens the restart span
        // mid-Phase-2, immediately after journaling the NLA rewire (the
        // overlap design: FTB_RESTART goes out while chunks still
        // stream). The rewire record is therefore an alternative
        // prerequisite for the restart span.
        let entered = self.wal.get(&cycle).is_some_and(|log| {
            log.phases.contains(ev.name.as_str()) || (ev.name == "restart" && log.rewired)
        });
        if !entered {
            let name = &ev.name;
            return self.fail(
                "phase",
                format!("cycle {cycle}"),
                format!("phase span {name} opened before its WAL phase_enter record"),
                vec![ev.render()],
            );
        }
        Ok(())
    }
}

/// Replay a live simkit trace through the composed model — the
/// convenience entry point test harnesses call after draining the
/// tracer.
pub fn observe_trace(events: &[TraceEvent]) -> ConformanceReport {
    Observer::replay(&raw_trace(events))
}

// ---------------------------------------------------------------------------
// trace artifact: JSON writer + minimal parser (offline, zero deps)
// ---------------------------------------------------------------------------

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize a trace to the `jobmig_trace/v1` JSON artifact consumed by
/// `protoverify --conformance` / `--coverage`.
pub fn trace_to_json(events: &[RawEvent]) -> String {
    let mut out = String::from("{\"schema\": \"jobmig_trace/v1\", \"events\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"t\": {}, \"cat\": {}, \"name\": {}, \"kind\": {}, \"args\": {{",
            ev.time_ns,
            json_string(&ev.cat),
            json_string(&ev.name),
            json_string(ev.kind.code()),
        ));
        for (j, (k, v)) in ev.args.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(k));
            out.push_str(": ");
            match v {
                ArgVal::U64(n) => out.push_str(&n.to_string()),
                ArgVal::F64(f) => out.push_str(&format!("{f:?}")),
                ArgVal::Str(s) => out.push_str(&json_string(s)),
            }
        }
        let comma = if i + 1 == events.len() { "" } else { "," };
        out.push_str(&format!("}}}}{comma}\n"));
    }
    out.push_str("]}\n");
    out
}

/// A malformed trace artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace artifact parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

/// Minimal JSON value for the artifact parser.
enum JVal {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JParser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, TraceParseError> {
        Err(TraceParseError {
            at: self.pos,
            message: message.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<JVal, TraceParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JVal::Bool),
            Some(b'f') => self.literal("false", JVal::Bool),
            Some(b'n') => self.literal("null", JVal::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, val: JVal) -> Result<JVal, TraceParseError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<JVal, TraceParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok();
        match text.and_then(|t| t.parse::<f64>().ok()) {
            Some(n) => Ok(JVal::Num(n)),
            None => self.err("malformed number"),
        }
    }

    fn string(&mut self) -> Result<String, TraceParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            self.pos += 4;
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-consume the full UTF-8 sequence starting here.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        TraceParseError {
                            at: self.pos,
                            message: "invalid UTF-8".to_string(),
                        }
                    })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JVal, TraceParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, TraceParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a `jobmig_trace/v1` JSON artifact back into events.
pub fn parse_trace_json(text: &str) -> Result<Vec<RawEvent>, TraceParseError> {
    let mut p = JParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    let fail = |at: usize, m: &str| TraceParseError {
        at,
        message: m.to_string(),
    };
    match root.get("schema").and_then(JVal::as_str) {
        Some("jobmig_trace/v1") => {}
        Some(other) => return Err(fail(0, &format!("unsupported schema {other:?}"))),
        None => return Err(fail(0, "missing schema field")),
    }
    let Some(JVal::Arr(items)) = root.get("events") else {
        return Err(fail(0, "missing events array"));
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let bad = |m: &str| fail(0, &format!("event #{i}: {m}"));
        let time_ns = item
            .get("t")
            .and_then(JVal::as_num)
            .ok_or_else(|| bad("missing t"))? as u64;
        let cat = item
            .get("cat")
            .and_then(JVal::as_str)
            .ok_or_else(|| bad("missing cat"))?
            .to_string();
        let name = item
            .get("name")
            .and_then(JVal::as_str)
            .ok_or_else(|| bad("missing name"))?
            .to_string();
        let kind = item
            .get("kind")
            .and_then(JVal::as_str)
            .and_then(RawKind::from_code)
            .ok_or_else(|| bad("missing or unknown kind"))?;
        let mut args = Vec::new();
        if let Some(JVal::Obj(fields)) = item.get("args") {
            for (k, v) in fields {
                let v = match v {
                    JVal::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                        ArgVal::U64(*n as u64)
                    }
                    JVal::Num(n) => ArgVal::F64(*n),
                    JVal::Str(s) => ArgVal::Str(s.clone()),
                    _ => return Err(bad("argument values must be numbers or strings")),
                };
                args.push((k.clone(), v));
            }
        }
        events.push(RawEvent {
            time_ns,
            cat,
            name,
            kind,
            args,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(cat: &str, name: &str, args: Vec<(&str, ArgVal)>) -> RawEvent {
        RawEvent {
            time_ns: 0,
            cat: cat.to_string(),
            name: name.to_string(),
            kind: RawKind::Instant,
            args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    fn cycle_ev(from: &str, event: &str, to: &str) -> RawEvent {
        instant(
            "proto",
            "cycle_transition",
            vec![
                ("from", ArgVal::Str(from.to_string())),
                ("event", ArgVal::Str(event.to_string())),
                ("to", ArgVal::Str(to.to_string())),
            ],
        )
    }

    #[test]
    fn happy_cycle_is_conformant() {
        let trace = vec![
            cycle_ev("idle", "trigger", "stall"),
            cycle_ev("stall", "stall_done", "migrate"),
            cycle_ev("migrate", "migrate_done", "restart"),
            cycle_ev("restart", "restart_done", "resume"),
            cycle_ev("resume", "resume_done", "complete"),
        ];
        let report = Observer::replay(&trace);
        assert!(report.is_conformant(), "{:?}", report.violation);
        assert_eq!(report.mapped, 5);
        assert_eq!(report.coverage.count("cycle/idle --trigger--> stall"), 1);
    }

    #[test]
    fn skipped_phase_is_rejected_with_shortest_suffix() {
        let trace = vec![
            cycle_ev("idle", "trigger", "stall"),
            // Jump straight to restart: not derivable from Stall.
            cycle_ev("stall", "migrate_done", "restart"),
        ];
        let report = Observer::replay(&trace);
        let v = report.violation.expect("must be nonconforming");
        assert_eq!(v.machine, "cycle");
        assert_eq!(v.index, 1);
        // The offending edge alone is already underivable (no table row
        // stall --migrate_done--> restart from ANY state), so the
        // shortest suffix is exactly one event.
        assert_eq!(v.suffix.len(), 1);
    }

    #[test]
    fn context_mismatch_needs_longer_suffix() {
        let trace = vec![
            cycle_ev("idle", "trigger", "stall"),
            // Claimed from-phase migrate: a real table row, but the
            // model is in stall — the suffix must include the prior
            // event to show the contradiction.
            cycle_ev("migrate", "migrate_done", "restart"),
        ];
        let report = Observer::replay(&trace);
        let v = report.violation.expect("must be nonconforming");
        assert_eq!(v.machine, "cycle");
        assert_eq!(v.suffix.len(), 2, "suffix: {:#?}", v.suffix);
    }

    #[test]
    fn live_cycle_is_conformant() {
        let trace = vec![
            cycle_ev("idle", "live_trigger", "precopy"),
            cycle_ev("precopy", "precopy_round", "precopy"),
            cycle_ev("precopy", "precopy_round", "precopy"),
            cycle_ev("precopy", "cutover", "stall"),
            cycle_ev("stall", "stall_done", "migrate"),
            cycle_ev("migrate", "migrate_done", "restart"),
            cycle_ev("restart", "restart_done", "resume"),
            cycle_ev("resume", "resume_done", "complete"),
        ];
        let report = Observer::replay(&trace);
        assert!(report.is_conformant(), "{:?}", report.violation);
        assert_eq!(
            report
                .coverage
                .count("cycle/idle --live_trigger--> precopy"),
            1
        );
        assert_eq!(
            report
                .coverage
                .count("cycle/precopy --precopy_round--> precopy"),
            2
        );
        // Diverging twin: fallback re-enters the same Stall machinery.
        let trace = vec![
            cycle_ev("idle", "live_trigger", "precopy"),
            cycle_ev("precopy", "precopy_round", "precopy"),
            cycle_ev("precopy", "fallback_stopcopy", "stall"),
            cycle_ev("stall", "stall_done", "migrate"),
        ];
        assert!(Observer::replay(&trace).is_conformant());
    }

    #[test]
    fn cutover_without_precopy_is_rejected() {
        let trace = vec![
            cycle_ev("idle", "trigger", "stall"),
            cycle_ev("precopy", "cutover", "stall"),
        ];
        let v = Observer::replay(&trace).violation.expect("nonconforming");
        assert_eq!(v.machine, "cycle");
    }

    #[test]
    fn wal_automaton_rejects_precopy_round_outside_precopy() {
        let wal = |seq: u64, record: &str| {
            instant(
                "wal",
                "wal_append",
                vec![
                    ("seq", ArgVal::U64(seq)),
                    ("record", ArgVal::Str(record.to_string())),
                    ("cycle", ArgVal::U64(1)),
                ],
            )
        };
        let trace = vec![wal(1, "cycle_start"), wal(2, "precopy_round")];
        let v = Observer::replay(&trace).violation.expect("nonconforming");
        assert_eq!(v.machine, "wal");
        assert!(v.reason.contains("precopy_round"), "{}", v.reason);
    }

    #[test]
    fn second_trigger_after_complete_is_a_new_lifecycle() {
        let trace = vec![
            cycle_ev("idle", "trigger", "stall"),
            cycle_ev("stall", "stall_done", "migrate"),
            cycle_ev("migrate", "migrate_done", "restart"),
            cycle_ev("restart", "restart_done", "resume"),
            cycle_ev("resume", "resume_done", "complete"),
            cycle_ev("idle", "trigger", "stall"),
        ];
        assert!(Observer::replay(&trace).is_conformant());
    }

    #[test]
    fn wal_automaton_rejects_commit_before_rewire() {
        let wal = |seq: u64, record: &str| {
            instant(
                "wal",
                "wal_append",
                vec![
                    ("seq", ArgVal::U64(seq)),
                    ("record", ArgVal::Str(record.to_string())),
                    ("cycle", ArgVal::U64(1)),
                ],
            )
        };
        let trace = vec![wal(1, "cycle_start"), wal(2, "commit_point")];
        let report = Observer::replay(&trace);
        let v = report.violation.expect("must be nonconforming");
        assert_eq!(v.machine, "wal");
        assert!(v.reason.contains("commit_point"), "{}", v.reason);
    }

    #[test]
    fn wal_automaton_rejects_seq_gap() {
        let wal = |seq: u64, record: &str| {
            instant(
                "wal",
                "wal_append",
                vec![
                    ("seq", ArgVal::U64(seq)),
                    ("record", ArgVal::Str(record.to_string())),
                    ("cycle", ArgVal::U64(1)),
                ],
            )
        };
        let trace = vec![wal(1, "cycle_start"), wal(3, "lease_acquire")];
        let v = Observer::replay(&trace).violation.expect("nonconforming");
        assert!(v.reason.contains("out of order"), "{}", v.reason);
    }

    #[test]
    fn fenced_publish_requires_a_takeover() {
        let trace = vec![instant(
            "wal",
            "fenced_publish",
            vec![
                ("name", ArgVal::Str("FTB_MIGRATE".to_string())),
                ("cycle", ArgVal::U64(1)),
                ("epoch", ArgVal::U64(0)),
            ],
        )];
        let v = Observer::replay(&trace).violation.expect("nonconforming");
        assert_eq!(v.machine, "fence");
    }

    #[test]
    fn coverage_universe_matches_tables() {
        let total = MigrationSpec::shipped().transitions.len()
            + NLA_TABLE.len()
            + RANK_TABLE.len()
            + LINK_TABLE.len();
        assert_eq!(Coverage::universe().len(), total);
    }

    #[test]
    fn trace_json_round_trips() {
        let trace = vec![
            cycle_ev("idle", "trigger", "stall"),
            RawEvent {
                time_ns: 42,
                cat: "pool".to_string(),
                name: "free_slots".to_string(),
                kind: RawKind::Counter,
                args: vec![
                    ("value".to_string(), ArgVal::F64(3.5)),
                    (
                        "label".to_string(),
                        ArgVal::Str("a \"quoted\"\nline".to_string()),
                    ),
                    ("n".to_string(), ArgVal::U64(7)),
                ],
            },
        ];
        let json = trace_to_json(&trace);
        let back = parse_trace_json(&json).expect("round trip");
        assert_eq!(back.len(), trace.len());
        assert_eq!(back[0].cat, "proto");
        assert_eq!(back[0].arg_str("event"), Some("trigger"));
        assert_eq!(back[1].kind, RawKind::Counter);
        assert_eq!(back[1].arg_u64("n"), Some(7));
        assert_eq!(back[1].arg_str("label"), Some("a \"quoted\"\nline"));
        assert_eq!(back[1].time_ns, 42);
    }

    #[test]
    fn coverage_json_lists_missing_edges() {
        let mut cov = Coverage::new();
        cov.mark(edge_key("cycle", "idle", "trigger", "stall"));
        let json = cov.to_json();
        assert!(json.contains("\"schema\": \"coverage_proto/v1\""));
        assert!(json.contains("\"idle --trigger--> stall\": 1"));
        // An unexercised edge shows up in the missing list.
        assert!(json.contains("\"resume --phase_timeout--> aborted\""));
    }
}
