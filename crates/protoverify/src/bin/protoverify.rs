//! CI entry point.
//!
//! With no arguments: exhaustively check the shipped protocol tables
//! across a grid of spare-pool sizes and retry budgets. Exits nonzero
//! (with a minimal counterexample trace on stderr) if any invariant
//! fails.
//!
//! Subcommands close the static/dynamic loop over traces the simulator
//! exported (`TRACE_JSON_DIR=<dir> cargo test --test conformance`):
//!
//! - `--conformance <trace.json>...` — replay each trace through the
//!   composed model's online observer; exits nonzero on the first
//!   non-derivable event (printing the shortest nonconforming suffix).
//! - `--coverage <trace.json>... [-o <file>]` — merge the traces' edge
//!   coverage, print the per-edge table with never-exercised edges
//!   called out, and optionally write the merged `COVERAGE_proto.json`.

use protoverify::{check, check_fleet, CheckConfig, Coverage, FleetConfig, MigrationSpec};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: protoverify\n\
        \x20      protoverify --conformance <trace.json>...\n\
        \x20      protoverify --coverage <trace.json>... [-o <coverage.json>]"
    );
    ExitCode::from(2)
}

/// Parse one exported trace file into raw events.
fn load_trace(path: &str) -> Result<Vec<protoverify::RawEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    protoverify::parse_trace_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// `--conformance`: every trace must refine the model.
fn run_conformance(paths: &[String]) -> ExitCode {
    let mut failed = false;
    for path in paths {
        let events = match load_trace(path) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("protoverify: {e}");
                return ExitCode::from(2);
            }
        };
        let report = protoverify::Observer::replay(&events);
        match &report.violation {
            None => println!(
                "  {path}: conformant — {} events, {} mapped onto model edges, \
                 {}/{} edges exercised",
                report.events,
                report.mapped,
                report.coverage.covered(),
                Coverage::universe().len()
            ),
            Some(v) => {
                failed = true;
                eprintln!("  {path}: NONCONFORMANT");
                eprintln!("{v}");
            }
        }
    }
    if failed {
        eprintln!("protoverify: conformance FAILED");
        ExitCode::FAILURE
    } else {
        println!("protoverify: {} trace(s) refine the model", paths.len());
        ExitCode::SUCCESS
    }
}

/// `--coverage`: merge edge coverage across traces, report the gaps.
fn run_coverage(paths: &[String], out: Option<&str>) -> ExitCode {
    let mut total = Coverage::new();
    for path in paths {
        let events = match load_trace(path) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("protoverify: {e}");
                return ExitCode::from(2);
            }
        };
        let report = protoverify::Observer::replay(&events);
        if let Some(v) = &report.violation {
            eprintln!("  {path}: NONCONFORMANT (coverage not credited)");
            eprintln!("{v}");
            return ExitCode::FAILURE;
        }
        total.merge(&report.coverage);
    }
    let universe = Coverage::universe();
    for edge in &universe {
        let n = total.count(edge);
        if n > 0 {
            println!("  {n:>6}  {edge}");
        }
    }
    let missing = total.missing();
    for edge in &missing {
        println!("   never  {edge}");
    }
    println!(
        "protoverify: {}/{} model edges exercised ({:.1}%) across {} trace(s)",
        total.covered(),
        universe.len(),
        total.ratio() * 100.0,
        paths.len()
    );
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, total.to_json()) {
            eprintln!("protoverify: write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("protoverify: wrote {path}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--conformance") => {
            return if args.len() < 2 {
                usage()
            } else {
                run_conformance(&args[1..])
            };
        }
        Some("--coverage") => {
            let mut paths = Vec::new();
            let mut out = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "-o" {
                    match it.next() {
                        Some(p) => out = Some(p.as_str()),
                        None => return usage(),
                    }
                } else {
                    paths.push(a.clone());
                }
            }
            return if paths.is_empty() {
                usage()
            } else {
                run_coverage(&paths, out)
            };
        }
        Some("--help") | Some("-h") => {
            let _ = usage();
            return ExitCode::SUCCESS;
        }
        Some(_) => return usage(),
        None => {}
    }

    let spec = MigrationSpec::shipped();
    let mut total_states = 0usize;
    let mut total_transitions = 0usize;
    let mut failed = false;

    println!("protoverify: checking shipped migration spec");
    for pipelined in [false, true] {
        let mode = if pipelined { "pipelined" } else { "barrier" };
        for spares in 0..=3u32 {
            for max_attempts in 1..=4u32 {
                let cfg = CheckConfig {
                    spares,
                    max_attempts,
                    pipelined,
                    ..CheckConfig::default()
                };
                let report = check(&spec, &cfg);
                total_states += report.stats.states;
                total_transitions += report.stats.transitions;
                match &report.violation {
                    None => {
                        println!(
                            "  {mode} spares={spares} max_attempts={max_attempts}: \
                             {} states, {} transitions, {} terminals — all invariants hold",
                            report.stats.states, report.stats.transitions, report.stats.terminals
                        );
                    }
                    Some(cx) => {
                        failed = true;
                        eprintln!(
                            "  {mode} spares={spares} max_attempts={max_attempts}: VIOLATION"
                        );
                        eprintln!("{cx}");
                        let plan = cx.to_fault_plan(0);
                        eprintln!("  replay plan: {plan:?}");
                    }
                }
            }
        }
    }

    println!("protoverify: checking fleet spare-pool accounting");
    for jobs in 1..=3u8 {
        for spares in 1..=3u8 {
            let report = check_fleet(&FleetConfig {
                jobs,
                spares,
                mutation: None,
            });
            total_states += report.states;
            total_transitions += report.transitions;
            match &report.violation {
                None => {
                    println!(
                        "  jobs={jobs} spares={spares}: {} states, {} transitions — \
                         lease exclusivity and pool conservation hold",
                        report.states, report.transitions
                    );
                }
                Some(v) => {
                    failed = true;
                    eprintln!("  jobs={jobs} spares={spares}: VIOLATION");
                    eprintln!("{v}");
                }
            }
        }
    }

    println!("protoverify: explored {total_states} states / {total_transitions} transitions total");
    if failed {
        eprintln!("protoverify: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "protoverify: deadlock-freedom, no-lost-rank, rollback-restores-source, \
             complete-or-degrade, phase-consistency, resume-or-rollback, \
             single-lease-holder, lease-exclusivity, pool-conservation all proven"
        );
        ExitCode::SUCCESS
    }
}
