//! CI entry point: exhaustively check the shipped protocol tables across
//! a grid of spare-pool sizes and retry budgets. Exits nonzero (with a
//! minimal counterexample trace on stderr) if any invariant fails.

use protoverify::{check, check_fleet, CheckConfig, FleetConfig, MigrationSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let spec = MigrationSpec::shipped();
    let mut total_states = 0usize;
    let mut total_transitions = 0usize;
    let mut failed = false;

    println!("protoverify: checking shipped migration spec");
    for pipelined in [false, true] {
        let mode = if pipelined { "pipelined" } else { "barrier" };
        for spares in 0..=3u32 {
            for max_attempts in 1..=4u32 {
                let cfg = CheckConfig {
                    spares,
                    max_attempts,
                    pipelined,
                    ..CheckConfig::default()
                };
                let report = check(&spec, &cfg);
                total_states += report.stats.states;
                total_transitions += report.stats.transitions;
                match &report.violation {
                    None => {
                        println!(
                            "  {mode} spares={spares} max_attempts={max_attempts}: \
                             {} states, {} transitions, {} terminals — all invariants hold",
                            report.stats.states, report.stats.transitions, report.stats.terminals
                        );
                    }
                    Some(cx) => {
                        failed = true;
                        eprintln!(
                            "  {mode} spares={spares} max_attempts={max_attempts}: VIOLATION"
                        );
                        eprintln!("{cx}");
                        let plan = cx.to_fault_plan(0);
                        eprintln!("  replay plan: {plan:?}");
                    }
                }
            }
        }
    }

    println!("protoverify: checking fleet spare-pool accounting");
    for jobs in 1..=3u8 {
        for spares in 1..=3u8 {
            let report = check_fleet(&FleetConfig {
                jobs,
                spares,
                mutation: None,
            });
            total_states += report.states;
            total_transitions += report.transitions;
            match &report.violation {
                None => {
                    println!(
                        "  jobs={jobs} spares={spares}: {} states, {} transitions — \
                         lease exclusivity and pool conservation hold",
                        report.states, report.transitions
                    );
                }
                Some(v) => {
                    failed = true;
                    eprintln!("  jobs={jobs} spares={spares}: VIOLATION");
                    eprintln!("{v}");
                }
            }
        }
    }

    println!("protoverify: explored {total_states} states / {total_transitions} transitions total");
    if failed {
        eprintln!("protoverify: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "protoverify: deadlock-freedom, no-lost-rank, rollback-restores-source, \
             complete-or-degrade, phase-consistency, resume-or-rollback, \
             single-lease-holder, lease-exclusivity, pool-conservation all proven"
        );
        ExitCode::SUCCESS
    }
}
