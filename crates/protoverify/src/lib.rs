//! Declarative protocol specification and explicit-state model checking
//! for the RDMA job-migration framework.
//!
//! The paper's four-phase protocol (Job Stall → Migration → Restart →
//! Resume, §III-A), the per-rank lifecycle, the NLA states
//! (`MIGRATION_READY` / `MIGRATION_SPARE` / `MIGRATION_INACTIVE`) and the
//! FTB agent's self-healing uplink are specified here as typed transition
//! tables ([`spec`]). The live runtime drives its transitions through the
//! same tables it checks (see `jobmig-core`'s `CycleStepper` use and the
//! `nla_next` call sites), so the spec cannot drift from the
//! implementation.
//!
//! [`model`] composes the tables with `faultplane`'s fault alphabet, the
//! spare pool, and the retry budget into one product state machine and
//! exhaustively explores it, proving:
//!
//! * **deadlock-freedom** — every non-terminal state has a successor;
//! * **no-lost-rank** — no reachable state loses a rank (neither live
//!   nor recoverable from an image);
//! * **rollback-restores-source** — every abort leaves the job whole on
//!   the source with both NLAs restored;
//! * **complete-or-degrade** — every terminal state is a completed
//!   migration or a checkpoint-to-store degradation;
//! * **phase-consistency** — the phase machine never runs ahead of or
//!   behind the ranks' actual location;
//! * **resume-or-rollback** — a coordinator crash at any WAL append
//!   boundary resolves to exactly a standby takeover that resumes the
//!   in-flight phase or rolls the attempt back (and a committed cycle
//!   only rolls forward);
//! * **single-lease-holder** — the takeover's fencing epoch keeps a
//!   deposed coordinator's stale writes from ever creating a second
//!   lease holder for the job's spare.
//!
//! Violations come back as a minimal trace that lowers to a concrete
//! [`faultplane::FaultPlan`] for replay in the simulator.
//!
//! Run the checker over the shipped tables with
//! `cargo run -p protoverify`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! [`fleet`] lifts the check one level up: many jobs sharing one spare
//! pool. It proves **lease exclusivity** (no spare leased to two jobs at
//! once) and **pool conservation** (every completed or aborted cycle
//! returns exactly one node; a spare death is the sole, accounted
//! zero-return settle).
//!
//! [`confcheck`] closes the loop from the dynamic side: it refines live
//! simulator traces against these same tables (an event→edge table maps
//! trace events onto model transitions; an online observer rejects any
//! sequence the composed model cannot derive) and tracks which table
//! rows the test suite exercises (`COVERAGE_proto.json`).

pub mod confcheck;
pub mod fleet;
pub mod model;
pub mod spec;

pub use confcheck::{
    classify, observe_trace, parse_trace_json, raw_trace, trace_to_json, ArgVal, ConformanceReport,
    Coverage, EdgeKind, EventRule, Nonconformance, Observer, RawEvent, RawKind, TraceParseError,
    EVENT_EDGE_TABLE,
};
pub use fleet::{
    check_fleet, FleetConfig, FleetEvent, FleetJob, FleetMutation, FleetNode, FleetReport,
    FleetState, FleetViolation,
};
pub use model::{
    check, CheckConfig, CheckReport, CheckStats, Counterexample, EventLabel, Invariant, ModelState,
    RankSite, TargetNla, PIPELINE_RANKS,
};
pub use spec::{
    fault_edges, link_next, nla_next, rank_next, Action, CycleEvent, CyclePhase, CycleStepper,
    CycleTransition, FaultEdge, Guard, GuardCtx, LinkEvent, LinkState, MigrationSpec, NlaEvent,
    NlaState, RankEvent, RankLife, StepError,
};
