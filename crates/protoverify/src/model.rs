//! Exhaustive explicit-state model checker over the composed protocol.
//!
//! The model is the product of the migration-cycle phase machine, the two
//! NLA state machines (source and target), an abstraction of where the
//! job's ranks live, the spare pool, and the retry budget — with every
//! fault edge from [`crate::spec::fault_edges`] enabled at every state it
//! can strike. A breadth-first search enumerates the whole space, checks
//! each invariant at each state, and on violation reconstructs the
//! *shortest* event trace leading there. The trace can be lowered to a
//! concrete [`faultplane::FaultPlan`] and replayed in the simulator.

use crate::spec::{
    fault_edges, Action, CycleEvent, CyclePhase, FaultEdge, GuardCtx, MigrationSpec,
};
use crate::NlaState;
use faultplane::{FaultKind, FaultPlan, FaultSpec, MigPhase, NetSel, StoreFault, WalPoint};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::Duration;

/// Where the job's migrating ranks live, abstracted to the granularity
/// the invariants need (all ranks move together through each phase; a
/// per-rank product would multiply states without adding reachable
/// violations, because the runtime serialises rank work inside a phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RankSite {
    /// Running on the source node (no cycle, or rolled back).
    RunningOnSource,
    /// Suspended and drained on the source (Phase 1 complete).
    SuspendedOnSource,
    /// Captured; images staged on the target (Phase 2 complete).
    ImagesOnTarget,
    /// Restarted from images on the target (Phase 3 complete).
    RestartedOnTarget,
    /// Running on the target (Phase 4 complete).
    RunningOnTarget,
    /// Nowhere: neither a live incarnation nor a recoverable image. This
    /// is the "lost rank" sink — reaching it is always a violation.
    Lost,
}

impl RankSite {
    /// Stable lower-snake name.
    pub fn name(&self) -> &'static str {
        match self {
            RankSite::RunningOnSource => "running_on_source",
            RankSite::SuspendedOnSource => "suspended_on_source",
            RankSite::ImagesOnTarget => "images_on_target",
            RankSite::RestartedOnTarget => "restarted_on_target",
            RankSite::RunningOnTarget => "running_on_target",
            RankSite::Lost => "lost",
        }
    }
}

/// The target node's condition in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TargetNla {
    /// No attempt in flight (no spare consumed).
    None,
    /// The consumed spare is alive, its NLA in the given state.
    Alive(NlaState),
    /// The consumed spare crashed mid-attempt.
    Dead,
}

/// Ranks tracked individually by the pipelined refinement. Two is the
/// smallest count that distinguishes "some ranks restarted while others
/// still stream" from the barrier protocol; more ranks multiply states
/// without enabling new interleavings of the counters.
pub const PIPELINE_RANKS: u8 = 2;

/// Bound on modelled pre-copy rounds per attempt. The runtime's
/// convergence controller always cuts over or falls back within a finite
/// round budget; two modelled rounds already distinguish "round N dirtied
/// pages behind round N-1's snapshot" from a single-shot copy, and more
/// rounds only replicate the same loop.
pub const PRECOPY_ROUND_CAP: u8 = 2;

/// One state of the composed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelState {
    /// Migration-cycle phase.
    pub phase: CyclePhase,
    /// Attempts started so far.
    pub attempt: u32,
    /// Spares remaining in the pool.
    pub spares: u32,
    /// Source node's NLA state.
    pub source: NlaState,
    /// Target node's condition.
    pub target: TargetNla,
    /// Where the ranks live.
    pub ranks: RankSite,
    /// Whether a degrade checkpoint has been written.
    pub checkpointed: bool,
    /// Pipelined refinement: ranks whose images finished assembly on the
    /// target this attempt (0 when the refinement is off).
    pub staged: u8,
    /// Pipelined refinement: ranks restarted on the target this attempt.
    /// Must never exceed `staged` — a restart without a staged image
    /// reads garbage.
    pub restarted: u8,
    /// The Job Manager died at a WAL append boundary and the standby has
    /// not yet taken over. While down, only takeover edges are enabled
    /// (the model collapses the failure-detector window to a point).
    pub coord_down: bool,
    /// Fencing epoch: bumped by each takeover. Bounded to one takeover
    /// per run (the runtime's one-crash-per-cycle model), so 0 or 1.
    pub epoch: u8,
    /// A deposed coordinator still exists whose in-flight write has not
    /// yet reached the spare pool / FTB (the zombie window).
    pub zombie: bool,
    /// The zombie's stale-epoch write *took effect* on the spare pool — a
    /// lease now exists under a deposed epoch. Reachable only with
    /// fencing disabled; always a [`Invariant::SingleLeaseHolder`]
    /// violation.
    pub zombie_lease: bool,
    /// Live refinement: dirty segments exist that the target's staged
    /// image does not yet reflect (the job kept writing behind a pre-copy
    /// snapshot). Set on entering `Precopy`; cleared only by
    /// `StreamImages` (the stop-and-copy round carries every pending
    /// segment) or `Rollback` (the source incarnation, which has every
    /// write, is the one that survives). `Complete` with `dirty` set is a
    /// lost-dirty-segment violation.
    pub dirty: bool,
    /// Live refinement: pre-copy rounds completed this attempt, bounded
    /// by [`PRECOPY_ROUND_CAP`].
    pub precopy_rounds: u8,
}

impl ModelState {
    /// The initial state for a pool of `spares` spare nodes.
    pub fn initial(spares: u32) -> Self {
        ModelState {
            phase: CyclePhase::Idle,
            attempt: 0,
            spares,
            source: NlaState::MigrationReady,
            target: TargetNla::None,
            ranks: RankSite::RunningOnSource,
            checkpointed: false,
            staged: 0,
            restarted: 0,
            coord_down: false,
            epoch: 0,
            zombie: false,
            zombie_lease: false,
            dirty: false,
            precopy_rounds: 0,
        }
    }
}

impl fmt::Display for ModelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let target = match self.target {
            TargetNla::None => "-".to_string(),
            TargetNla::Alive(s) => s.to_string(),
            TargetNla::Dead => "DEAD".to_string(),
        };
        write!(
            f,
            "phase={} attempt={} spares={} source={} target={} ranks={}{}",
            self.phase,
            self.attempt,
            self.spares,
            self.source,
            target,
            self.ranks.name(),
            if self.checkpointed { " ckpt" } else { "" }
        )?;
        if self.staged > 0 || self.restarted > 0 {
            write!(f, " staged={} restarted={}", self.staged, self.restarted)?;
        }
        if self.coord_down {
            write!(f, " COORD-DOWN")?;
        }
        if self.epoch > 0 {
            write!(f, " epoch={}", self.epoch)?;
        }
        if self.zombie {
            write!(f, " zombie")?;
        }
        if self.zombie_lease {
            write!(f, " ZOMBIE-LEASE")?;
        }
        if self.dirty {
            write!(f, " dirty")?;
        }
        if self.precopy_rounds > 0 {
            write!(f, " precopy_rounds={}", self.precopy_rounds)?;
        }
        Ok(())
    }
}

/// The label on one explored edge: the cycle event that fired, and the
/// fault (kind at phase) that caused it, if it was a fault edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLabel {
    /// The cycle event.
    pub event: CycleEvent,
    /// The fault behind it, when the edge came from [`fault_edges`].
    pub fault: Option<(MigPhase, FaultKind)>,
    /// The attempt number (1-based) in flight when the event fired; 0
    /// when no attempt was in flight.
    pub attempt: u32,
}

impl fmt::Display for EventLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fault {
            Some((phase, kind)) => {
                write!(
                    f,
                    "{} [{} at {}, attempt {}]",
                    self.event, kind, phase, self.attempt
                )
            }
            None => write!(f, "{}", self.event),
        }
    }
}

/// The invariants the checker proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Every non-terminal state has at least one outgoing transition.
    DeadlockFreedom,
    /// No reachable state has `ranks == Lost`, and terminal states have
    /// all ranks running somewhere.
    NoLostRank,
    /// In `Aborted`, the job is whole again on the source: ranks running
    /// there, source NLA `MIGRATION_READY`, and no half-consumed target
    /// (any surviving target is back to `MIGRATION_SPARE`).
    RollbackRestoresSource,
    /// Every terminal state is `Complete` (ranks running on the target,
    /// target NLA ready, source inactive) or `Degraded` (ranks running on
    /// the source with a checkpoint written).
    CompleteOrDegrade,
    /// The cycle phase and the rank site agree (the phase machine never
    /// runs ahead of or behind the data): e.g. `Resume` is unreachable
    /// while ranks are still suspended.
    PhaseConsistency,
    /// A coordinator crash always resolves to exactly resume-from-point
    /// or rollback: while the coordinator is down the *only* enabled
    /// edges are the standby's takeover edges, each lands the cycle at
    /// the crashed phase (resume) or in `Aborted` (rollback), and a
    /// post-commit crash (`Resume` phase) never offers rollback — a
    /// committed cycle can only roll forward.
    ResumeOrRollback,
    /// Every outstanding spare lease is held under the current fencing
    /// epoch: a deposed coordinator's stale-epoch write can never create
    /// a second lease holder for the job's spare.
    SingleLeaseHolder,
    /// Live migration never completes while dirty segments exist that the
    /// target's image does not reflect: every path from `Precopy` to
    /// `Complete` passes through a stop-and-copy round (`StreamImages`)
    /// that carries the residual delta, and every abort hands the job
    /// back to the source incarnation, which has every write.
    NoLostDirtySegment,
}

impl Invariant {
    /// Stable kebab name, used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::DeadlockFreedom => "deadlock-freedom",
            Invariant::NoLostRank => "no-lost-rank",
            Invariant::RollbackRestoresSource => "rollback-restores-source",
            Invariant::CompleteOrDegrade => "complete-or-degrade",
            Invariant::PhaseConsistency => "phase-consistency",
            Invariant::ResumeOrRollback => "resume-or-rollback",
            Invariant::SingleLeaseHolder => "single-lease-holder",
            Invariant::NoLostDirtySegment => "no-lost-dirty-segment",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A minimal (shortest-path) trace from the initial state to a state
/// violating an invariant.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Why the final state violates it.
    pub reason: String,
    /// The states along the trace, initial state first.
    pub states: Vec<ModelState>,
    /// The labels between them (`labels.len() == states.len() - 1`).
    pub labels: Vec<EventLabel>,
}

impl Counterexample {
    /// Lower the trace to a concrete [`FaultPlan`] with the given RNG
    /// seed. Spare-crash edges map exactly (`FaultSpec::SpareCrash`
    /// carries phase + attempt); timeout edges map to the most aggressive
    /// fault of their kind so the same failure manifests in the
    /// simulator.
    pub fn to_fault_plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for label in &self.labels {
            let Some((phase, kind)) = label.fault else {
                continue;
            };
            let attempt = label.attempt.max(1);
            let spec = match kind {
                FaultKind::SpareCrash => FaultSpec::SpareCrash { phase, attempt },
                FaultKind::NetDrop => FaultSpec::NetDrop {
                    net: NetSel::Gige,
                    after: Duration::ZERO,
                    count: 10_000,
                },
                FaultKind::LinkFlap => FaultSpec::LinkFlap {
                    net: NetSel::Gige,
                    at: Duration::ZERO,
                    lasts: Duration::from_secs(3600),
                },
                FaultKind::RdmaCqError => FaultSpec::RdmaCqError { nth: 1 },
                FaultKind::RdmaCorrupt => FaultSpec::RdmaCorrupt { nth: 1 },
                FaultKind::BlcrWriteError => FaultSpec::BlcrWriteError { nth: 1 },
                FaultKind::StoreWrite => FaultSpec::StoreWrite {
                    fault: StoreFault::IoError,
                    nth: 1,
                },
                FaultKind::CoordinatorCrash => FaultSpec::CoordinatorCrash {
                    at: WalPoint::Phase(phase),
                },
            };
            plan = plan.with(spec);
        }
        plan
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "  reason: {}", self.reason)?;
        writeln!(f, "  trace ({} steps):", self.labels.len())?;
        writeln!(f, "    0: {}", self.states[0])?;
        for (i, label) in self.labels.iter().enumerate() {
            writeln!(f, "       --{label}-->")?;
            writeln!(f, "    {}: {}", i + 1, self.states[i + 1])?;
        }
        Ok(())
    }
}

/// Statistics from one exhaustive run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Distinct states reached.
    pub states: usize,
    /// Transitions explored (including duplicates into seen states).
    pub transitions: usize,
    /// Terminal states reached.
    pub terminals: usize,
}

/// Outcome of a model-checking run.
#[derive(Debug)]
pub struct CheckReport {
    /// Exploration statistics.
    pub stats: CheckStats,
    /// The first (shortest-trace) violation, if any.
    pub violation: Option<Counterexample>,
}

impl CheckReport {
    /// Whether every invariant held on every reachable state.
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// The checker's configuration.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Spares in the initial pool.
    pub spares: u32,
    /// Attempt budget (mirrors `calib::RecoveryConfig::max_attempts`).
    pub max_attempts: u32,
    /// Enable the pipelined-data-path refinement: [`PIPELINE_RANKS`]
    /// ranks stage and restart individually, with restarts allowed while
    /// the pull is still in flight (the `overlap` pool mode). Off, the
    /// model is the barrier protocol and `staged`/`restarted` stay 0.
    pub pipelined: bool,
    /// Enable the coordinator-crash edges: the Job Manager can die at a
    /// WAL append boundary in any live phase (once per run), freezing
    /// the cycle until the standby's takeover edge fires.
    pub coordinator_crash: bool,
    /// Whether takeover fences the deposed epoch (the shipped protocol).
    /// `false` models a fencing-free takeover, where the zombie's
    /// stale-epoch write lands — used by the negative test to show the
    /// fence is what [`Invariant::SingleLeaseHolder`] rests on.
    pub fenced: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            spares: 1,
            max_attempts: 3,
            pipelined: false,
            coordinator_crash: true,
            fenced: true,
        }
    }
}

fn guard_ctx(s: &ModelState, cfg: &CheckConfig) -> GuardCtx {
    GuardCtx {
        spares_left: s.spares,
        attempts_left: cfg.max_attempts.saturating_sub(s.attempt),
    }
}

/// Apply a transition's declarative actions to the abstract state.
fn apply(s: &ModelState, to: CyclePhase, actions: &[Action]) -> ModelState {
    let mut n = *s;
    n.phase = to;
    for a in actions {
        match a {
            Action::ConsumeSpare => {
                n.spares = n.spares.saturating_sub(1);
                n.attempt += 1;
                n.target = TargetNla::Alive(NlaState::MigrationSpare);
            }
            Action::ReturnSpare => {
                if matches!(n.target, TargetNla::Alive(_)) {
                    n.spares += 1;
                }
                n.target = TargetNla::None;
            }
            Action::SpareLost => {
                n.target = TargetNla::Dead;
            }
            Action::SuspendRanks => {
                n.ranks = RankSite::SuspendedOnSource;
            }
            Action::StreamImages => {
                n.ranks = RankSite::ImagesOnTarget;
                n.source = NlaState::MigrationInactive;
                // The stop-and-copy round streams every pending segment —
                // residual dirty delta after a cutover, the full image
                // after a fallback — so nothing dirty is outstanding.
                n.dirty = false;
            }
            Action::RestartRanks => {
                n.ranks = RankSite::RestartedOnTarget;
                if let TargetNla::Alive(_) = n.target {
                    n.target = TargetNla::Alive(NlaState::MigrationReady);
                }
            }
            Action::ResumeRanks => {
                n.ranks = match n.ranks {
                    RankSite::RestartedOnTarget => RankSite::RunningOnTarget,
                    RankSite::SuspendedOnSource => RankSite::RunningOnSource,
                    other => other,
                };
            }
            Action::Rollback => {
                // Resurrect/resume on the source from captured metadata.
                // The surviving incarnation is the source's, which has
                // every write — pre-copied target state is discarded, so
                // no dirty segment can be lost.
                n.ranks = RankSite::RunningOnSource;
                n.source = NlaState::MigrationReady;
                n.dirty = false;
                if let TargetNla::Alive(_) = n.target {
                    n.target = TargetNla::Alive(NlaState::MigrationSpare);
                }
            }
            Action::CheckpointToStore => {
                n.checkpointed = true;
            }
        }
    }
    // An aborted attempt's surviving spare returns to the pool unless the
    // transition said otherwise (SpareLost / ReturnSpare already ran).
    if to == CyclePhase::Aborted {
        match n.target {
            TargetNla::Alive(_) => {
                n.spares += 1;
                n.target = TargetNla::None;
            }
            TargetNla::Dead => {
                n.target = TargetNla::None;
            }
            TargetNla::None => {}
        }
        // Rollback wipes the attempt's per-rank pipeline progress: any
        // rank already restarted on the abandoned target is pulled back
        // to the source, staged images are discarded with the target.
        n.staged = 0;
        n.restarted = 0;
    }
    // The round counter only means anything while pre-copying; resetting
    // it on exit keeps downstream phases from splitting by round history.
    if to != CyclePhase::Precopy {
        n.precopy_rounds = 0;
    }
    n
}

/// The cycle events the *protocol itself* (not a fault) fires from a
/// phase — phase completions and the recovery decisions.
fn protocol_events(phase: CyclePhase) -> &'static [CycleEvent] {
    use CycleEvent::*;
    match phase {
        CyclePhase::Idle => &[Trigger, LiveTrigger, Degrade],
        CyclePhase::Precopy => &[PrecopyRound, Cutover, FallbackStopCopy],
        CyclePhase::Stall => &[StallDone],
        CyclePhase::Migrate => &[MigrateDone],
        CyclePhase::Restart => &[RestartDone],
        CyclePhase::Resume => &[ResumeDone],
        CyclePhase::Aborted => &[Retry, Degrade],
        CyclePhase::Complete | CyclePhase::Degraded => &[],
    }
}

fn successors(
    spec: &MigrationSpec,
    edges: &[FaultEdge],
    cfg: &CheckConfig,
    s: &ModelState,
) -> Vec<(EventLabel, ModelState)> {
    let g = guard_ctx(s, cfg);
    let mut out = Vec::new();
    if s.coord_down {
        // The coordinator is dead: nothing drives the phase machine and
        // no further fault manifests until the standby takes over. The
        // takeover decision mirrors the runtime's journal-tail analysis:
        //  * Stall — the FTB_MIGRATE publish provably never went out
        //    (crashes fire only at append boundaries), so rollback is the
        //    only branch;
        //  * Migrate / Restart — the autonomous data path may finish
        //    (resume-from-point) or a fresh deadline may expire
        //    (rollback): both branches are explored;
        //  * Resume — past the commit point every rank restarted on the
        //    target, so the standby can only roll forward.
        let label = |event| EventLabel {
            event,
            fault: None,
            attempt: s.attempt,
        };
        let resume = {
            let mut n = *s;
            n.coord_down = false;
            n.epoch += 1;
            n.zombie = true;
            n
        };
        let rollback = {
            let mut n = apply(
                s,
                CyclePhase::Aborted,
                &[Action::Rollback, Action::ReturnSpare],
            );
            n.coord_down = false;
            n.epoch += 1;
            n.zombie = true;
            n
        };
        match s.phase {
            // A crash mid-pre-copy is recovered by abandoning the rounds:
            // the job never stopped running on the source, so the standby
            // rolls back and loses nothing but streamed bytes.
            CyclePhase::Precopy => out.push((label(CycleEvent::TakeoverRollback), rollback)),
            CyclePhase::Stall => out.push((label(CycleEvent::TakeoverRollback), rollback)),
            CyclePhase::Migrate | CyclePhase::Restart => {
                out.push((label(CycleEvent::TakeoverResume), resume));
                out.push((label(CycleEvent::TakeoverRollback), rollback));
            }
            CyclePhase::Resume => out.push((label(CycleEvent::TakeoverResume), resume)),
            _ => {}
        }
        return out;
    }
    if s.zombie {
        // The deposed coordinator's in-flight write reaches the spare
        // pool. Fenced, its stale epoch is rejected and the zombie is
        // spent; unfenced, it creates a second lease holder.
        let mut n = *s;
        n.zombie = false;
        if !cfg.fenced {
            n.zombie_lease = true;
        }
        out.push((
            EventLabel {
                event: CycleEvent::ZombieSettle,
                fault: None,
                attempt: s.attempt,
            },
            n,
        ));
    }
    if cfg.coordinator_crash && s.epoch == 0 {
        if let Some(mig) = s.phase.mig_phase() {
            let mut n = *s;
            n.coord_down = true;
            out.push((
                EventLabel {
                    event: CycleEvent::CoordCrash,
                    fault: Some((mig, FaultKind::CoordinatorCrash)),
                    attempt: s.attempt,
                },
                n,
            ));
        }
    }
    for &ev in protocol_events(s.phase) {
        if cfg.pipelined {
            // Completion gates of the pipelined refinement: a phase
            // cannot close while per-rank work is outstanding.
            let gated = match (s.phase, ev) {
                (CyclePhase::Migrate, CycleEvent::MigrateDone) => s.staged < PIPELINE_RANKS,
                (CyclePhase::Restart, CycleEvent::RestartDone) => s.restarted < PIPELINE_RANKS,
                _ => false,
            };
            if gated {
                continue;
            }
        }
        // Bound the pre-copy loop: the runtime's convergence controller
        // always decides within a finite round budget.
        if ev == CycleEvent::PrecopyRound && s.precopy_rounds >= PRECOPY_ROUND_CAP {
            continue;
        }
        if let Some(t) = spec.next(s.phase, ev, &g) {
            let mut n = apply(s, t.to, &t.actions);
            if ev == CycleEvent::LiveTrigger {
                // The job keeps writing behind every pre-copy snapshot.
                n.dirty = true;
            }
            if ev == CycleEvent::PrecopyRound {
                n.precopy_rounds += 1;
            }
            out.push((
                EventLabel {
                    event: ev,
                    fault: None,
                    attempt: s.attempt,
                },
                n,
            ));
        }
    }
    if cfg.pipelined {
        // Micro-events of the pipelined data path. A rank's image lands
        // (`RankStaged`) only while the pull is in flight; a *staged*
        // rank may restart (`RankRestarted`) during Migrate — the
        // overlap — or during Restart, never ahead of its image. The
        // coarse `ranks` site keeps tracking the trailing rank.
        if s.phase == CyclePhase::Migrate && s.staged < PIPELINE_RANKS {
            let mut n = *s;
            n.staged += 1;
            out.push((
                EventLabel {
                    event: CycleEvent::RankStaged,
                    fault: None,
                    attempt: s.attempt,
                },
                n,
            ));
        }
        if matches!(s.phase, CyclePhase::Migrate | CyclePhase::Restart) && s.restarted < s.staged {
            let mut n = *s;
            n.restarted += 1;
            out.push((
                EventLabel {
                    event: CycleEvent::RankRestarted,
                    fault: None,
                    attempt: s.attempt,
                },
                n,
            ));
        }
    }
    if let Some(mig) = s.phase.mig_phase() {
        for e in edges.iter().filter(|e| e.phase == mig) {
            if let Some(t) = spec.next(s.phase, e.effect, &g) {
                out.push((
                    EventLabel {
                        event: e.effect,
                        fault: Some((e.phase, e.kind)),
                        attempt: s.attempt,
                    },
                    apply(s, t.to, &t.actions),
                ));
            }
        }
    }
    out
}

/// Check one state against every invariant except deadlock-freedom
/// (which needs the successor set and is handled in the search loop).
fn violated(s: &ModelState, cfg: &CheckConfig) -> Option<(Invariant, String)> {
    if s.zombie_lease {
        return Some((
            Invariant::SingleLeaseHolder,
            "a spare lease exists under a deposed coordinator epoch — \
             the pool would commit the same spare twice"
                .into(),
        ));
    }
    if s.coord_down && s.phase.mig_phase().is_none() {
        return Some((
            Invariant::ResumeOrRollback,
            format!(
                "coordinator crash pending in phase {}, which has no \
                 journal tail to resume or roll back",
                s.phase
            ),
        ));
    }
    if s.ranks == RankSite::Lost {
        return Some((
            Invariant::NoLostRank,
            "ranks neither live anywhere nor recoverable from an image".into(),
        ));
    }
    if s.phase == CyclePhase::Complete && s.dirty {
        return Some((
            Invariant::NoLostDirtySegment,
            "migration completed while dirty segments were outstanding — \
             the restarted image is missing writes the job made behind \
             the last pre-copy snapshot"
                .into(),
        ));
    }
    // Pipelined refinement: a restart may never run ahead of its staged
    // image — there is nothing to restart from.
    if s.restarted > s.staged {
        return Some((
            Invariant::NoLostRank,
            format!(
                "{} ranks restarted but only {} images staged",
                s.restarted, s.staged
            ),
        ));
    }
    if cfg.pipelined && s.phase == CyclePhase::Complete && s.restarted != PIPELINE_RANKS {
        return Some((
            Invariant::CompleteOrDegrade,
            format!(
                "complete with only {} of {} ranks restarted",
                s.restarted, PIPELINE_RANKS
            ),
        ));
    }
    if s.phase == CyclePhase::Aborted && (s.staged != 0 || s.restarted != 0) {
        return Some((
            Invariant::RollbackRestoresSource,
            format!(
                "aborted with pipeline progress not rolled back \
                 (staged={} restarted={})",
                s.staged, s.restarted
            ),
        ));
    }
    if s.phase == CyclePhase::Aborted {
        if s.ranks != RankSite::RunningOnSource {
            return Some((
                Invariant::RollbackRestoresSource,
                format!("aborted with ranks {}", s.ranks.name()),
            ));
        }
        if s.source != NlaState::MigrationReady {
            return Some((
                Invariant::RollbackRestoresSource,
                format!("aborted with source NLA {}", s.source),
            ));
        }
        if s.target != TargetNla::None {
            return Some((
                Invariant::RollbackRestoresSource,
                "aborted with the attempt's target still attached".into(),
            ));
        }
    }
    match s.phase {
        CyclePhase::Complete => {
            if s.ranks != RankSite::RunningOnTarget {
                return Some((
                    Invariant::CompleteOrDegrade,
                    format!("complete but ranks {}", s.ranks.name()),
                ));
            }
            if s.target != TargetNla::Alive(NlaState::MigrationReady) {
                return Some((
                    Invariant::CompleteOrDegrade,
                    "complete but the target NLA is not MIGRATION_READY".into(),
                ));
            }
            if s.source != NlaState::MigrationInactive {
                return Some((
                    Invariant::CompleteOrDegrade,
                    format!("complete but the source NLA is {}", s.source),
                ));
            }
        }
        CyclePhase::Degraded => {
            if s.ranks != RankSite::RunningOnSource {
                return Some((
                    Invariant::CompleteOrDegrade,
                    format!("degraded but ranks {}", s.ranks.name()),
                ));
            }
            if !s.checkpointed {
                return Some((
                    Invariant::CompleteOrDegrade,
                    "degraded without a checkpoint written".into(),
                ));
            }
        }
        _ => {}
    }
    let expected = match s.phase {
        // Pre-copy streams while the job runs: ranks never leave the
        // source until the cutover (or fallback) stalls them.
        CyclePhase::Precopy => Some(RankSite::RunningOnSource),
        CyclePhase::Idle | CyclePhase::Stall => Some(RankSite::RunningOnSource),
        CyclePhase::Migrate => Some(RankSite::SuspendedOnSource),
        CyclePhase::Restart => Some(RankSite::ImagesOnTarget),
        CyclePhase::Resume => Some(RankSite::RestartedOnTarget),
        CyclePhase::Aborted | CyclePhase::Degraded => Some(RankSite::RunningOnSource),
        CyclePhase::Complete => Some(RankSite::RunningOnTarget),
    };
    if let Some(want) = expected {
        if s.ranks != want {
            return Some((
                Invariant::PhaseConsistency,
                format!(
                    "phase {} expects ranks {}, found {}",
                    s.phase,
                    want.name(),
                    s.ranks.name()
                ),
            ));
        }
    }
    None
}

fn rebuild_trace(
    parents: &BTreeMap<ModelState, Option<(ModelState, EventLabel)>>,
    end: ModelState,
) -> (Vec<ModelState>, Vec<EventLabel>) {
    let mut states = vec![end];
    let mut labels = Vec::new();
    let mut cur = end;
    while let Some(Some((prev, label))) = parents.get(&cur) {
        states.push(*prev);
        labels.push(*label);
        cur = *prev;
    }
    states.reverse();
    labels.reverse();
    (states, labels)
}

/// Exhaustively explore `spec` under `cfg` and prove (or refute) every
/// invariant. BFS guarantees the returned counterexample is minimal in
/// trace length.
pub fn check(spec: &MigrationSpec, cfg: &CheckConfig) -> CheckReport {
    let edges = fault_edges();
    let init = ModelState::initial(cfg.spares);
    let mut parents: BTreeMap<ModelState, Option<(ModelState, EventLabel)>> = BTreeMap::new();
    parents.insert(init, None);
    let mut queue = VecDeque::from([init]);
    let mut stats = CheckStats::default();

    while let Some(s) = queue.pop_front() {
        stats.states += 1;
        if let Some((invariant, reason)) = violated(&s, cfg) {
            let (states, labels) = rebuild_trace(&parents, s);
            return CheckReport {
                stats,
                violation: Some(Counterexample {
                    invariant,
                    reason,
                    states,
                    labels,
                }),
            };
        }
        let succ = successors(spec, &edges, cfg, &s);
        if s.coord_down {
            // Structural half of resume-or-rollback: the only way out of
            // a coordinator crash is a takeover edge, each lands the
            // cycle at the crashed phase (resume-from-point) or in
            // Aborted (rollback), and a committed cycle never rolls back.
            let bad = succ.is_empty()
                || succ.iter().any(|(label, next)| {
                    let takeover = matches!(
                        label.event,
                        CycleEvent::TakeoverResume | CycleEvent::TakeoverRollback
                    );
                    let lands_ok = next.phase == s.phase || next.phase == CyclePhase::Aborted;
                    let forward_only = s.phase != CyclePhase::Resume
                        || label.event != CycleEvent::TakeoverRollback;
                    !(takeover && lands_ok && forward_only)
                });
            if bad {
                let (states, labels) = rebuild_trace(&parents, s);
                return CheckReport {
                    stats,
                    violation: Some(Counterexample {
                        invariant: Invariant::ResumeOrRollback,
                        reason: format!(
                            "coordinator down in phase {} does not resolve to \
                             exactly resume-or-rollback",
                            s.phase
                        ),
                        states,
                        labels,
                    }),
                };
            }
        }
        if succ.is_empty() {
            if s.phase.is_terminal() {
                stats.terminals += 1;
            } else {
                let (states, labels) = rebuild_trace(&parents, s);
                return CheckReport {
                    stats,
                    violation: Some(Counterexample {
                        invariant: Invariant::DeadlockFreedom,
                        reason: format!("non-terminal phase {} has no enabled transition", s.phase),
                        states,
                        labels,
                    }),
                };
            }
        }
        for (label, next) in succ {
            stats.transitions += 1;
            if let std::collections::btree_map::Entry::Vacant(e) = parents.entry(next) {
                e.insert(Some((s, label)));
                queue.push_back(next);
            }
        }
    }

    CheckReport {
        stats,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CycleTransition, Guard};

    #[test]
    fn shipped_spec_holds_across_pool_sizes() {
        for spares in 0..=3 {
            for max_attempts in 1..=4 {
                for pipelined in [false, true] {
                    let cfg = CheckConfig {
                        spares,
                        max_attempts,
                        pipelined,
                        ..CheckConfig::default()
                    };
                    let report = check(&MigrationSpec::shipped(), &cfg);
                    assert!(
                        report.holds(),
                        "spares={spares} attempts={max_attempts} pipelined={pipelined}: {}",
                        report.violation.unwrap()
                    );
                    assert!(report.stats.terminals > 0);
                }
            }
        }
    }

    #[test]
    fn pipelined_refinement_enlarges_the_state_space() {
        let barrier = check(&MigrationSpec::shipped(), &CheckConfig::default());
        let pipelined = check(
            &MigrationSpec::shipped(),
            &CheckConfig {
                pipelined: true,
                ..CheckConfig::default()
            },
        );
        assert!(barrier.holds() && pipelined.holds());
        // The per-rank counters genuinely refine the model: more states,
        // including interleavings where a rank restarts mid-pull.
        assert!(pipelined.stats.states > barrier.stats.states);
    }

    #[test]
    fn restart_ahead_of_staged_image_is_a_lost_rank() {
        let mut s = ModelState::initial(1);
        s.phase = CyclePhase::Migrate;
        s.ranks = RankSite::SuspendedOnSource;
        s.staged = 1;
        s.restarted = 2;
        let cfg = CheckConfig {
            pipelined: true,
            ..CheckConfig::default()
        };
        let (inv, _) = violated(&s, &cfg).expect("must be flagged");
        assert_eq!(inv, Invariant::NoLostRank);
    }

    #[test]
    fn abort_must_clear_pipeline_progress() {
        let mut s = ModelState::initial(1);
        s.phase = CyclePhase::Aborted;
        s.staged = 2;
        s.restarted = 1;
        let cfg = CheckConfig {
            pipelined: true,
            ..CheckConfig::default()
        };
        let (inv, _) = violated(&s, &cfg).expect("must be flagged");
        assert_eq!(inv, Invariant::RollbackRestoresSource);
    }

    #[test]
    fn coordinator_crash_edges_enlarge_the_space_and_hold() {
        for pipelined in [false, true] {
            let without = check(
                &MigrationSpec::shipped(),
                &CheckConfig {
                    pipelined,
                    coordinator_crash: false,
                    ..CheckConfig::default()
                },
            );
            let with = check(
                &MigrationSpec::shipped(),
                &CheckConfig {
                    pipelined,
                    ..CheckConfig::default()
                },
            );
            assert!(without.holds() && with.holds());
            // The crash edges genuinely reach new states (coord-down,
            // takeover, zombie-settle interleavings) in both modes.
            assert!(
                with.stats.states > without.stats.states,
                "pipelined={pipelined}: {} !> {}",
                with.stats.states,
                without.stats.states
            );
        }
    }

    #[test]
    fn unfenced_takeover_loses_lease_exclusivity() {
        let report = check(
            &MigrationSpec::shipped(),
            &CheckConfig {
                fenced: false,
                ..CheckConfig::default()
            },
        );
        let cx = report.violation.expect("unfenced takeover must violate");
        assert_eq!(cx.invariant, Invariant::SingleLeaseHolder);
        // The minimal trace necessarily goes through a coordinator crash,
        // and it lowers to a concrete replayable fault plan.
        assert!(cx
            .labels
            .iter()
            .any(|l| matches!(l.fault, Some((_, FaultKind::CoordinatorCrash)))));
        let plan = cx.to_fault_plan(7);
        assert!(format!("{plan:?}").contains("CoordinatorCrash"));
    }

    #[test]
    fn post_commit_crash_rolls_forward_only() {
        // A crash in Resume (past the commit point: every rank restarted
        // on the target) must offer exactly one way out — roll forward.
        let mut s = ModelState::initial(1);
        s.phase = CyclePhase::Resume;
        s.attempt = 1;
        s.spares = 0;
        s.source = NlaState::MigrationInactive;
        s.target = TargetNla::Alive(NlaState::MigrationReady);
        s.ranks = RankSite::RestartedOnTarget;
        s.coord_down = true;
        let cfg = CheckConfig::default();
        let succ = successors(&MigrationSpec::shipped(), &fault_edges(), &cfg, &s);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].0.event, CycleEvent::TakeoverResume);
        assert_eq!(succ[0].1.phase, CyclePhase::Resume);
        assert_eq!(succ[0].1.epoch, 1);
        assert!(succ[0].1.zombie && !succ[0].1.coord_down);
        // Whereas a pre-commit crash (Restart) explores both branches.
        s.phase = CyclePhase::Restart;
        s.ranks = RankSite::ImagesOnTarget;
        let succ = successors(&MigrationSpec::shipped(), &fault_edges(), &cfg, &s);
        let events: Vec<_> = succ.iter().map(|(l, _)| l.event).collect();
        assert!(events.contains(&CycleEvent::TakeoverResume));
        assert!(events.contains(&CycleEvent::TakeoverRollback));
    }

    #[test]
    fn live_edges_enlarge_the_space_and_hold() {
        let classic = check(
            &MigrationSpec::shipped().without(CyclePhase::Idle, CycleEvent::LiveTrigger),
            &CheckConfig::default(),
        );
        let live = check(&MigrationSpec::shipped(), &CheckConfig::default());
        assert!(classic.holds() && live.holds());
        // The pre-copy loop genuinely reaches new states (rounds, dirty
        // flag, cutover/fallback interleavings, crash-in-precopy).
        assert!(
            live.stats.states > classic.stats.states,
            "{} !> {}",
            live.stats.states,
            classic.stats.states
        );
    }

    #[test]
    fn complete_with_outstanding_dirty_segments_is_flagged() {
        // A state that satisfies every Complete obligation except the
        // dirty ledger: writes made behind the last pre-copy snapshot
        // never landed on the target.
        let mut s = ModelState::initial(0);
        s.phase = CyclePhase::Complete;
        s.attempt = 1;
        s.ranks = RankSite::RunningOnTarget;
        s.source = NlaState::MigrationInactive;
        s.target = TargetNla::Alive(NlaState::MigrationReady);
        s.dirty = true;
        let (inv, _) = violated(&s, &CheckConfig::default()).expect("must be flagged");
        assert_eq!(inv, Invariant::NoLostDirtySegment);
    }

    #[test]
    fn cutover_that_skips_stop_and_copy_loses_dirty_segments() {
        // Negative proof that the invariant rests on the cutover passing
        // through a stop-and-copy round: reroute Cutover straight to
        // Complete and the checker finds the lost-segment trace.
        let spec = MigrationSpec::shipped().with_transition(CycleTransition {
            from: CyclePhase::Precopy,
            on: CycleEvent::Cutover,
            guard: Guard::Always,
            to: CyclePhase::Complete,
            actions: vec![Action::RestartRanks, Action::ResumeRanks],
        });
        let cx = check(&spec, &CheckConfig::default())
            .violation
            .expect("skipping stop-and-copy must violate");
        assert_eq!(cx.invariant, Invariant::NoLostDirtySegment);
        assert!(cx.labels.iter().any(|l| l.event == CycleEvent::LiveTrigger));
    }

    #[test]
    fn precopy_crash_resolves_by_rollback_only() {
        // A coordinator crash mid-pre-copy: the job never stopped on the
        // source, so the standby's one branch is to abandon the rounds.
        let mut s = ModelState::initial(0);
        s.phase = CyclePhase::Precopy;
        s.attempt = 1;
        s.target = TargetNla::Alive(NlaState::MigrationSpare);
        s.dirty = true;
        s.precopy_rounds = 1;
        s.coord_down = true;
        let succ = successors(
            &MigrationSpec::shipped(),
            &fault_edges(),
            &CheckConfig::default(),
            &s,
        );
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].0.event, CycleEvent::TakeoverRollback);
        assert_eq!(succ[0].1.phase, CyclePhase::Aborted);
        assert!(!succ[0].1.dirty, "rollback must settle the dirty ledger");
        assert_eq!(succ[0].1.precopy_rounds, 0);
    }

    #[test]
    fn state_space_is_exhausted_not_truncated() {
        let report = check(&MigrationSpec::shipped(), &CheckConfig::default());
        // Every explored state fed the queue; transitions strictly exceed
        // states because fault edges fan out of each live phase.
        assert!(report.stats.transitions > report.stats.states);
    }

    #[test]
    fn removing_rollback_deadlocks() {
        // A spec whose timeout edges vanish has nowhere to go when the
        // spare crashes... still covered; remove the spare-crash rows too
        // and Stall deadlocks only if StallDone also goes away. Simplest
        // deadlock: strip every edge out of Aborted.
        let spec = MigrationSpec::shipped()
            .without(CyclePhase::Aborted, CycleEvent::Retry)
            .without(CyclePhase::Aborted, CycleEvent::Degrade);
        let report = check(&spec, &CheckConfig::default());
        let cx = report.violation.expect("must deadlock");
        assert_eq!(cx.invariant, Invariant::DeadlockFreedom);
        assert_eq!(cx.states.last().unwrap().phase, CyclePhase::Aborted);
    }

    #[test]
    fn counterexample_trace_is_connected() {
        let spec = MigrationSpec::shipped()
            .without(CyclePhase::Aborted, CycleEvent::Retry)
            .without(CyclePhase::Aborted, CycleEvent::Degrade);
        let cx = check(&spec, &CheckConfig::default()).violation.unwrap();
        assert_eq!(cx.labels.len(), cx.states.len() - 1);
        assert_eq!(cx.states[0], ModelState::initial(1));
        // And it renders.
        let text = cx.to_string();
        assert!(text.contains("deadlock-freedom"));
    }
}
