//! Fleet-level spare-pool model: many jobs leasing migration targets
//! from one shared pool.
//!
//! The single-cycle model in [`crate::model`] proves one job's migration
//! machinery sound; this module checks the *allocation* layer a fleet
//! orchestrator adds on top (`jobmig-core`'s `SparePool`): jobs lease
//! spares, settle each lease as a success (consume; the vacated source is
//! reclaimed), an abort with a surviving spare (returned to the pool's
//! front), or a spare death (discarded), and may degrade to the CR
//! baseline when the pool is dry.
//!
//! Exhaustive BFS over every interleaving proves the two spare-pool
//! invariants:
//!
//! * **lease exclusivity** — no node is ever leased to two jobs at once,
//!   and a leased node is never simultaneously in the free list;
//! * **pool conservation** — a completed cycle returns exactly one node
//!   to the pool (the reclaimed source), and an aborted cycle returns
//!   exactly one (the surviving target). The sole documented exception
//!   is an abort in which the target died: it returns zero, and the node
//!   is accounted as dead, never lost.
//!
//! [`FleetMutation`] injects the classic accounting bugs (double return,
//! shared lease, missing reclaim) so tests can prove the checker actually
//! catches them.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// What one fleet node is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FleetNode {
    /// In the shared pool, leasable.
    Free,
    /// Leased to job `j` as an in-flight migration target.
    Leased(u8),
    /// Hosting job `j`'s ranks (its current home node, or a consumed
    /// target after a completed migration).
    Hosting(u8),
    /// Died mid-attempt; never returns.
    Dead,
}

/// What one job is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FleetJob {
    /// Running normally; may trigger a migration.
    Quiet,
    /// Mid-cycle, holding a lease on node index `t`.
    Migrating(u8),
    /// Degraded to the CR baseline (terminal here: it never leases).
    Degraded,
}

/// One state of the fleet: node states plus the pool's own free-list
/// account (kept redundantly, exactly as the runtime keeps it, so the
/// checker can catch the account drifting from reality).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FleetState {
    /// Per-node state; indices `0..spares` start [`FleetNode::Free`],
    /// index `spares + j` starts as job `j`'s home node.
    pub nodes: Vec<FleetNode>,
    /// Per-job state.
    pub jobs: Vec<FleetJob>,
    /// The pool account: free node indices, front = next lease.
    pub free_list: Vec<u8>,
}

/// An event in the fleet interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// Job `j` triggers a migration and leases the pool's front node.
    Lease(u8),
    /// Job `j`'s cycle completes: target consumed, source reclaimed.
    Complete(u8),
    /// Job `j`'s attempt aborts; the surviving target returns to the
    /// pool's front.
    AbortReturn(u8),
    /// Job `j`'s attempt aborts because the target died; it is
    /// discarded.
    AbortLost(u8),
    /// Job `j` finds the pool dry and degrades to the CR baseline.
    Degrade(u8),
}

impl fmt::Display for FleetEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetEvent::Lease(j) => write!(f, "lease(job={j})"),
            FleetEvent::Complete(j) => write!(f, "complete(job={j})"),
            FleetEvent::AbortReturn(j) => write!(f, "abort_return(job={j})"),
            FleetEvent::AbortLost(j) => write!(f, "abort_lost(job={j})"),
            FleetEvent::Degrade(j) => write!(f, "degrade(job={j})"),
        }
    }
}

/// A deliberately broken pool-accounting rule, for negative tests of the
/// checker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMutation {
    /// An abort returns the surviving target to the free list twice.
    DoubleReturn,
    /// A lease hands out the front node without removing it from the
    /// free list (two jobs can then hold the same spare).
    SharedLease,
    /// A completed cycle forgets to reclaim the vacated source.
    SkipReclaim,
}

/// Checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Concurrently-running jobs.
    pub jobs: u8,
    /// Initial pool size.
    pub spares: u8,
    /// Accounting bug to inject, if any.
    pub mutation: Option<FleetMutation>,
}

/// An invariant violation with the interleaving that reached it.
#[derive(Debug, Clone)]
pub struct FleetViolation {
    /// Which invariant broke, human-readable.
    pub invariant: String,
    /// The event sequence from the initial state.
    pub trace: Vec<String>,
}

impl fmt::Display for FleetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  invariant violated: {}", self.invariant)?;
        for (i, ev) in self.trace.iter().enumerate() {
            writeln!(f, "    {i}: {ev}")?;
        }
        Ok(())
    }
}

/// Result of one fleet check.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Distinct states reached.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// First violation found, if any (BFS order: a shortest trace).
    pub violation: Option<FleetViolation>,
}

impl FleetState {
    fn initial(cfg: &FleetConfig) -> FleetState {
        let mut nodes = vec![FleetNode::Free; cfg.spares as usize];
        for j in 0..cfg.jobs {
            nodes.push(FleetNode::Hosting(j));
        }
        FleetState {
            nodes,
            jobs: vec![FleetJob::Quiet; cfg.jobs as usize],
            free_list: (0..cfg.spares).collect(),
        }
    }

    fn hosting_node(&self, j: u8) -> Option<usize> {
        self.nodes.iter().position(|n| *n == FleetNode::Hosting(j))
    }

    fn enabled(&self) -> Vec<FleetEvent> {
        let mut evs = Vec::new();
        for (ji, job) in self.jobs.iter().enumerate() {
            let j = ji as u8;
            match job {
                FleetJob::Quiet if self.hosting_node(j).is_some() => {
                    if self.free_list.is_empty() {
                        evs.push(FleetEvent::Degrade(j));
                    } else {
                        evs.push(FleetEvent::Lease(j));
                    }
                }
                FleetJob::Migrating(_) => {
                    evs.push(FleetEvent::Complete(j));
                    evs.push(FleetEvent::AbortReturn(j));
                    evs.push(FleetEvent::AbortLost(j));
                }
                _ => {}
            }
        }
        evs
    }

    /// Apply `ev`; returns the successor and how many nodes the event
    /// was *observed* to add to the free list (for the conservation
    /// check — the expectation lives in [`expected_returns`]).
    fn apply(&self, ev: FleetEvent, mutation: Option<FleetMutation>) -> (FleetState, i32) {
        let mut s = self.clone();
        let before = s.free_list.len() as i32;
        match ev {
            FleetEvent::Lease(j) => {
                let t = s.free_list[0];
                if mutation != Some(FleetMutation::SharedLease) {
                    s.free_list.remove(0);
                }
                s.nodes[t as usize] = FleetNode::Leased(j);
                s.jobs[j as usize] = FleetJob::Migrating(t);
            }
            FleetEvent::Complete(j) => {
                let FleetJob::Migrating(t) = s.jobs[j as usize] else {
                    unreachable!("Complete only enabled while migrating")
                };
                let src = self.hosting_node(j).expect("migrating job has a home");
                s.nodes[t as usize] = FleetNode::Hosting(j);
                s.nodes[src] = FleetNode::Free;
                if mutation != Some(FleetMutation::SkipReclaim) {
                    s.free_list.push(src as u8);
                }
                s.jobs[j as usize] = FleetJob::Quiet;
            }
            FleetEvent::AbortReturn(j) => {
                let FleetJob::Migrating(t) = s.jobs[j as usize] else {
                    unreachable!("AbortReturn only enabled while migrating")
                };
                s.nodes[t as usize] = FleetNode::Free;
                s.free_list.insert(0, t);
                if mutation == Some(FleetMutation::DoubleReturn) {
                    s.free_list.insert(0, t);
                }
                s.jobs[j as usize] = FleetJob::Quiet;
            }
            FleetEvent::AbortLost(j) => {
                let FleetJob::Migrating(t) = s.jobs[j as usize] else {
                    unreachable!("AbortLost only enabled while migrating")
                };
                s.nodes[t as usize] = FleetNode::Dead;
                s.jobs[j as usize] = FleetJob::Quiet;
            }
            FleetEvent::Degrade(j) => {
                s.jobs[j as usize] = FleetJob::Degraded;
            }
        }
        (s.clone(), s.free_list.len() as i32 - before)
    }

    /// Static invariant check; `None` when the state is sound.
    fn violation(&self) -> Option<String> {
        // Lease exclusivity, part 1: the free list holds no duplicates
        // and only genuinely free nodes.
        for (i, n) in self.free_list.iter().enumerate() {
            if self.free_list[i + 1..].contains(n) {
                return Some(format!("node {n} appears twice in the free list"));
            }
            if self.nodes[*n as usize] != FleetNode::Free {
                return Some(format!(
                    "node {n} is in the free list while {:?}",
                    self.nodes[*n as usize]
                ));
            }
        }
        // The pool account matches reality: every free node is leasable.
        let free = self.nodes.iter().filter(|n| **n == FleetNode::Free).count();
        if free != self.free_list.len() {
            return Some(format!(
                "pool account drift: {free} free nodes, {} in the free list",
                self.free_list.len()
            ));
        }
        // Lease exclusivity, part 2: each migrating job holds a lease the
        // node agrees with, and no two jobs share a target.
        let mut held: BTreeMap<u8, u8> = BTreeMap::new();
        for (ji, job) in self.jobs.iter().enumerate() {
            let j = ji as u8;
            if let FleetJob::Migrating(t) = job {
                if let Some(other) = held.insert(*t, j) {
                    return Some(format!("node {t} leased to jobs {other} and {j} at once"));
                }
                if self.nodes[*t as usize] != FleetNode::Leased(j) {
                    return Some(format!(
                        "job {j} migrating to node {t} which is {:?}",
                        self.nodes[*t as usize]
                    ));
                }
            }
        }
        None
    }
}

/// Nodes an event must add to the free list for pool conservation: a
/// completed cycle reclaims exactly its source; an abort with a surviving
/// target returns exactly it; a spare death returns zero (the documented
/// exception — the node is marked dead, not lost); a lease removes one.
fn expected_returns(ev: FleetEvent) -> i32 {
    match ev {
        FleetEvent::Lease(_) => -1,
        FleetEvent::Complete(_) => 1,
        FleetEvent::AbortReturn(_) => 1,
        FleetEvent::AbortLost(_) => 0,
        FleetEvent::Degrade(_) => 0,
    }
}

/// Exhaustively check the fleet spare-pool invariants for `cfg`.
pub fn check_fleet(cfg: &FleetConfig) -> FleetReport {
    let init = FleetState::initial(cfg);
    let mut seen: BTreeMap<FleetState, Option<(FleetState, FleetEvent)>> = BTreeMap::new();
    seen.insert(init.clone(), None);
    let mut queue = VecDeque::from([init]);
    let mut transitions = 0usize;

    let trace_to = |seen: &BTreeMap<FleetState, Option<(FleetState, FleetEvent)>>,
                    last: Option<FleetEvent>,
                    state: &FleetState| {
        let mut trace: Vec<String> = last.map(|e| e.to_string()).into_iter().collect();
        let mut cur = state.clone();
        while let Some(Some((parent, ev))) = seen.get(&cur) {
            trace.push(ev.to_string());
            cur = parent.clone();
        }
        trace.reverse();
        trace
    };

    while let Some(state) = queue.pop_front() {
        for ev in state.enabled() {
            transitions += 1;
            let (next, returned) = state.apply(ev, cfg.mutation);
            let settle_violation = if returned != expected_returns(ev) {
                Some(format!(
                    "{ev} moved {returned} node(s) into the free list, want {}",
                    expected_returns(ev)
                ))
            } else {
                next.violation()
            };
            if let Some(invariant) = settle_violation {
                return FleetReport {
                    states: seen.len(),
                    transitions,
                    violation: Some(FleetViolation {
                        invariant,
                        trace: trace_to(&seen, Some(ev), &state),
                    }),
                };
            }
            if !seen.contains_key(&next) {
                seen.insert(next.clone(), Some((state.clone(), ev)));
                queue.push_back(next);
            }
        }
    }
    FleetReport {
        states: seen.len(),
        transitions,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(jobs: u8, spares: u8, mutation: Option<FleetMutation>) -> FleetConfig {
        FleetConfig {
            jobs,
            spares,
            mutation,
        }
    }

    #[test]
    fn shipped_accounting_holds_across_grid() {
        for jobs in 1..=3u8 {
            for spares in 1..=3u8 {
                let report = check_fleet(&cfg(jobs, spares, None));
                assert!(
                    report.violation.is_none(),
                    "jobs={jobs} spares={spares}: {}",
                    report.violation.unwrap()
                );
                assert!(report.states > 1);
            }
        }
    }

    #[test]
    fn double_return_is_caught() {
        let report = check_fleet(&cfg(2, 2, Some(FleetMutation::DoubleReturn)));
        let v = report.violation.expect("double return must be caught");
        assert!(v.invariant.contains("want 1"), "{}", v.invariant);
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn shared_lease_is_caught() {
        let report = check_fleet(&cfg(2, 1, Some(FleetMutation::SharedLease)));
        let v = report.violation.expect("shared lease must be caught");
        // Observed either as the account drifting (leased node still
        // free) or, one lease later, as two jobs on one node.
        assert!(
            v.invariant.contains("free list") || v.invariant.contains("at once"),
            "{}",
            v.invariant
        );
    }

    #[test]
    fn skipped_reclaim_is_caught() {
        let report = check_fleet(&cfg(1, 1, Some(FleetMutation::SkipReclaim)));
        let v = report.violation.expect("missing reclaim must be caught");
        assert!(v.invariant.contains("want 1"), "{}", v.invariant);
    }

    #[test]
    fn spare_death_is_the_only_zero_return_settle() {
        // The shipped table allows AbortLost to return nothing — make
        // sure the clean model indeed reaches states with dead nodes and
        // still verifies (the exception is deliberate, not an accident).
        let report = check_fleet(&cfg(2, 2, None));
        assert!(report.violation.is_none());
    }
}
