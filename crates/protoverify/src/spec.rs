//! The declarative protocol specification: typed states, events, guards
//! and actions for every state machine the migration framework runs.
//!
//! These tables are the *single source of truth* for protocol structure.
//! The runtime (`jobmig-core`) and the FTB agent (`ftb`) drive their
//! transitions through them at execution time (illegal transitions are
//! trapped), and the model checker in [`crate::model`] exhaustively
//! explores the same tables offline. A table edit therefore changes both
//! the running system and the checked model — they cannot drift apart.

use faultplane::{FaultKind, MigPhase};
use std::fmt;

// ---------------------------------------------------------------------------
// NLA state machine (paper §III-A)
// ---------------------------------------------------------------------------

/// Node Launch Agent states, as named in §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NlaState {
    /// Active compute node participating in the job.
    MigrationReady,
    /// Hot spare, standing by to receive processes.
    MigrationSpare,
    /// Former source node after its processes have left.
    MigrationInactive,
}

impl fmt::Display for NlaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NlaState::MigrationReady => "MIGRATION_READY",
            NlaState::MigrationSpare => "MIGRATION_SPARE",
            NlaState::MigrationInactive => "MIGRATION_INACTIVE",
        };
        write!(f, "{s}")
    }
}

/// Events that move an NLA between its states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NlaEvent {
    /// Source NLA published PIIC: all local images have left (Phase 2).
    SourceDrained,
    /// Target NLA restarted every migrated process (end of Phase 3).
    RestartComplete,
    /// Cycle abort: the source goes back to hosting its ranks.
    RollbackSource,
    /// Cycle abort: a surviving target goes back to being a clean spare.
    RollbackTarget,
    /// A vacated (inactive) node leased back out of the shared spare pool
    /// re-enters service as a clean spare.
    Reprovision,
}

impl NlaEvent {
    /// Stable lower-snake name (used in traces).
    pub fn name(&self) -> &'static str {
        match self {
            NlaEvent::SourceDrained => "source_drained",
            NlaEvent::RestartComplete => "restart_complete",
            NlaEvent::RollbackSource => "rollback_source",
            NlaEvent::RollbackTarget => "rollback_target",
            NlaEvent::Reprovision => "reprovision",
        }
    }
}

/// One row of the NLA transition table.
#[derive(Debug, Clone, Copy)]
pub struct NlaTransition {
    /// State the NLA is in.
    pub from: NlaState,
    /// Event applied to it.
    pub on: NlaEvent,
    /// State it moves to.
    pub to: NlaState,
}

/// The shipped NLA transition table.
///
/// `RollbackSource` is legal from both `MigrationReady` (abort before the
/// source drained) and `MigrationInactive` (abort after PIIC);
/// `RollbackTarget` from both `MigrationSpare` (abort before Phase 3
/// completed) and `MigrationReady` (abort after the target went ready).
pub const NLA_TABLE: &[NlaTransition] = &[
    NlaTransition {
        from: NlaState::MigrationReady,
        on: NlaEvent::SourceDrained,
        to: NlaState::MigrationInactive,
    },
    NlaTransition {
        from: NlaState::MigrationSpare,
        on: NlaEvent::RestartComplete,
        to: NlaState::MigrationReady,
    },
    NlaTransition {
        from: NlaState::MigrationInactive,
        on: NlaEvent::RollbackSource,
        to: NlaState::MigrationReady,
    },
    NlaTransition {
        from: NlaState::MigrationReady,
        on: NlaEvent::RollbackSource,
        to: NlaState::MigrationReady,
    },
    NlaTransition {
        from: NlaState::MigrationReady,
        on: NlaEvent::RollbackTarget,
        to: NlaState::MigrationSpare,
    },
    NlaTransition {
        from: NlaState::MigrationSpare,
        on: NlaEvent::RollbackTarget,
        to: NlaState::MigrationSpare,
    },
    // Fleet reclamation: an inactive node returned to the shared pool and
    // leased back out becomes a clean spare again.
    NlaTransition {
        from: NlaState::MigrationInactive,
        on: NlaEvent::Reprovision,
        to: NlaState::MigrationSpare,
    },
];

/// The state an NLA in `cur` moves to on `ev`, or `None` if the table has
/// no such transition (a protocol violation at a live call site).
pub fn nla_next(cur: NlaState, ev: NlaEvent) -> Option<NlaState> {
    NLA_TABLE
        .iter()
        .find(|t| t.from == cur && t.on == ev)
        .map(|t| t.to)
}

// ---------------------------------------------------------------------------
// Per-rank lifecycle
// ---------------------------------------------------------------------------

/// Lifecycle of one MPI rank through a migration cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RankLife {
    /// Application thread running normally.
    Running,
    /// Suspended and drained (entered the cycle, Phase 1 done locally).
    Suspended,
    /// Source rank: C/R metadata captured and the app incarnation killed;
    /// the rank exists only as captured state / an in-flight image.
    Captured,
    /// Restored from an image (on the target in Phase 3, or back on the
    /// source by an abort's resurrection) but not yet resumed.
    Restarted,
}

impl RankLife {
    /// Stable lower-snake name (used in traces).
    pub fn name(&self) -> &'static str {
        match self {
            RankLife::Running => "running",
            RankLife::Suspended => "suspended",
            RankLife::Captured => "captured",
            RankLife::Restarted => "restarted",
        }
    }
}

/// Events that move a rank through its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RankEvent {
    /// The C/R thread suspended and drained the rank (Phase 1).
    Suspend,
    /// Source side: metadata captured, app incarnation killed (Phase 2).
    Capture,
    /// Restored from its image on the target (Phase 3).
    Restart,
    /// Abort path: resurrected on the source from the captured metadata.
    Resurrect,
    /// Phase 4: migration barrier passed, endpoints rebuilt, app running.
    Resume,
}

impl RankEvent {
    /// Stable lower-snake name (used in traces).
    pub fn name(&self) -> &'static str {
        match self {
            RankEvent::Suspend => "suspend",
            RankEvent::Capture => "capture",
            RankEvent::Restart => "restart",
            RankEvent::Resurrect => "resurrect",
            RankEvent::Resume => "resume",
        }
    }
}

/// One row of the rank lifecycle table.
#[derive(Debug, Clone, Copy)]
pub struct RankTransition {
    /// Lifecycle state the rank is in.
    pub from: RankLife,
    /// Event applied to it.
    pub on: RankEvent,
    /// State it moves to.
    pub to: RankLife,
}

/// The shipped rank lifecycle table. Non-source ranks travel
/// `Running → Suspended → Running`; source ranks travel
/// `Running → Suspended → Captured → Restarted → Running`, where the
/// `Captured → Restarted` edge is either a Phase 3 restart on the target
/// or an abort's resurrection on the source (`Resurrect`).
pub const RANK_TABLE: &[RankTransition] = &[
    RankTransition {
        from: RankLife::Running,
        on: RankEvent::Suspend,
        to: RankLife::Suspended,
    },
    RankTransition {
        from: RankLife::Suspended,
        on: RankEvent::Capture,
        to: RankLife::Captured,
    },
    RankTransition {
        from: RankLife::Captured,
        on: RankEvent::Restart,
        to: RankLife::Restarted,
    },
    RankTransition {
        from: RankLife::Captured,
        on: RankEvent::Resurrect,
        to: RankLife::Restarted,
    },
    RankTransition {
        from: RankLife::Restarted,
        on: RankEvent::Resume,
        to: RankLife::Running,
    },
    RankTransition {
        from: RankLife::Suspended,
        on: RankEvent::Resume,
        to: RankLife::Running,
    },
    // An abort may resurrect a rank that Phase 3 had already restarted on
    // the (now abandoned) target: the host moves back to the source but
    // the lifecycle stage is unchanged.
    RankTransition {
        from: RankLife::Restarted,
        on: RankEvent::Resurrect,
        to: RankLife::Restarted,
    },
    // The Phase 4 barrier is tolerant: a rank that resumed before the
    // cycle aborted re-enters Phase 4 on the retry, so Resume is
    // idempotent on a running rank.
    RankTransition {
        from: RankLife::Running,
        on: RankEvent::Resume,
        to: RankLife::Running,
    },
];

/// The lifecycle state a rank in `cur` moves to on `ev`, or `None` if the
/// table has no such transition.
pub fn rank_next(cur: RankLife, ev: RankEvent) -> Option<RankLife> {
    RANK_TABLE
        .iter()
        .find(|t| t.from == cur && t.on == ev)
        .map(|t| t.to)
}

// ---------------------------------------------------------------------------
// FTB agent parent-link machine
// ---------------------------------------------------------------------------

/// The state of an FTB agent's uplink into the agent tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkState {
    /// Tree root: no parent, nothing to lose.
    Root,
    /// Attached to a parent; no fallback ancestor known.
    Attached,
    /// Attached, and the grandparent is known as a fallback.
    AttachedWithFallback,
}

/// Events on the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkEvent {
    /// `AttachAck` arrived carrying a grandparent.
    AckGrandparent,
    /// `AttachAck` arrived with no grandparent (parent is the root).
    AckNoGrandparent,
    /// A send to the parent failed (dead parent or transient link error).
    ParentLost,
}

/// One row of the uplink table.
#[derive(Debug, Clone, Copy)]
pub struct LinkTransition {
    /// Uplink state.
    pub from: LinkState,
    /// Event applied.
    pub on: LinkEvent,
    /// Resulting state.
    pub to: LinkState,
}

/// The shipped uplink table. The self-healing rule it encodes: on a
/// failed parent send, adopt the grandparent when one is known (consuming
/// the fallback), otherwise *keep* the current parent — a transient link
/// error must never orphan the subtree permanently.
pub const LINK_TABLE: &[LinkTransition] = &[
    LinkTransition {
        from: LinkState::Attached,
        on: LinkEvent::AckGrandparent,
        to: LinkState::AttachedWithFallback,
    },
    LinkTransition {
        from: LinkState::AttachedWithFallback,
        on: LinkEvent::AckGrandparent,
        to: LinkState::AttachedWithFallback,
    },
    LinkTransition {
        from: LinkState::Attached,
        on: LinkEvent::AckNoGrandparent,
        to: LinkState::Attached,
    },
    LinkTransition {
        from: LinkState::AttachedWithFallback,
        on: LinkEvent::AckNoGrandparent,
        to: LinkState::Attached,
    },
    // Fallback known: the grandparent becomes the parent (fallback
    // consumed until the next AttachAck repopulates it).
    LinkTransition {
        from: LinkState::AttachedWithFallback,
        on: LinkEvent::ParentLost,
        to: LinkState::Attached,
    },
    // No fallback: keep the parent (flap tolerance).
    LinkTransition {
        from: LinkState::Attached,
        on: LinkEvent::ParentLost,
        to: LinkState::Attached,
    },
];

/// The uplink state reached from `cur` on `ev`, or `None` if illegal
/// (e.g. any event at the root).
pub fn link_next(cur: LinkState, ev: LinkEvent) -> Option<LinkState> {
    LINK_TABLE
        .iter()
        .find(|t| t.from == cur && t.on == ev)
        .map(|t| t.to)
}

// ---------------------------------------------------------------------------
// Migration-cycle phase machine (paper §III-A, hardened by recovery)
// ---------------------------------------------------------------------------

/// The phase of one migration trigger's lifecycle, from the Job Manager's
/// point of view. `Stall`..`Resume` are the paper's four phases; the rest
/// are the recovery superstructure PR 2 added around them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CyclePhase {
    /// Trigger accepted, no attempt started yet.
    Idle,
    /// Live-migration prelude: iterative pre-copy rounds stream the image
    /// (full, then dirty deltas) to the spare while every rank keeps
    /// running. Ends with a short `Cutover` into `Stall`, or a
    /// `FallbackStopCopy` into the same `Stall` when the dirty rate never
    /// converges.
    Precopy,
    /// Phase 1 — Job Stall.
    Stall,
    /// Phase 2 — Job Migration.
    Migrate,
    /// Phase 3 — Restart on the spare.
    Restart,
    /// Phase 4 — Resume.
    Resume,
    /// An attempt failed; the job has been rolled back to the source.
    Aborted,
    /// Terminal: the migration completed.
    Complete,
    /// Terminal: degraded to a coordinated checkpoint (CR baseline).
    Degraded,
}

impl CyclePhase {
    /// Whether this phase ends the trigger's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(self, CyclePhase::Complete | CyclePhase::Degraded)
    }

    /// The paper phase this corresponds to, when it is one of the four.
    pub fn mig_phase(&self) -> Option<MigPhase> {
        match self {
            CyclePhase::Precopy => Some(MigPhase::Precopy),
            CyclePhase::Stall => Some(MigPhase::Stall),
            CyclePhase::Migrate => Some(MigPhase::Migrate),
            CyclePhase::Restart => Some(MigPhase::Restart),
            CyclePhase::Resume => Some(MigPhase::Resume),
            _ => None,
        }
    }

    /// Stable lower-snake name (used in traces and counterexamples).
    pub fn name(&self) -> &'static str {
        match self {
            CyclePhase::Idle => "idle",
            CyclePhase::Precopy => "precopy",
            CyclePhase::Stall => "stall",
            CyclePhase::Migrate => "migrate",
            CyclePhase::Restart => "restart",
            CyclePhase::Resume => "resume",
            CyclePhase::Aborted => "aborted",
            CyclePhase::Complete => "complete",
            CyclePhase::Degraded => "degraded",
        }
    }
}

impl fmt::Display for CyclePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Events that move a trigger between cycle phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CycleEvent {
    /// First attempt begins (consumes a spare).
    Trigger,
    /// First attempt begins in live mode (consumes a spare): the cycle
    /// enters [`CyclePhase::Precopy`] instead of stalling the job.
    LiveTrigger,
    /// One iterative pre-copy round landed on the target (round 0 is the
    /// full image; later rounds are dirty-segment deltas). The job keeps
    /// running throughout.
    PrecopyRound,
    /// The convergence controller decided the residual dirty set is small
    /// enough: stop the job and finish with a short stop-and-copy round.
    Cutover,
    /// The convergence controller gave up (dirty rate ≥ lane bandwidth,
    /// round budget exhausted, or a round failed): discard the pre-copied
    /// state and run a classic full stop-and-copy attempt.
    FallbackStopCopy,
    /// Phase 1 completed: every rank suspended and drained.
    StallDone,
    /// Phase 2 completed: PIIC published, all images on the target.
    MigrateDone,
    /// Phase 3 completed: every migrated process restarted.
    RestartDone,
    /// Phase 4 completed: barrier passed, endpoints rebuilt, job running.
    ResumeDone,
    /// A phase deadline expired; the attempt is rolled back.
    PhaseTimeout,
    /// The target spare died mid-attempt; the attempt is rolled back.
    SpareCrash,
    /// A new attempt begins on another spare (consumes it).
    Retry,
    /// No recovery path left: checkpoint the job to storage instead.
    Degrade,
    /// Pipelined refinement: one more rank's image finished assembly on
    /// the target (its `image_ready` event fired). Model-level
    /// micro-event; not a row in the shipped phase table.
    RankStaged,
    /// Pipelined refinement: one more *staged* rank restarted on the
    /// target, possibly while other ranks are still streaming.
    RankRestarted,
    /// The Job Manager process died at a WAL append boundary. Model-level
    /// micro-event (not a row in the shipped phase table): the cycle
    /// freezes until the standby's takeover edge fires.
    CoordCrash,
    /// Standby takeover, resume-from-point branch: the journal tail shows
    /// the data path can still finish, so the standby re-drives the
    /// in-flight phase under a bumped fencing epoch.
    TakeoverResume,
    /// Standby takeover, rollback branch: the journal tail is pre-commit
    /// and cannot (or need not) be finished, so the standby aborts the
    /// attempt and settles the spare lease under the bumped epoch.
    TakeoverRollback,
    /// The deposed ("zombie") coordinator's last write reaches the spare
    /// pool / FTB after takeover. With fencing it is rejected on its
    /// stale epoch; without fencing it would double-commit a spare.
    ZombieSettle,
}

impl CycleEvent {
    /// Stable lower-snake name (used in traces and counterexamples).
    pub fn name(&self) -> &'static str {
        match self {
            CycleEvent::Trigger => "trigger",
            CycleEvent::LiveTrigger => "live_trigger",
            CycleEvent::PrecopyRound => "precopy_round",
            CycleEvent::Cutover => "cutover",
            CycleEvent::FallbackStopCopy => "fallback_stopcopy",
            CycleEvent::StallDone => "stall_done",
            CycleEvent::MigrateDone => "migrate_done",
            CycleEvent::RestartDone => "restart_done",
            CycleEvent::ResumeDone => "resume_done",
            CycleEvent::PhaseTimeout => "phase_timeout",
            CycleEvent::SpareCrash => "spare_crash",
            CycleEvent::Retry => "retry",
            CycleEvent::Degrade => "degrade",
            CycleEvent::RankStaged => "rank_staged",
            CycleEvent::RankRestarted => "rank_restarted",
            CycleEvent::CoordCrash => "coord_crash",
            CycleEvent::TakeoverResume => "takeover_resume",
            CycleEvent::TakeoverRollback => "takeover_rollback",
            CycleEvent::ZombieSettle => "zombie_settle",
        }
    }
}

impl fmt::Display for CycleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A transition guard, evaluated against the live recovery budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Unconditional.
    Always,
    /// At least one spare is available *and* the attempt budget has room.
    RetryPath,
    /// The negation of [`Guard::RetryPath`]: no way to run an attempt.
    NoRecoveryPath,
}

/// The live values guards are evaluated against.
#[derive(Debug, Clone, Copy)]
pub struct GuardCtx {
    /// Spare nodes currently in the pool.
    pub spares_left: u32,
    /// Attempts remaining in the retry budget.
    pub attempts_left: u32,
}

impl Guard {
    /// Evaluate against `g`.
    pub fn eval(&self, g: &GuardCtx) -> bool {
        let retry_path = g.spares_left > 0 && g.attempts_left > 0;
        match self {
            Guard::Always => true,
            Guard::RetryPath => retry_path,
            Guard::NoRecoveryPath => !retry_path,
        }
    }
}

/// Declarative effects of a cycle transition. The model checker applies
/// them to its abstract state; the runtime performs the corresponding
/// concrete operations (and the conformance assertions in `jobmig-core`
/// keep the two aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Take a spare from the pool as the attempt's target.
    ConsumeSpare,
    /// Return a surviving spare to the pool after an aborted attempt.
    ReturnSpare,
    /// The target spare died; it never returns to the pool.
    SpareLost,
    /// Every rank suspended and drained on the source.
    SuspendRanks,
    /// Source images streamed to the target; source NLA drained.
    StreamImages,
    /// Ranks restarted from their images on the target; target NLA ready.
    RestartRanks,
    /// Ranks pass the migration barrier and run on their current host.
    ResumeRanks,
    /// Roll every rank back to a running state on the source and restore
    /// both NLAs.
    Rollback,
    /// Degrade: coordinated checkpoint of the (running) job to storage.
    CheckpointToStore,
}

impl Action {
    /// Stable lower-snake name.
    pub fn name(&self) -> &'static str {
        match self {
            Action::ConsumeSpare => "consume_spare",
            Action::ReturnSpare => "return_spare",
            Action::SpareLost => "spare_lost",
            Action::SuspendRanks => "suspend_ranks",
            Action::StreamImages => "stream_images",
            Action::RestartRanks => "restart_ranks",
            Action::ResumeRanks => "resume_ranks",
            Action::Rollback => "rollback",
            Action::CheckpointToStore => "checkpoint_to_store",
        }
    }
}

/// One row of the migration-cycle table.
#[derive(Debug, Clone)]
pub struct CycleTransition {
    /// Phase the trigger is in.
    pub from: CyclePhase,
    /// Event applied.
    pub on: CycleEvent,
    /// Guard that must hold.
    pub guard: Guard,
    /// Phase it moves to.
    pub to: CyclePhase,
    /// Declarative effects.
    pub actions: Vec<Action>,
}

/// The migration-cycle specification: an owned transition table, so tests
/// can mutate a copy ([`MigrationSpec::without`] /
/// [`MigrationSpec::with_transition`]) and feed it back to the checker.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// The transition rows, in priority order (first match wins).
    pub transitions: Vec<CycleTransition>,
}

impl Default for MigrationSpec {
    fn default() -> Self {
        Self::shipped()
    }
}

impl MigrationSpec {
    /// The table the runtime ships with.
    pub fn shipped() -> Self {
        use Action::*;
        use CycleEvent as E;
        use CyclePhase as P;
        let t = |from, on, guard, to, actions: &[Action]| CycleTransition {
            from,
            on,
            guard,
            to,
            actions: actions.to_vec(),
        };
        let mut rows = vec![
            t(
                P::Idle,
                E::Trigger,
                Guard::RetryPath,
                P::Stall,
                &[ConsumeSpare],
            ),
            t(
                P::Idle,
                E::Degrade,
                Guard::NoRecoveryPath,
                P::Degraded,
                &[CheckpointToStore],
            ),
            // Live mode: the first attempt pre-copies while the job runs.
            // Retries after an abort always use the classic Retry → Stall
            // edge — by then the pre-copied state has been discarded.
            t(
                P::Idle,
                E::LiveTrigger,
                Guard::RetryPath,
                P::Precopy,
                &[ConsumeSpare],
            ),
            t(P::Precopy, E::PrecopyRound, Guard::Always, P::Precopy, &[]),
            t(P::Precopy, E::Cutover, Guard::Always, P::Stall, &[]),
            t(
                P::Precopy,
                E::FallbackStopCopy,
                Guard::Always,
                P::Stall,
                &[],
            ),
            t(
                P::Stall,
                E::StallDone,
                Guard::Always,
                P::Migrate,
                &[SuspendRanks],
            ),
            t(
                P::Migrate,
                E::MigrateDone,
                Guard::Always,
                P::Restart,
                &[StreamImages],
            ),
            t(
                P::Restart,
                E::RestartDone,
                Guard::Always,
                P::Resume,
                &[RestartRanks],
            ),
            t(
                P::Resume,
                E::ResumeDone,
                Guard::Always,
                P::Complete,
                &[ResumeRanks],
            ),
            t(
                P::Aborted,
                E::Retry,
                Guard::RetryPath,
                P::Stall,
                &[ConsumeSpare],
            ),
            t(
                P::Aborted,
                E::Degrade,
                Guard::NoRecoveryPath,
                P::Degraded,
                &[CheckpointToStore],
            ),
        ];
        for ph in [P::Stall, P::Migrate, P::Restart, P::Resume] {
            rows.push(t(
                ph,
                E::PhaseTimeout,
                Guard::Always,
                P::Aborted,
                &[Rollback, ReturnSpare],
            ));
            rows.push(t(
                ph,
                E::SpareCrash,
                Guard::Always,
                P::Aborted,
                &[SpareLost, Rollback],
            ));
        }
        // Precopy has no PhaseTimeout row on purpose: data-path faults in
        // a pre-copy round cost nothing but streamed bytes (the job never
        // stopped), so they degrade to `FallbackStopCopy` instead of
        // aborting the attempt. Only the spare dying aborts from here.
        rows.push(t(
            P::Precopy,
            E::SpareCrash,
            Guard::Always,
            P::Aborted,
            &[SpareLost, Rollback],
        ));
        MigrationSpec { transitions: rows }
    }

    /// The transition `(from, on)` resolves to under `g`, if any.
    pub fn next(&self, from: CyclePhase, on: CycleEvent, g: &GuardCtx) -> Option<&CycleTransition> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.on == on && t.guard.eval(g))
    }

    /// Whether a `(from, on)` row exists at all, guard notwithstanding.
    pub fn has_row(&self, from: CyclePhase, on: CycleEvent) -> bool {
        self.transitions
            .iter()
            .any(|t| t.from == from && t.on == on)
    }

    /// A copy with every `(from, on)` row removed (spec mutation for
    /// negative tests).
    pub fn without(mut self, from: CyclePhase, on: CycleEvent) -> Self {
        self.transitions.retain(|t| !(t.from == from && t.on == on));
        self
    }

    /// A copy with `t` prepended (it takes priority over shipped rows).
    pub fn with_transition(mut self, t: CycleTransition) -> Self {
        self.transitions.insert(0, t);
        self
    }
}

/// Why a [`CycleStepper::step`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// No `(from, on)` row exists: the driver fired an event the spec
    /// does not allow in this phase — a protocol bug.
    NoTransition {
        /// Phase the stepper was in.
        from: CyclePhase,
        /// Event that was fired.
        on: CycleEvent,
    },
    /// Rows exist but every guard rejected: normal control flow (e.g. a
    /// `Retry` with the budget exhausted).
    GuardRejected {
        /// Phase the stepper was in.
        from: CyclePhase,
        /// Event that was fired.
        on: CycleEvent,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::NoTransition { from, on } => {
                write!(f, "no transition from {from} on {on}")
            }
            StepError::GuardRejected { from, on } => {
                write!(f, "guard rejected {on} from {from}")
            }
        }
    }
}

/// Drives one trigger's lifecycle through a [`MigrationSpec`] at
/// execution time. The Job Manager owns one per trigger and steps it at
/// every phase boundary; a [`StepError::NoTransition`] means the runtime
/// and the spec disagree — the caller traps it.
#[derive(Debug)]
pub struct CycleStepper<'a> {
    spec: &'a MigrationSpec,
    phase: CyclePhase,
}

impl<'a> CycleStepper<'a> {
    /// A stepper at [`CyclePhase::Idle`].
    pub fn new(spec: &'a MigrationSpec) -> Self {
        CycleStepper {
            spec,
            phase: CyclePhase::Idle,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> CyclePhase {
        self.phase
    }

    /// Apply `on` under `g`; advances and returns the matched transition.
    pub fn step(&mut self, on: CycleEvent, g: &GuardCtx) -> Result<&'a CycleTransition, StepError> {
        match self.spec.next(self.phase, on, g) {
            Some(t) => {
                self.phase = t.to;
                Ok(t)
            }
            None if self.spec.has_row(self.phase, on) => Err(StepError::GuardRejected {
                from: self.phase,
                on,
            }),
            None => Err(StepError::NoTransition {
                from: self.phase,
                on,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault edges
// ---------------------------------------------------------------------------

/// A fault kind that can strike a protocol phase, and the cycle event it
/// manifests as. This is the bridge between `faultplane`'s fault alphabet
/// and the phase machine: the model checker turns each edge into a
/// labelled transition, and [`crate::model::Counterexample::to_fault_plan`]
/// maps the labels back to concrete [`faultplane::FaultSpec`]s.
#[derive(Debug, Clone, Copy)]
pub struct FaultEdge {
    /// The paper phase the fault strikes.
    pub phase: MigPhase,
    /// The fault kind.
    pub kind: FaultKind,
    /// How the Job Manager observes it: a phase deadline expiring
    /// ([`CycleEvent::PhaseTimeout`]) or the spare dying
    /// ([`CycleEvent::SpareCrash`]).
    pub effect: CycleEvent,
}

/// Every fault kind, at every phase it can reach, with its observable
/// effect. Derived from the injection points the layers expose:
/// GigE faults starve the FTB fan-in of any phase that waits on events;
/// RDMA/BLCR/store faults can only strike Phase 2's image streaming (a
/// chunk that cannot be obtained or staged stalls the pool until the
/// phase deadline); a spare crash is polled at every phase boundary.
pub fn fault_edges() -> Vec<FaultEdge> {
    let mut edges = Vec::new();
    let timeout_kinds: &[(MigPhase, &[FaultKind])] = &[
        (MigPhase::Stall, &[FaultKind::NetDrop, FaultKind::LinkFlap]),
        (
            MigPhase::Migrate,
            &[
                FaultKind::NetDrop,
                FaultKind::LinkFlap,
                FaultKind::RdmaCqError,
                FaultKind::RdmaCorrupt,
                FaultKind::BlcrWriteError,
                FaultKind::StoreWrite,
            ],
        ),
        (
            MigPhase::Restart,
            &[FaultKind::NetDrop, FaultKind::LinkFlap],
        ),
    ];
    for &(phase, kinds) in timeout_kinds {
        for &kind in kinds {
            edges.push(FaultEdge {
                phase,
                kind,
                effect: CycleEvent::PhaseTimeout,
            });
        }
    }
    for phase in MigPhase::ALL {
        edges.push(FaultEdge {
            phase,
            kind: FaultKind::SpareCrash,
            effect: CycleEvent::SpareCrash,
        });
    }
    // Live pre-copy rounds: a data-path fault mid-round loses only
    // streamed bytes (the job never stopped), so the controller falls
    // back to classic stop-and-copy instead of aborting. The spare dying
    // is the one fault that aborts from Precopy.
    for kind in [
        FaultKind::NetDrop,
        FaultKind::LinkFlap,
        FaultKind::RdmaCqError,
        FaultKind::RdmaCorrupt,
        FaultKind::BlcrWriteError,
    ] {
        edges.push(FaultEdge {
            phase: MigPhase::Precopy,
            kind,
            effect: CycleEvent::FallbackStopCopy,
        });
    }
    edges.push(FaultEdge {
        phase: MigPhase::Precopy,
        kind: FaultKind::SpareCrash,
        effect: CycleEvent::SpareCrash,
    });
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nla_names_match_paper() {
        assert_eq!(NlaState::MigrationReady.to_string(), "MIGRATION_READY");
        assert_eq!(NlaState::MigrationSpare.to_string(), "MIGRATION_SPARE");
        assert_eq!(
            NlaState::MigrationInactive.to_string(),
            "MIGRATION_INACTIVE"
        );
    }

    #[test]
    fn nla_table_covers_runtime_call_sites() {
        use NlaEvent::*;
        use NlaState::*;
        assert_eq!(
            nla_next(MigrationReady, SourceDrained),
            Some(MigrationInactive)
        );
        assert_eq!(
            nla_next(MigrationSpare, RestartComplete),
            Some(MigrationReady)
        );
        assert_eq!(
            nla_next(MigrationInactive, RollbackSource),
            Some(MigrationReady)
        );
        assert_eq!(
            nla_next(MigrationReady, RollbackSource),
            Some(MigrationReady)
        );
        assert_eq!(
            nla_next(MigrationReady, RollbackTarget),
            Some(MigrationSpare)
        );
        assert_eq!(
            nla_next(MigrationSpare, RollbackTarget),
            Some(MigrationSpare)
        );
        // A spare never drains; an inactive node never completes a restart.
        assert_eq!(nla_next(MigrationSpare, SourceDrained), None);
        assert_eq!(nla_next(MigrationInactive, RestartComplete), None);
        // Reprovisioning is only legal from the inactive (vacated) state.
        assert_eq!(
            nla_next(MigrationInactive, Reprovision),
            Some(MigrationSpare)
        );
        assert_eq!(nla_next(MigrationReady, Reprovision), None);
        assert_eq!(nla_next(MigrationSpare, Reprovision), None);
    }

    #[test]
    fn rank_paths_close() {
        use RankEvent::*;
        use RankLife::*;
        // Source rank, successful migration.
        let mut s = Running;
        for ev in [Suspend, Capture, Restart, Resume] {
            s = rank_next(s, ev).unwrap();
        }
        assert_eq!(s, Running);
        // Source rank, aborted after capture: resurrection path.
        let mut s = Running;
        for ev in [Suspend, Capture, Resurrect, Resume] {
            s = rank_next(s, ev).unwrap();
        }
        assert_eq!(s, Running);
        // Non-source rank.
        let mut s = Running;
        for ev in [Suspend, Resume] {
            s = rank_next(s, ev).unwrap();
        }
        assert_eq!(s, Running);
        // A running rank cannot be captured or restarted.
        assert_eq!(rank_next(Running, Capture), None);
        assert_eq!(rank_next(Running, Restart), None);
    }

    #[test]
    fn link_machine_prefers_grandparent_and_tolerates_flaps() {
        use LinkEvent::*;
        use LinkState::*;
        assert_eq!(
            link_next(Attached, AckGrandparent),
            Some(AttachedWithFallback)
        );
        // Fallback consumed on parent loss.
        assert_eq!(link_next(AttachedWithFallback, ParentLost), Some(Attached));
        // No fallback: keep the parent (transient flap must not orphan).
        assert_eq!(link_next(Attached, ParentLost), Some(Attached));
        // The root reacts to nothing.
        assert_eq!(link_next(Root, ParentLost), None);
    }

    #[test]
    fn stepper_walks_happy_path() {
        let spec = MigrationSpec::shipped();
        let mut st = CycleStepper::new(&spec);
        let g = GuardCtx {
            spares_left: 1,
            attempts_left: 3,
        };
        use CycleEvent::*;
        for ev in [Trigger, StallDone, MigrateDone, RestartDone, ResumeDone] {
            st.step(ev, &g).unwrap();
        }
        assert_eq!(st.phase(), CyclePhase::Complete);
        assert!(st.phase().is_terminal());
    }

    #[test]
    fn stepper_walks_live_paths() {
        let spec = MigrationSpec::shipped();
        let g = GuardCtx {
            spares_left: 1,
            attempts_left: 3,
        };
        use CycleEvent::*;
        // Converging run: rounds, cutover, then the four classic phases.
        let mut st = CycleStepper::new(&spec);
        for ev in [
            LiveTrigger,
            PrecopyRound,
            PrecopyRound,
            Cutover,
            StallDone,
            MigrateDone,
            RestartDone,
            ResumeDone,
        ] {
            st.step(ev, &g).unwrap();
        }
        assert_eq!(st.phase(), CyclePhase::Complete);
        // Diverging run: the controller gives up and the same Stall..
        // machinery runs a classic full copy.
        let mut st = CycleStepper::new(&spec);
        for ev in [LiveTrigger, PrecopyRound, FallbackStopCopy] {
            st.step(ev, &g).unwrap();
        }
        assert_eq!(st.phase(), CyclePhase::Stall);
        // Pre-copy has no timeout row — data faults degrade to fallback
        // instead of aborting — but the spare dying does abort.
        assert!(!spec.has_row(CyclePhase::Precopy, PhaseTimeout));
        assert!(spec.has_row(CyclePhase::Precopy, SpareCrash));
        // Live entry needs a spare like any other attempt.
        let none = GuardCtx {
            spares_left: 0,
            attempts_left: 3,
        };
        let mut st = CycleStepper::new(&spec);
        assert!(matches!(
            st.step(LiveTrigger, &none),
            Err(StepError::GuardRejected { .. })
        ));
    }

    #[test]
    fn stepper_distinguishes_guard_rejection_from_missing_row() {
        let spec = MigrationSpec::shipped();
        let mut st = CycleStepper::new(&spec);
        let none = GuardCtx {
            spares_left: 0,
            attempts_left: 3,
        };
        // Trigger with no spare: row exists, guard rejects.
        assert!(matches!(
            st.step(CycleEvent::Trigger, &none),
            Err(StepError::GuardRejected { .. })
        ));
        // Degrade from Idle is the legal continuation.
        st.step(CycleEvent::Degrade, &none).unwrap();
        assert_eq!(st.phase(), CyclePhase::Degraded);
        // ResumeDone from Degraded: no such row at all.
        assert!(matches!(
            st.step(CycleEvent::ResumeDone, &none),
            Err(StepError::NoTransition { .. })
        ));
    }
}
