//! Property tests: the checkpoint stream format survives arbitrary
//! re-chunking (what the buffer pool does to it) for arbitrary images.

use blcrsim::{parse_stream, serialize_image, ProcessImage, Segment, SegmentKind, SliceCursor};
use ibfabric::DataSlice;
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = Segment> {
    let kind = prop_oneof![
        Just(SegmentKind::Code),
        Just(SegmentKind::Stack),
        Just(SegmentKind::Heap),
        Just(SegmentKind::Anon),
    ];
    let data = prop_oneof![
        // pattern data of assorted sizes (including > chunk size)
        (any::<u64>(), 0u64..5000, 1u64..4_000_000)
            .prop_map(|(seed, off, len)| DataSlice::pattern(seed, off, len)),
        // small literal data
        proptest::collection::vec(any::<u8>(), 1..512).prop_map(DataSlice::bytes),
        // zero runs
        (1u64..100_000).prop_map(DataSlice::zero),
    ];
    (kind, data).prop_map(|(kind, data)| Segment { kind, data })
}

fn arb_image() -> impl Strategy<Value = ProcessImage> {
    (
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..128),
        proptest::collection::vec(arb_segment(), 0..6),
    )
        .prop_map(|(pid, state, segments)| {
            let mut img = ProcessImage::new(pid, state);
            img.segments = segments;
            img
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_plain(img in arb_image()) {
        let parsed = parse_stream(serialize_image(&img)).unwrap();
        prop_assert_eq!(parsed.pid, img.pid);
        prop_assert_eq!(&parsed.app_state, &img.app_state);
        prop_assert_eq!(parsed.segments.len(), img.segments.len());
        prop_assert_eq!(parsed.memory_bytes(), img.memory_bytes());
        prop_assert_eq!(parsed.checksum(), img.checksum());
    }

    #[test]
    fn roundtrip_after_random_rechunk(
        img in arb_image(),
        chunk in 1u64..3_000_000,
    ) {
        let stream = serialize_image(&img);
        let mut cur = SliceCursor::new(stream);
        let mut rechunked = Vec::new();
        while cur.remaining() > 0 {
            let n = cur.remaining().min(chunk);
            rechunked.extend(cur.take(n).unwrap());
        }
        let parsed = parse_stream(rechunked).unwrap();
        prop_assert_eq!(parsed.memory_bytes(), img.memory_bytes());
        prop_assert_eq!(parsed.checksum(), img.checksum());
    }

    #[test]
    fn truncation_never_parses(img in arb_image(), cut in 1u64..1000) {
        let stream = serialize_image(&img);
        let total: u64 = stream.iter().map(|s| s.len).sum();
        prop_assume!(total > cut);
        let mut cur = SliceCursor::new(stream);
        let short = cur.take(total - cut).unwrap();
        prop_assert!(parse_stream(short).is_err());
    }

    #[test]
    fn cursor_take_is_exact(len in 1u64..100_000, splits in proptest::collection::vec(1u64..10_000, 0..10)) {
        let mut cur = SliceCursor::new(vec![DataSlice::pattern(9, 0, len)]);
        let mut consumed = 0u64;
        for s in splits {
            if consumed + s > len { break; }
            let parts = cur.take(s).unwrap();
            prop_assert_eq!(ibfabric::total_len(&parts), s);
            // content must line up with the original
            prop_assert_eq!(parts[0].byte_at(0), ibfabric::pattern_byte(9, consumed));
            consumed += s;
        }
        prop_assert_eq!(cur.remaining(), len - consumed);
    }
}
